"""Ensure ``src`` is importable even without an installed package.

The CI environment has no ``wheel`` package, so ``pip install -e .``
may be unavailable; inserting ``src`` on ``sys.path`` keeps
``pytest`` working either way (``python setup.py develop`` also works).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
