"""Property-based tests (hypothesis) on core data structures and
invariants: store round-trips, EPC residency, ledger accounting,
PageRank mass conservation, RMAT validity, registries and hashing."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.graphchi.pagerank import run_pagerank_in_memory
from repro.apps.paldb import format as fmt
from repro.apps.paldb.reader import StoreReader
from repro.apps.paldb.writer import StoreWriter
from repro.apps.rmat import generate_rmat
from repro.baselines import native_session
from repro.core.hashing import IdentityHashStrategy, Md5HashStrategy
from repro.core.registry import MirrorProxyRegistry
from repro.core.shim import ShimLibc
from repro.costs import CostLedger
from repro.errors import RegistryError
from repro.runtime.tracker import ProxyTracker
from repro.sgx.epc import EpcPageCache

# File-backed strategies are slow per example; keep example counts sane.
_FILE_SETTINGS = settings(
    max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture]
)

keys_values = st.dictionaries(
    st.binary(min_size=1, max_size=64),
    st.binary(min_size=0, max_size=256),
    min_size=1,
    max_size=60,
)


class TestStoreProperties:
    @_FILE_SETTINGS
    @given(pairs=keys_values)
    def test_every_written_pair_is_readable(self, tmp_path_factory, pairs):
        path = str(tmp_path_factory.mktemp("store") / "s.paldb")
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            with StoreWriter(path, libc) as writer:
                for key, value in pairs.items():
                    writer.put(key, value)
            reader = StoreReader(path, libc)
            assert reader.n_keys == len(pairs)
            for key, value in pairs.items():
                assert reader.get(key) == value

    @_FILE_SETTINGS
    @given(pairs=keys_values, probe=st.binary(min_size=1, max_size=64))
    def test_absent_keys_read_none(self, tmp_path_factory, pairs, probe):
        path = str(tmp_path_factory.mktemp("store") / "s.paldb")
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            with StoreWriter(path, libc) as writer:
                for key, value in pairs.items():
                    writer.put(key, value)
            reader = StoreReader(path, libc)
            expected = pairs.get(probe)
            assert reader.get(probe) == expected

    @given(st.binary(min_size=0, max_size=128), st.binary(min_size=0, max_size=128))
    def test_record_pack_unpack_inverse(self, key, value):
        assert fmt.unpack_record(fmt.pack_record(key, value)) == (key, value)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_bucket_count_invariants(self, n_keys):
        buckets = fmt.bucket_count(n_keys)
        assert buckets >= 8
        assert buckets & (buckets - 1) == 0
        assert n_keys <= buckets * fmt.LOAD_FACTOR or n_keys == 0


class TestEpcProperties:
    @given(
        accesses=st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 50)), max_size=200
        ),
        capacity_pages=st.integers(min_value=1, max_value=16),
    )
    def test_residency_never_exceeds_capacity(self, accesses, capacity_pages):
        epc = EpcPageCache(capacity_bytes=capacity_pages * 4096)
        for enclave_id, page in accesses:
            epc.touch(enclave_id, page)
            assert epc.resident_pages() <= capacity_pages

    @given(
        accesses=st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 50)), max_size=200
        )
    )
    def test_hits_plus_faults_equals_accesses(self, accesses):
        epc = EpcPageCache(capacity_bytes=8 * 4096)
        for enclave_id, page in accesses:
            epc.touch(enclave_id, page)
        assert epc.stats.accesses == len(accesses)

    @given(page=st.integers(0, 1000))
    def test_second_touch_always_hits_when_capacity_allows(self, page):
        epc = EpcPageCache(capacity_bytes=16 * 4096)
        epc.touch(1, page)
        faulted, _ = epc.touch(1, page)
        assert not faulted


class TestLedgerProperties:
    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(["a", "a.b", "a.b.c", "d"]),
                st.floats(min_value=0.0, max_value=1e6),
            ),
            max_size=100,
        )
    )
    def test_total_equals_sum_of_subtrees(self, charges):
        ledger = CostLedger()
        for category, ns in charges:
            ledger.charge(category, ns)
        total = ledger.total_ns()
        assert total == pytest.approx(ledger.total_ns("a") + ledger.total_ns("d"))
        assert ledger.total_ns("a") >= ledger.total_ns("a.b") >= ledger.total_ns("a.b.c")
        assert ledger.count() == len(charges)


class TestPageRankProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_vertices=st.integers(min_value=2, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
        iterations=st.integers(min_value=1, max_value=20),
    )
    def test_mass_conservation_and_positivity(self, n_vertices, seed, iterations):
        rng = np.random.RandomState(seed)
        n_edges = max(1, 3 * n_vertices)
        src = rng.randint(0, n_vertices, size=n_edges)
        dst = rng.randint(0, n_vertices, size=n_edges)
        ranks = run_pagerank_in_memory(src, dst, n_vertices, iterations=iterations)
        assert np.all(ranks > 0)
        assert ranks.sum() == pytest.approx(n_vertices, rel=1e-9)


class TestRmatProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_vertices=st.integers(min_value=2, max_value=2048),
        n_edges=st.integers(min_value=1, max_value=5000),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_edges_always_valid(self, n_vertices, n_edges, seed):
        src, dst = generate_rmat(n_vertices, n_edges, seed=seed)
        assert len(src) == n_edges
        assert src.min() >= 0 and dst.min() >= 0
        assert src.max() < n_vertices and dst.max() < n_vertices
        assert not np.any(src == dst)


class TestRegistryProperties:
    @given(hashes=st.lists(st.integers(min_value=1), unique=True, max_size=100))
    def test_add_get_remove_cycle(self, hashes):
        registry = MirrorProxyRegistry()
        for value in hashes:
            registry.add(value, object())
        assert registry.live_count() == len(hashes)
        for value in hashes:
            registry.get(value)
            registry.remove(value)
        assert registry.live_count() == 0
        for value in hashes:
            with pytest.raises(RegistryError):
                registry.get(value)

    @given(hashes=st.lists(st.integers(), unique=True, max_size=50))
    def test_discard_is_idempotent(self, hashes):
        registry = MirrorProxyRegistry()
        for value in hashes:
            registry.add(value, object())
        for value in hashes:
            assert registry.discard(value)
            assert not registry.discard(value)


class TestHashingProperties:
    @given(n=st.integers(min_value=1, max_value=2000))
    def test_md5_hashes_unique(self, n):
        strategy = Md5HashStrategy()
        hashes = {strategy.next_hash("Cls") for _ in range(n)}
        assert len(hashes) == n

    @given(modulus=st.integers(min_value=2, max_value=50))
    def test_identity_hash_collides_in_small_spaces(self, modulus):
        """The paper's motivation for MD5: identity hashes collide."""
        strategy = IdentityHashStrategy(modulus=modulus)
        hashes = [strategy.next_hash("Cls") for _ in range(modulus + 1)]
        assert len(set(hashes)) <= modulus  # pigeonhole

    @given(n=st.integers(min_value=1, max_value=500))
    def test_identity_hash_within_modulus(self, n):
        strategy = IdentityHashStrategy(modulus=2**31)
        for _ in range(n // 10 + 1):
            value = strategy.next_hash("X")
            assert 0 <= value < 2**31


class TestTrackerProperties:
    @given(keep_mask=st.lists(st.booleans(), min_size=1, max_size=60))
    def test_scan_reports_exactly_the_dead(self, keep_mask):
        import gc

        class Obj:
            pass

        tracker = ProxyTracker()
        kept = []
        dead_hashes = set()
        for index, keep in enumerate(keep_mask):
            obj = Obj()
            tracker.track(obj, index)
            if keep:
                kept.append(obj)
            else:
                dead_hashes.add(index)
        del obj
        gc.collect()
        assert set(tracker.scan()) == dead_hashes
        assert tracker.live_count() == len(kept)
