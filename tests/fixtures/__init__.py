"""Test fixture applications for the partition linter."""
