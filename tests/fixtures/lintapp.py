"""Deliberately broken partitioned app: seeds one finding per lint rule.

Used by ``tests/test_analysis.py`` and lintable directly::

    PYTHONPATH=src python -m repro lint --module tests.fixtures.lintapp

Expected findings:

- ``MSV001`` (x2) — ``Station.exfiltrate`` pulls the plain secret out of
  the trusted ``Vault`` and both forwards it to untrusted ``Uplink.send``
  and returns it from untrusted code;
- ``MSV002`` — ``Uplink.send_callback`` takes a ``Callable`` (error: no
  codec crosses it) and ``Station.configure`` takes the neutral
  ``Config`` (warning: pickle-only);
- ``MSV003`` — ``Station.rekey`` performs one fine-grained ecall
  (``relay_Vault_rotate``) per loop iteration;
- ``MSV004`` — ``Vault._forgotten_migration`` is private (gets no relay)
  and never called: dead enclave code;
- ``MSV005`` — ``Station.peek`` reads ``Vault.secret`` directly and
  ``Station.probe`` does the same through ``getattr``;
- ``MSV006`` — ``Station.broadcast`` hands a ``secure()`` value to
  untrusted ``Uplink.send`` without ``declassify()``
  (``Station.publish`` declassifies properly and stays clean);
- ``MSV007`` — because the app uses secure values, every crossing that
  carries none of them (the ``Vault`` ecalls) is flagged as a
  relocation candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.annotations import trusted, untrusted
from repro.core.secure import declassify, secure


@trusted
class Vault:
    """Holds the secret inside the enclave."""

    def __init__(self, secret: str) -> None:
        self.secret = secret

    def reveal(self) -> str:
        # Plain-data getter: legitimate on its own, the hazard is what
        # callers do with the result.
        return self.secret

    def rotate(self, salt: int) -> int:
        self.secret = f"{self.secret}:{salt}"
        return salt

    def _forgotten_migration(self) -> None:
        # MSV004: private (no relay is generated) and never called.
        self.secret = "migrated"


@trusted
class AuditLog:
    """Second trusted class; fully reachable, so MSV004 stays quiet."""

    def __init__(self) -> None:
        self.entries: List[str] = []

    def record(self, entry: str) -> None:
        self.entries.append(entry)


class Config:
    """Neutral class: pickle can cross it, the wire codec cannot."""

    def __init__(self) -> None:
        self.flags: Dict[str, bool] = {}


@untrusted
class Uplink:
    """Untrusted network endpoint."""

    def __init__(self) -> None:
        self.sent = 0

    def send(self, payload: str) -> int:
        self.sent += 1
        return self.sent

    def send_callback(self, callback: Callable[[str], None]) -> None:
        # MSV002 (error): a callback cannot cross the enclave boundary.
        callback("ping")


@untrusted
class Station:
    """Untrusted orchestrator wired to commit every boundary sin."""

    def __init__(self, secret: str) -> None:
        self.vault = Vault(secret)
        self.uplink = Uplink()

    def exfiltrate(self) -> str:
        secret = self.vault.reveal()
        self.uplink.send(secret)  # MSV001: tainted value to untrusted sink
        return secret  # MSV001: tainted value returned from untrusted code

    def rekey(self, rounds: int) -> None:
        for salt in range(rounds):
            self.vault.rotate(salt)  # MSV003: one ecall per iteration

    def configure(self, config: Config) -> None:
        # MSV002 (warning): Config crosses pickle-only.
        self.vault.rotate(len(config.flags))

    def peek(self) -> str:
        vault = self.vault
        return vault.secret  # MSV005: foreign field access

    def probe(self) -> object:
        vault = self.vault
        return getattr(vault, "secret")  # MSV005: string-based field access

    def broadcast(self) -> None:
        token = secure("launch-code", "token")
        self.uplink.send(token)  # MSV006: secure value escapes undeclassified

    def publish(self) -> None:
        manifest = secure("manifest-v1", "manifest")
        # Clean: declassify() is the sanctioned exit, so no MSV006 here.
        self.uplink.send(declassify(manifest, "public manifest"))


LINT_FIXTURE_CLASSES = (Vault, AuditLog, Config, Uplink, Station)
