"""Seeded secure-value fixture: every MSV006 escape path, one clean exit.

Used by ``tests/test_analysis.py`` and the CI ``secv-smoke`` job::

    PYTHONPATH=src python -m repro lint --module tests.fixtures.secvapp

Expected findings:

- ``MSV006`` (x4) — a ``secure()`` value reaches untrusted
  ``Gateway.send`` without ``declassify()`` along four distinct flow
  paths the interprocedural engine must track:

  * ``Broker.leak_direct``    — the ``secure()`` call is the argument;
  * ``Broker.leak_via_helper``— minted in ``Broker.mint`` and returned
    (interprocedural summary flow);
  * ``Broker.leak_via_field`` — stashed in ``self.cached`` by
    ``Broker.stash`` and loaded back (field-taint flow);
  * ``Broker.leak_via_tuple`` — carried through tuple unpacking;
  * ``Broker.export``        — returned from a method *declared* to
    return plain ``str`` (an undeclared declassification point).

  ``Broker.publish`` declassifies with a reason and stays clean, and
  ``Broker.mint`` is clean because its ``-> SecureValue`` annotation
  hands callers sealed data deliberately.

- ``MSV001`` (x2) — the satellite regressions for plain taint:
  ``Mixer.tuple_leak`` propagates through tuple unpacking,
  ``Mixer.accumulate`` through augmented assignment.

- ``MSV007`` — the app uses secure values, so the ``Keyring.rotate``
  ecalls in ``Broker.heartbeat`` (which carry none) are flagged as
  relocation candidates.
"""

from __future__ import annotations

from repro.core.annotations import trusted, untrusted
from repro.core.secure import SecureValue, declassify, secure


@trusted
class Keyring:
    """Minimal enclave state; its ecalls never carry secure values."""

    def __init__(self, master: str) -> None:
        self.master = master

    def reveal(self) -> str:
        return self.master

    def rotate(self, salt: int) -> int:
        self.master = f"{self.master}:{salt}"
        return salt


@untrusted
class Gateway:
    """Untrusted egress: the sink every leak lands in."""

    def __init__(self) -> None:
        self.sent = 0

    def send(self, payload: str) -> int:
        self.sent += 1
        return self.sent


@untrusted
class Broker:
    """Untrusted orchestrator exercising every secure-value flow path."""

    def __init__(self) -> None:
        self.keyring = Keyring("root")
        self.gateway = Gateway()
        self.cached: SecureValue = secure("", "cache")

    def mint(self) -> SecureValue:
        return secure("api-key-7", "api-key")

    def leak_direct(self) -> None:
        self.gateway.send(secure("0000", "pin"))  # MSV006: direct escape

    def leak_via_helper(self) -> None:
        token = self.mint()
        self.gateway.send(token)  # MSV006: interprocedural return flow

    def stash(self) -> None:
        self.cached = self.mint()

    def leak_via_field(self) -> None:
        self.gateway.send(self.cached)  # MSV006: field-taint flow

    def leak_via_tuple(self) -> None:
        token, attempts = self.mint(), 3
        self.gateway.send(token)  # MSV006: flow through tuple unpacking
        self.gateway.send(str(attempts))  # plain sibling stays clean

    def export(self) -> str:
        return self.mint()  # MSV006: declared plain return, sealed value

    def publish(self) -> None:
        # Clean: declassify() is the sanctioned exit, so no MSV006 here.
        self.gateway.send(declassify(self.mint(), "rotated out of service"))

    def heartbeat(self, rounds: int) -> None:
        for salt in range(rounds):
            self.keyring.rotate(salt)  # MSV007: crossing, zero secure values


@untrusted
class Mixer:
    """Plain-taint regressions: the MSV001 gaps this PR closes."""

    def __init__(self) -> None:
        self.keyring = Keyring("root")
        self.gateway = Gateway()

    def tuple_leak(self) -> int:
        secret, count = self.keyring.reveal(), 2
        self.gateway.send(secret)  # MSV001: taint through tuple unpacking
        return count

    def accumulate(self) -> None:
        banner = "key="
        banner += self.keyring.reveal()
        self.gateway.send(banner)  # MSV001: taint through augmented assign


SECV_FIXTURE_CLASSES = (Keyring, Gateway, Broker, Mixer)
