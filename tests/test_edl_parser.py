"""Round-trip and seeded fuzz tests for the EDL renderer/parser."""

import random

import pytest

from repro.apps.bank import BANK_CLASSES
from repro.core import BytecodeTransformer
from repro.core.codegen import SgxCodeGenerator
from repro.errors import ConfigurationError
from repro.graal.extraction import extract_classes
from repro.sgx.edl import EdlFile, EdlFunction, EdlParam, parse_edl


def sample_edl() -> EdlFile:
    edl = EdlFile("sample")
    edl.add_ecall(
        EdlFunction(
            "ecall_put",
            params=(
                EdlParam("uint64_t", "hash"),
                EdlParam("const char*", "buf", direction="in", size_expr="len"),
                EdlParam("size_t", "len"),
            ),
        )
    )
    edl.add_ecall(EdlFunction("ecall_ping", return_type="int"))
    edl.add_ocall(
        EdlFunction(
            "ocall_write",
            return_type="long",
            params=(
                EdlParam("char*", "buf", direction="in, out", size_expr="len"),
                EdlParam("size_t", "len"),
            ),
        )
    )
    return edl


class TestEdlRoundTrip:
    def test_render_parse_render_fixpoint(self):
        original = sample_edl()
        parsed = parse_edl(original.render(), name="sample")
        assert parsed.render() == original.render()

    def test_sections_preserved(self):
        parsed = parse_edl(sample_edl().render())
        assert [f.name for f in parsed.trusted] == ["ecall_put", "ecall_ping"]
        assert [f.name for f in parsed.untrusted] == ["ocall_write"]

    def test_attributes_preserved(self):
        parsed = parse_edl(sample_edl().render())
        buf = parsed.trusted[0].params[1]
        assert buf.direction == "in"
        assert buf.size_expr == "len"
        rw = parsed.untrusted[0].params[0]
        assert rw.direction == "in, out"

    def test_return_types_preserved(self):
        parsed = parse_edl(sample_edl().render())
        assert parsed.trusted[1].return_type == "int"
        assert parsed.untrusted[0].return_type == "long"

    def test_generated_application_edl_parses(self):
        """The full generated interface for the bank app round-trips."""
        ir = extract_classes(BANK_CLASSES)
        result = BytecodeTransformer().transform(ir, main_entry="Main.main")
        edl = SgxCodeGenerator("bank").build_edl(result)
        parsed = parse_edl(edl.render(), name="bank")
        assert parsed.render() == edl.render()
        assert len(parsed.routine_names()) == len(edl.routine_names())

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_edl("enclave {\n    trusted {\n        ???\n    };\n};")

    def test_comments_and_blank_lines_ignored(self):
        text = sample_edl().render() + "\n// trailing comment\n\n"
        parsed = parse_edl(text)
        assert len(parsed.routine_names()) == 3


# ---------------------------------------------------------------------------
# Seeded fuzzing: hostile input must fail with typed errors, never crash
# ---------------------------------------------------------------------------


def _random_edl_file(rng: random.Random) -> EdlFile:
    """A random valid EdlFile drawn from the allowed EDL types."""
    scalar_types = ("int", "long", "float", "double", "size_t", "uint64_t", "int64_t")
    pointer_types = ("char*", "const char*", "void*")
    edl = EdlFile(f"fuzz{rng.randrange(1000)}")
    for index in range(rng.randint(1, 6)):
        params = []
        size_params = []
        for p in range(rng.randint(0, 4)):
            name = f"p{p}"
            if rng.random() < 0.4:
                direction = rng.choice(("", "in", "out", "in, out"))
                size_expr = size_params[-1] if size_params and rng.random() < 0.7 else ""
                params.append(
                    EdlParam(
                        rng.choice(pointer_types),
                        name,
                        direction=direction,
                        size_expr=size_expr,
                    )
                )
            else:
                params.append(EdlParam(rng.choice(scalar_types), name))
                size_params.append(name)
        function = EdlFunction(
            f"routine_{index}",
            return_type=rng.choice(("void",) + scalar_types),
            params=tuple(params),
        )
        if rng.random() < 0.5:
            edl.add_ecall(function)
        else:
            edl.add_ocall(function)
    return edl


def _parse_or_typed_error(text: str) -> None:
    """The fuzz contract: parse succeeds or raises ConfigurationError."""
    try:
        parse_edl(text, name="fuzz")
    except ConfigurationError:
        pass


class TestEdlFuzzing:
    @pytest.mark.parametrize("seed", (1, 2, 3, 4))
    def test_random_valid_files_are_render_parse_fixpoints(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            edl = _random_edl_file(rng)
            rendered = edl.render()
            parsed = parse_edl(rendered, name=edl.name)
            assert parsed.render() == rendered
            assert parsed.routine_names() == edl.routine_names()

    @pytest.mark.parametrize("seed", (11, 12))
    def test_truncated_documents_never_crash(self, seed):
        rng = random.Random(seed)
        text = sample_edl().render()
        for _ in range(60):
            _parse_or_typed_error(text[: rng.randrange(len(text))])

    @pytest.mark.parametrize("seed", (21, 22))
    def test_random_line_injection_never_crashes(self, seed):
        rng = random.Random(seed)
        alphabet = "abc()[]{};,*= \t/\\\"'<>?!0123"
        lines = sample_edl().render().splitlines()
        for _ in range(60):
            garbage = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(1, 40))
            )
            position = rng.randrange(len(lines) + 1)
            mutated = lines[:position] + [garbage] + lines[position:]
            _parse_or_typed_error("\n".join(mutated))

    @pytest.mark.parametrize("seed", (31, 32))
    def test_random_character_mutations_never_crash(self, seed):
        rng = random.Random(seed)
        text = sample_edl().render()
        for _ in range(80):
            chars = list(text)
            for _ in range(rng.randint(1, 4)):
                op = rng.randrange(3)
                position = rng.randrange(len(chars))
                if op == 0:
                    chars[position] = chr(rng.randrange(32, 127))
                elif op == 1:
                    del chars[position]
                else:
                    chars.insert(position, chr(rng.randrange(32, 127)))
            _parse_or_typed_error("".join(chars))

    def test_duplicate_routine_rejected(self):
        text = sample_edl().render()
        duplicated = text.replace(
            "public int ecall_ping();",
            "public int ecall_ping();\n        public int ecall_ping();",
        )
        assert duplicated != text
        with pytest.raises(ConfigurationError, match="duplicate EDL routine"):
            parse_edl(duplicated)

    def test_duplicate_routine_across_sections_rejected(self):
        edl = EdlFile("dup")
        edl.add_ecall(EdlFunction("shared"))
        with pytest.raises(ConfigurationError):
            edl.add_ocall(EdlFunction("shared"))

    def test_unsupported_type_rejected(self):
        text = sample_edl().render().replace("uint64_t hash", "uint128_t hash")
        with pytest.raises(ConfigurationError, match="unsupported EDL type"):
            parse_edl(text)

    def test_direction_on_non_pointer_rejected(self):
        text = sample_edl().render().replace(
            "size_t len", "[in] size_t len"
        )
        with pytest.raises(ConfigurationError, match="non-pointer"):
            parse_edl(text)

    def test_attribute_corruption_never_crashes(self):
        rng = random.Random(41)
        text = sample_edl().render()
        start = text.index("[")
        end = text.index("]", start)
        for _ in range(40):
            attrs = list(text[start : end + 1])
            position = rng.randrange(len(attrs))
            attrs[position] = rng.choice("[],=xz ")
            _parse_or_typed_error(text[:start] + "".join(attrs) + text[end + 1 :])
