"""Round-trip tests for the EDL renderer/parser."""

import pytest

from repro.apps.bank import BANK_CLASSES
from repro.core import BytecodeTransformer
from repro.core.codegen import SgxCodeGenerator
from repro.errors import ConfigurationError
from repro.graal.extraction import extract_classes
from repro.sgx.edl import EdlFile, EdlFunction, EdlParam, parse_edl


def sample_edl() -> EdlFile:
    edl = EdlFile("sample")
    edl.add_ecall(
        EdlFunction(
            "ecall_put",
            params=(
                EdlParam("uint64_t", "hash"),
                EdlParam("const char*", "buf", direction="in", size_expr="len"),
                EdlParam("size_t", "len"),
            ),
        )
    )
    edl.add_ecall(EdlFunction("ecall_ping", return_type="int"))
    edl.add_ocall(
        EdlFunction(
            "ocall_write",
            return_type="long",
            params=(
                EdlParam("char*", "buf", direction="in, out", size_expr="len"),
                EdlParam("size_t", "len"),
            ),
        )
    )
    return edl


class TestEdlRoundTrip:
    def test_render_parse_render_fixpoint(self):
        original = sample_edl()
        parsed = parse_edl(original.render(), name="sample")
        assert parsed.render() == original.render()

    def test_sections_preserved(self):
        parsed = parse_edl(sample_edl().render())
        assert [f.name for f in parsed.trusted] == ["ecall_put", "ecall_ping"]
        assert [f.name for f in parsed.untrusted] == ["ocall_write"]

    def test_attributes_preserved(self):
        parsed = parse_edl(sample_edl().render())
        buf = parsed.trusted[0].params[1]
        assert buf.direction == "in"
        assert buf.size_expr == "len"
        rw = parsed.untrusted[0].params[0]
        assert rw.direction == "in, out"

    def test_return_types_preserved(self):
        parsed = parse_edl(sample_edl().render())
        assert parsed.trusted[1].return_type == "int"
        assert parsed.untrusted[0].return_type == "long"

    def test_generated_application_edl_parses(self):
        """The full generated interface for the bank app round-trips."""
        ir = extract_classes(BANK_CLASSES)
        result = BytecodeTransformer().transform(ir, main_entry="Main.main")
        edl = SgxCodeGenerator("bank").build_edl(result)
        parsed = parse_edl(edl.render(), name="bank")
        assert parsed.render() == edl.render()
        assert len(parsed.routine_names()) == len(edl.routine_names())

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_edl("enclave {\n    trusted {\n        ???\n    };\n};")

    def test_comments_and_blank_lines_ignored(self):
        text = sample_edl().render() + "\n// trailing comment\n\n"
        parsed = parse_edl(text)
        assert len(parsed.routine_names()) == 3
