"""Differential ledger tests for the zero-copy arena fast path.

Two invariants pin the arena's pricing to the classic path:

1. **Arena-off identity** — a run with no arena, or with an arena that
   never stages a value (every batchable argument primitive/secure),
   must charge the ledger byte-identically to the classic run;
2. **Exact decomposition** — a run that does stage must satisfy
   ``classic_total == arena_total + saved - charged`` where ``saved``
   is the elided classic serialization/edge cost (tracked with the
   classic formulas at elision time) and ``charged`` is the ledger's
   ``sgx.arena.*`` total — asserted on the bank, PalDB and SecureKeeper
   applications.

Also pins the encode-once behaviour (satellite 4): a single-call flush
reuses the bytes encoded at ``offer`` time — one serialize (classic) or
one stage (arena) per argument, never two — and the offload ablation's
winner flip and fingerprint determinism.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any

import pytest

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.paldb import KvWorkload
from repro.apps.paldb.workload import (
    PALDB_RUWT_CLASSES,
    TrustedDBWriter,
    UntrustedDBReader,
)
from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
)
from repro.batching import BatchPolicy, attach_batching, batchable
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.annotations import trusted
from repro.core.arena import attach_arena, detach_arena
from repro.core.secure import secure
from repro.experiments.micro import ARENA_MICRO_CLASSES, TrustedSink
from tests.helpers import (
    arena_charged_ns,
    assert_arena_decomposition,
    assert_ledgers_identical,
    platform_ledger,
    session_ledger,
)

#: Size-triggered flushes only: virtual-time windows would fire at
#: different instants once the arena moves the clock, so the
#: decomposition runs pin the batch boundary to call counts.
_POLICY = BatchPolicy(max_batch=8, window_ns=1e15)


@trusted
class SecretSink:
    """Batchable consumer of opaque tokens (secure-value staging test)."""

    def __init__(self) -> None:
        self.seen = 0

    @batchable
    def absorb(self, token: Any) -> None:
        self.seen += 1


def _run_bank(with_arena: bool):
    app = Partitioner(PartitionOptions(name="arena_diff_bank")).partition(
        list(BANK_CLASSES)
    )
    with app.start() as session:
        attach_batching(session, _POLICY)
        arena = attach_arena(session) if with_arena else None
        account = Account("diff", 100)
        for index in range(40):
            account.update_balance(1 + index % 5)
        balance = account.get_balance()
    return app.platform, arena, balance


def _run_paldb(with_arena: bool, n_records: int = 48):
    app = Partitioner(PartitionOptions(name="arena_diff_paldb")).partition(
        list(PALDB_RUWT_CLASSES)
    )
    keys, values = KvWorkload(n_keys=n_records, seed=11).generate()
    with app.start() as session:
        workdir = tempfile.mkdtemp(prefix="arena_diff_")
        path = os.path.join(workdir, "store.paldb")
        writer = TrustedDBWriter(path)
        writer.begin_store()
        attach_batching(session, _POLICY)
        arena = attach_arena(session) if with_arena else None
        for key, value in zip(keys, values):
            writer.put_record(key, value)
        written = writer.finish_store()
        found, checksum = UntrustedDBReader(path).read_all(keys)
    return app.platform, arena, (written, found, checksum)


def _run_securekeeper(with_arena: bool, n_ops: int = 32):
    app = Partitioner(PartitionOptions(name="arena_diff_sk")).partition(
        list(SECUREKEEPER_CLASSES)
    )
    with app.start() as session:
        vault = PayloadVault("master")
        store = ZNodeStore()
        client = SecureKeeperClient(vault, store, audit=True)
        attach_batching(session, _POLICY)
        arena = attach_arena(session) if with_arena else None
        for index in range(n_ops):
            client.put(f"/node{index % 8}", f"payload-{index}")
        reads = tuple(client.read(f"/node{i}") for i in range(8))
        audits = vault.audit_count()
    return app.platform, arena, (reads, audits)


class TestArenaOffIdentity:
    def test_bank_arena_attached_is_byte_identical(self):
        # Every batchable bank argument is an int: the arena stages
        # nothing and must not move a single ledger entry.
        classic_platform, _none, classic_balance = _run_bank(False)
        arena_platform, arena, arena_balance = _run_bank(True)
        assert arena_balance == classic_balance
        assert arena.stats.staged_values == 0
        assert arena_charged_ns(arena_platform) == 0.0
        assert_ledgers_identical(
            platform_ledger(arena_platform), platform_ledger(classic_platform)
        )

    def test_unbatched_runtime_never_consults_the_arena(self):
        def run(with_arena: bool):
            app = Partitioner(
                PartitionOptions(name="arena_diff_unbatched")
            ).partition(list(ARENA_MICRO_CLASSES))
            with app.start() as session:
                arena = attach_arena(session) if with_arena else None
                with session.on_side(Side.UNTRUSTED):
                    sink = TrustedSink()
                    for _ in range(10):
                        sink.push(["a", "b", "c"])
            return app.platform, arena

        classic_platform, _ = run(False)
        arena_platform, arena = run(True)
        assert arena.stats.staged_values == 0
        assert_ledgers_identical(
            platform_ledger(arena_platform), platform_ledger(classic_platform)
        )

    def test_secure_values_are_never_staged(self):
        def run(with_arena: bool):
            app = Partitioner(
                PartitionOptions(name="arena_diff_secure")
            ).partition([SecretSink])
            with app.start() as session:
                attach_batching(session, _POLICY)
                arena = attach_arena(session) if with_arena else None
                sink = SecretSink()
                for index in range(16):
                    sink.absorb(secure(f"token-{index}", label="api"))
                session.runtime.batcher.flush()
            return app.platform, arena

        classic_platform, _ = run(False)
        arena_platform, arena = run(True)
        assert arena.stats.staged_values == 0
        assert arena.stats.classic_fallbacks == 0
        assert_ledgers_identical(
            platform_ledger(arena_platform), platform_ledger(classic_platform)
        )

    def test_detach_arena_restores_classic_pricing(self):
        app = Partitioner(PartitionOptions(name="arena_diff_detach")).partition(
            list(ARENA_MICRO_CLASSES)
        )
        with app.start() as session:
            attach_batching(session, _POLICY)
            arena = attach_arena(session)
            with session.on_side(Side.UNTRUSTED):
                sink = TrustedSink()
                sink.push(["staged"])
                session.runtime.batcher.flush()
                staged_before = arena.stats.staged_values
                assert detach_arena(session) is arena
                sink.push(["classic"])
                session.runtime.batcher.flush()
            assert arena.stats.staged_values == staged_before
            assert sink.total_pushed() == 2


class TestExactDecomposition:
    def test_trusted_sink_decomposes_exactly(self):
        def run(with_arena: bool):
            app = Partitioner(
                PartitionOptions(name="arena_diff_sink")
            ).partition(list(ARENA_MICRO_CLASSES))
            with app.start() as session:
                attach_batching(session, _POLICY)
                arena = attach_arena(session) if with_arena else None
                with session.on_side(Side.UNTRUSTED):
                    sink = TrustedSink()
                    for index in range(32):
                        sink.push([f"item-{index}", "x" * (index % 7)])
                    session.runtime.batcher.flush()
                    pushed = sink.total_pushed()
            return app.platform, arena, pushed

        classic_platform, _none, classic_pushed = run(False)
        arena_platform, arena, arena_pushed = run(True)
        assert arena_pushed == classic_pushed
        assert arena.stats.staged_values == 32
        assert arena.stats.classic_fallbacks == 0
        assert arena_charged_ns(arena_platform) > 0.0
        assert arena.stats.saved_ns > arena_charged_ns(arena_platform)
        assert_arena_decomposition(classic_platform, arena_platform, arena)

    def test_paldb_decomposes_exactly(self):
        classic_platform, _none, classic_out = _run_paldb(False)
        arena_platform, arena, arena_out = _run_paldb(True)
        assert arena_out == classic_out
        assert arena.stats.staged_values == 2 * 48  # key + value per put
        assert_arena_decomposition(classic_platform, arena_platform, arena)

    def test_securekeeper_decomposes_exactly(self):
        classic_platform, _none, classic_out = _run_securekeeper(False)
        arena_platform, arena, arena_out = _run_securekeeper(True)
        assert arena_out == classic_out
        assert arena.stats.staged_values > 0
        assert_arena_decomposition(classic_platform, arena_platform, arena)

    def test_arena_run_is_strictly_cheaper_when_it_stages(self):
        classic_platform, _none, _ = _run_paldb(False)
        arena_platform, arena, _ = _run_paldb(True)
        assert arena_platform.clock.now_ns < classic_platform.clock.now_ns

    def test_decomposition_is_deterministic_across_runs(self):
        first_platform, first_arena, first_out = _run_paldb(True)
        second_platform, second_arena, second_out = _run_paldb(True)
        assert first_out == second_out
        assert first_platform.snapshot() == second_platform.snapshot()
        assert first_arena.stats.to_dict() == second_arena.stats.to_dict()


class TestEncodeOncePins:
    """Satellite 4: offer encodes once; flush must not re-encode."""

    def _single_call_ledger(self, with_arena: bool):
        app = Partitioner(
            PartitionOptions(name="arena_diff_single")
        ).partition(list(ARENA_MICRO_CLASSES))
        with app.start() as session:
            attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1e15)
            )
            arena = attach_arena(session) if with_arena else None
            with session.on_side(Side.UNTRUSTED):
                sink = TrustedSink()
                before = {k: tuple(v) for k, v in session.platform.snapshot().items()}
                sink.push(["solo", "payload"])
                session.runtime.batcher.flush()
                after = {k: tuple(v) for k, v in session.platform.snapshot().items()}
        return before, after, arena

    def test_classic_single_call_flush_serializes_once(self):
        before, after, _none = self._single_call_ledger(False)
        serialize_counts = {
            category: after[category][0] - before.get(category, (0, 0.0))[0]
            for category in after
            if category.startswith("rmi.serialize")
        }
        # One batchable call, one list argument: exactly one serialize.
        assert sum(serialize_counts.values()) == 1

    def test_arena_single_call_flush_stages_once(self):
        before, after, arena = self._single_call_ledger(True)
        assert arena.stats.staged_values == 1
        stage_count = after["sgx.arena.stage"][0] - before.get(
            "sgx.arena.stage", (0, 0.0)
        )[0]
        mac_count = after["sgx.arena.mac"][0] - before.get(
            "sgx.arena.mac", (0, 0.0)
        )[0]
        assert stage_count == 1
        assert mac_count == 1
        serialized = sum(
            after[c][0] - before.get(c, (0, 0.0))[0]
            for c in after
            if c.startswith("rmi.serialize")
        )
        assert serialized == 0

    def test_multi_call_batch_macs_once_per_crossing(self):
        app = Partitioner(
            PartitionOptions(name="arena_diff_batchmac")
        ).partition(list(ARENA_MICRO_CLASSES))
        with app.start() as session:
            attach_batching(session, BatchPolicy(max_batch=8, window_ns=1e15))
            arena = attach_arena(session)
            with session.on_side(Side.UNTRUSTED):
                sink = TrustedSink()
                for index in range(16):  # exactly two size-triggered batches
                    sink.push([f"v{index}"])
            snapshot = dict(session.platform.snapshot())
        assert arena.stats.staged_values == 16
        assert snapshot["sgx.arena.stage"][0] == 16
        assert snapshot["sgx.arena.mac"][0] == 2  # one MAC per crossing


class TestOffloadAblation:
    def test_winner_flips_between_kernels(self):
        from repro.experiments.offload_exp import run_offload

        report = run_offload()
        winners = report.winners
        assert winners["fft"] == "offload"
        assert winners["sparse"] == "offload"
        assert winners["monte_carlo"] == "in-enclave"
        assert all(v.checksums_match for v in report.verdicts)
        assert report.arena_noop_identical

    def test_offload_fingerprint_is_deterministic(self):
        from repro.experiments.offload_exp import run_offload

        assert run_offload().fingerprint() == run_offload().fingerprint()

    def test_dma_channel_prices_both_directions(self):
        from repro.costs.platform import fresh_platform
        from repro.sgx.dma import DmaChannel

        platform = fresh_platform()
        channel = DmaChannel(platform)
        out_ns = channel.ship_to_device(1 << 20)
        launch_ns = channel.launch("fft")
        back_ns = channel.fetch_from_device(1 << 17)
        assert out_ns > back_ns > 0
        assert launch_ns > 0
        snapshot = dict(platform.snapshot())
        for category in ("sgx.dma.stage", "sgx.dma.mac", "sgx.dma.out",
                        "sgx.dma.in", "sgx.dma.launch.fft"):
            assert category in snapshot
        assert channel.stats.bytes_moved == (1 << 20) + (1 << 17)
        # Shipping pays staging; fetching reads the device's DMA in
        # place, so the same byte count costs strictly less coming back.
        assert channel.ship_to_device(1 << 17) > back_ns
