"""Secure values end to end: runtime semantics, seal pricing on the
RMI path, the zero-cost-when-unused guarantee, and the ``repro secv``
granularity ablation."""

import json

import pytest

from repro.core import Partitioner, PartitionOptions
from repro.core.secure import (
    MAX_PROVENANCE,
    SEAL_BYTE_CYCLES,
    SEAL_FIXED_CYCLES,
    SecureValue,
    declassify,
    is_secure,
    secure,
    secure_payload_cycles,
)
from repro.experiments.secv_exp import (
    SECURE_CHARGE_KEYS,
    run_bank,
    run_secv,
)


class TestSecureValueSemantics:
    def test_secure_records_origin_provenance(self):
        value = secure(41, "pin")
        assert value.value == 41
        assert value.label == "pin"
        assert value.provenance == ("secure:pin",)
        assert secure(41).provenance == ("secure",)

    def test_secure_is_idempotent(self):
        value = secure(41, "pin")
        assert secure(value) is value
        assert secure(value, "other") is value  # first label wins

    def test_derive_keeps_label_and_extends_chain(self):
        derived = secure(100, "balance").derive("settled", 107)
        assert derived.value == 107
        assert derived.label == "balance"
        assert derived.provenance == ("secure:balance", "derive:settled")

    def test_provenance_chain_is_bounded(self):
        value = secure(0, "x")
        for step in range(MAX_PROVENANCE * 2):
            value = value.derive(f"s{step}", step)
        assert len(value.provenance) == MAX_PROVENANCE
        # Oldest steps fall off the front; the newest is always last.
        assert value.provenance[-1] == f"derive:s{MAX_PROVENANCE * 2 - 1}"
        assert "secure:x" not in value.provenance

    def test_declassify_unwraps_with_reason(self):
        assert declassify(secure("s3cret", "pw"), "test exit") == "s3cret"

    def test_declassify_passes_plain_values_through(self):
        assert declassify(17, "uniform call site") == 17

    @pytest.mark.parametrize("reason", ("", "   "))
    def test_declassify_requires_a_real_reason(self, reason):
        with pytest.raises(ValueError):
            declassify(secure(1, "x"), reason)

    def test_is_secure(self):
        assert is_secure(secure(1))
        assert not is_secure(1)
        assert not is_secure(None)

    def test_repr_never_leaks_the_payload(self):
        text = repr(secure("hunter2", "pw"))
        assert "hunter2" not in text
        assert "pw" in text


class TestSealPricing:
    def test_cycle_model_matches_the_sealing_service(self):
        from repro.sgx import sealing

        assert SEAL_FIXED_CYCLES == sealing.SEAL_FIXED_CYCLES
        assert SEAL_BYTE_CYCLES == sealing.SEAL_BYTE_CYCLES
        assert secure_payload_cycles(100) == SEAL_FIXED_CYCLES + 100 * SEAL_BYTE_CYCLES
        assert secure_payload_cycles(0) == SEAL_FIXED_CYCLES

    def test_secure_crossings_charge_seal_categories(self):
        from repro.apps.secv import SECV_BANK_CLASSES, SettlementVault, ValueAccount

        app = Partitioner(PartitionOptions(name="seal_pricing")).partition(
            list(SECV_BANK_CLASSES)
        )
        with app.start():
            vault = SettlementVault()
            account = ValueAccount("a", vault, 100)
            account.update_balance(7)
            account.settle(vault)
            ledger = dict(app.platform.snapshot())
        for key in SECURE_CHARGE_KEYS:
            count, elapsed = ledger[key]
            assert count > 0 and elapsed > 0.0

    def test_plain_payloads_never_touch_seal_categories(self):
        from repro.apps.bank import BANK_CLASSES, Account

        app = Partitioner(PartitionOptions(name="zero_cost")).partition(
            list(BANK_CLASSES)
        )
        with app.start():
            account = Account("a", 100)
            account.update_balance(7)
            assert account.get_balance() == 107
            ledger = dict(app.platform.snapshot())
        assert not any(key in ledger for key in SECURE_CHARGE_KEYS)


@pytest.fixture(scope="module")
def quick_report():
    return run_secv(quick=True)


class TestSecvExperiment:
    def test_quick_sweep_is_deterministic(self, quick_report):
        assert quick_report.fingerprint() == run_secv(quick=True).fingerprint()

    def test_value_granularity_strictly_shrinks_the_tcb(self, quick_report):
        for app in quick_report.apps():
            assert quick_report.tcb_saved_bytes(app) > 0, app
            class_run = quick_report.get(app, "class")
            value_run = quick_report.get(app, "value")
            assert value_run.trusted_methods < class_run.trusted_methods

    def test_value_granularity_never_adds_crossings(self, quick_report):
        for app in quick_report.apps():
            assert quick_report.crossings_saved(app) >= 0, app

    def test_checksums_match_and_zero_cost_holds(self, quick_report):
        assert quick_report.checksum_match == {"bank": True, "securekeeper": True}
        assert quick_report.zero_cost == {"bank": True, "securekeeper": True}

    def test_bank_pays_for_sealing_keeper_avoids_crossings(self, quick_report):
        # Two complementary demonstrations: the bank settles through the
        # enclave (sealed payloads cross, and pay), while the keeper's
        # sealed payloads live in the untrusted store and never cross.
        bank = quick_report.get("bank", "value")
        assert bank.secure_seals > 0 and bank.secure_unseals > 0
        keeper = quick_report.get("securekeeper", "value")
        assert keeper.secure_seals == 0 and keeper.secure_unseals == 0

    def test_single_run_matches_report_cell(self, quick_report):
        cell = run_bank("value", 3, 6)
        assert cell.to_dict() == quick_report.get("bank", "value").to_dict()

    def test_artifact_round_trips_with_fingerprint(self, quick_report, tmp_path):
        path = tmp_path / "secv.json"
        quick_report.write_artifact(str(path))
        artifact = json.loads(path.read_text())
        secv = artifact["secv"]
        assert secv["fingerprint"] == quick_report.fingerprint()
        assert secv["quick"] is True
        assert len(secv["runs"]) == 4
        assert set(secv["tcb_saved_bytes"]) == {"bank", "securekeeper"}


class TestSecvCli:
    def test_repro_secv_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "secv.json"
        assert main(["secv", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "fingerprint=" in stdout
        assert "zero-cost" in stdout

    def test_wire_decode_of_secure_tag_needs_no_imports_run(self):
        # The decoder builds SecureValue structurally; no app code runs.
        from repro.core import wire

        blob = wire.dumps(secure({"k": 1}, "lbl"))
        decoded = wire.loads(blob)
        assert isinstance(decoded, SecureValue)
        assert decoded.value == {"k": 1}
