"""Tests for exception marshalling across the enclave boundary.

Live exception objects cannot cross a real enclave boundary; the
runtime serializes (type, args) and reconstructs on the caller side."""

import pytest

from repro.apps.bank import BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import trusted, untrusted
from repro.errors import RegistryError, RmiError


class AppFailure(Exception):
    """A custom application exception (not reconstructible remotely)."""


@trusted
class Failing:
    def __init__(self, mode: str) -> None:
        self.mode = mode

    def explode(self):
        if self.mode == "value":
            raise ValueError("bad input", 42)
        if self.mode == "key":
            raise KeyError("missing")
        if self.mode == "custom":
            raise AppFailure("application-specific problem")
        if self.mode == "unpicklable":
            raise ValueError(lambda: None)
        return "fine"

    def fail_in_constructor(self):
        return Breaker(-1)


@trusted
class Breaker:
    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError("constructor rejects negatives")
        self.value = value


@untrusted
class Caller:
    def trigger(self, failing: Failing):
        return failing.explode()


@pytest.fixture()
def session():
    app = Partitioner(PartitionOptions(name="exc")).partition(
        [Failing, Breaker, Caller]
    )
    with app.start() as live:
        yield live


class TestExceptionMarshalling:
    def test_builtin_exception_reconstructed(self, session):
        failing = Failing("value")
        with pytest.raises(ValueError) as excinfo:
            failing.explode()
        assert excinfo.value.args == ("bad input", 42)

    def test_keyerror_reconstructed(self, session):
        failing = Failing("key")
        with pytest.raises(KeyError):
            failing.explode()

    def test_custom_exception_becomes_rmi_error(self, session):
        failing = Failing("custom")
        with pytest.raises(RmiError) as excinfo:
            failing.explode()
        assert "AppFailure" in str(excinfo.value)
        assert "application-specific problem" in str(excinfo.value)

    def test_unpicklable_exception_payload_degrades_to_string(self, session):
        failing = Failing("unpicklable")
        with pytest.raises(ValueError):
            failing.explode()

    def test_constructor_exception_crosses(self, session):
        with pytest.raises(ValueError) as excinfo:
            Breaker(-5)
        assert "rejects negatives" in str(excinfo.value)

    def test_nested_relay_exception_crosses_twice(self, session):
        """untrusted -> trusted -> (raise) -> untrusted -> caller."""
        from repro.core import Side

        failing = Failing("value")
        with session.on_side(Side.TRUSTED):
            caller = Caller()  # proxy to the untrusted Caller mirror
            with pytest.raises(ValueError):
                caller.trigger(failing)

    def test_infrastructure_errors_not_masked(self, session):
        """Runtime errors (registry misses...) stay typed."""
        from repro.core import Side
        from repro.core.proxy import proxy_hash

        failing = Failing("value")
        session.runtime.state_of(Side.TRUSTED).registry.remove(proxy_hash(failing))
        with pytest.raises(RegistryError):
            failing.explode()

    def test_mirror_stays_usable_after_exception(self, session):
        failing = Failing("fine")
        assert failing.explode() == "fine"
        failing.mode = None  # proxies have no fields: AttributeError? no —
        # setting attributes on a proxy only touches the proxy object;
        # the mirror's mode is unchanged.
        assert failing.explode() == "fine"

    def test_exception_costs_serialization(self, session):
        failing = Failing("value")
        before = session.platform.ledger.count("rmi.serialize.enclave")
        with pytest.raises(ValueError):
            failing.explode()
        assert session.platform.ledger.count("rmi.serialize.enclave") > before
