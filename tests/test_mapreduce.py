"""Tests for the VC3-style trustworthy MapReduce application."""

import pytest

from repro.apps.mapreduce import (
    MAPREDUCE_CLASSES,
    JobTracker,
    MapReduceError,
    TrustedMapper,
    TrustedReducer,
    run_wordcount,
    seal_input,
    wordcount_reference,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.core.proxy import is_proxy

LINES = [
    "the quick brown fox jumps over the lazy dog",
    "The dog barks; the fox runs.",
    "Quick thinking wins, quick acting wins more.",
    "",
    "fox fox fox",
]


@pytest.fixture()
def session():
    with native_session() as live:
        yield live


class TestWordCount:
    def test_matches_reference(self, session):
        assert run_wordcount(LINES) == wordcount_reference(LINES)

    def test_case_and_punctuation_normalised(self, session):
        results = run_wordcount(LINES)
        assert results["the"] == 4
        assert results["fox"] == 5
        assert results["quick"] == 3

    def test_split_count_does_not_change_result(self, session):
        assert run_wordcount(LINES, n_splits=1) == run_wordcount(LINES, n_splits=7)

    def test_empty_input(self, session):
        assert run_wordcount([]) == {}

    def test_large_input_consistency(self, session):
        lines = [f"alpha beta gamma token{i % 17}" for i in range(300)]
        results = run_wordcount(lines, n_splits=5)
        assert results["alpha"] == 300
        assert results == wordcount_reference(lines)


class TestConfidentiality:
    def test_framework_only_sees_ciphertext(self, session):
        """VC3's property: Hadoop never sees plaintext records."""
        sealed = seal_input("secret", ["classified payload data"])
        assert all(b"classified" not in blob for blob in sealed)
        tracker = JobTracker(n_splits=2)
        splits = tracker.make_splits(sealed)
        flat = [blob for split in splits for blob in split]
        assert all(b"classified" not in blob for blob in flat)

    def test_map_outputs_are_sealed(self, session):
        mapper = TrustedMapper("secret")
        sealed = seal_input("secret", ["topsecretword appears here"])
        emitted = mapper.map_split(sealed)
        assert emitted
        assert all(b"topsecretword" not in blob for _, blob in emitted)

    def test_wrong_job_key_rejected(self, session):
        sealed = seal_input("key-A", ["data"])
        mapper = TrustedMapper("key-B")
        with pytest.raises(MapReduceError):
            mapper.map_split(sealed)

    def test_tampered_record_rejected(self, session):
        sealed = seal_input("key", ["data"])
        corrupted = sealed[0][:-1] + bytes([sealed[0][-1] ^ 1])
        with pytest.raises(MapReduceError):
            TrustedMapper("key").map_split([corrupted])

    def test_invalid_split_count_rejected(self, session):
        with pytest.raises(MapReduceError):
            JobTracker(n_splits=0)


class TestPartitionedMapReduce:
    def test_mapper_reducer_in_enclave_tracker_outside(self):
        app = Partitioner(PartitionOptions(name="vc3")).partition(
            list(MAPREDUCE_CLASSES)
        )
        with app.start() as session:
            mapper = TrustedMapper("s")
            reducer = TrustedReducer("s")
            tracker = JobTracker()
            assert is_proxy(mapper) and is_proxy(reducer)
            assert not is_proxy(tracker)

    def test_end_to_end_partitioned(self):
        app = Partitioner(PartitionOptions(name="vc3_run")).partition(
            list(MAPREDUCE_CLASSES)
        )
        with app.start() as session:
            results = run_wordcount(LINES, n_splits=3)
            assert results == wordcount_reference(LINES)
            # Map/reduce phases crossed into the enclave.
            assert session.transition_stats.ecalls >= 5

    def test_shuffle_accounted(self):
        app = Partitioner(PartitionOptions(name="vc3_shuffle")).partition(
            list(MAPREDUCE_CLASSES)
        )
        with app.start():
            sealed = seal_input("job-key", LINES)
            tracker = JobTracker(n_splits=2)
            mapper = TrustedMapper("job-key")
            splits = tracker.make_splits(sealed)
            mapped = [mapper.map_split(s) for s in splits if s]
            tracker.shuffle(mapped)
            assert tracker.shuffle_bytes > 0
