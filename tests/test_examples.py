"""Integration tests: every example script runs and reports the
expected behaviour."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Person pruned from trusted image: True" in out
        assert "enclave measurement verified" in out
        assert "alice's account is a proxy: True" in out
        assert "alice balance: 75  bob balance: 50" in out
        assert "3 released by the GC helper" in out

    def test_secure_kv_store(self):
        out = run_example("secure_kv_store.py")
        assert "wrote/read 10000 pairs" in out
        assert "partitioning speed-up:" in out
        # RTWU speed-up in the paper's neighbourhood.
        speedup = float(out.split("partitioning speed-up: ")[1].split("x")[0])
        assert 1.8 <= speedup <= 3.5

    def test_pagerank_analytics(self):
        out = run_example("pagerank_analytics.py")
        assert "max deviation from in-memory reference:" in out
        deviation = float(
            out.split("max deviation from in-memory reference: ")[1].split()[0]
        )
        assert deviation < 1e-6
        assert "engine (in enclave):" in out

    def test_blockchain_contracts(self):
        out = run_example("blockchain_contracts.py")
        assert "total supply conserved: 1000000" in out
        assert "accepted=3 rejected=2" in out

    def test_multi_isolate_sealing(self):
        out = run_example("multi_isolate_sealing.py")
        assert "trusted/crypto: mirrors=1" in out
        assert "unsealed inside the enclave: key_id=k-2026-07" in out
        assert "1 mirror(s) released" in out

    def test_trusted_analytics(self):
        out = run_example("trusted_analytics.py")
        assert "word count over 200 sealed lines" in out
        assert "the=280" in out
        assert "TCB — Montsalvat partitioned" in out

    def test_secure_training(self):
        out = run_example("secure_training.py")
        assert "recovered weights:" in out
        assert "sealed checkpoint:" in out
        # Training recovered the first coefficient to ~2 decimals.
        recovered = out.split("recovered weights: [")[1].split(",")[0]
        assert abs(float(recovered) - 0.8) < 0.05

    def test_secure_values(self):
        out = run_example("secure_values.py")
        assert "1050" not in out.split("declassified:")[0]  # repr never leaks
        assert "declassified: 1050" in out
        assert "same answer from both granularities: True" in out
        saved_tcb = int(out.split("TCB bytes saved by secure values:")[1].split()[0])
        saved_x = int(out.split("crossings saved by secure values:")[1].split()[0])
        assert saved_tcb > 0 and saved_x > 0


class TestPaperConstants:
    """Regression pins on the constants the paper states explicitly."""

    def test_ecall_cost_is_papers_13100_cycles(self):
        from repro.costs import DEFAULT_COST_MODEL

        assert DEFAULT_COST_MODEL.transitions.ecall_cycles == 13_100.0

    def test_testbed_is_papers_server(self):
        from repro.costs import XEON_E3_1270

        assert XEON_E3_1270.cpu_ghz == 3.80
        assert XEON_E3_1270.epc_total_bytes == 128 * 1024 * 1024
        assert XEON_E3_1270.epc_usable_bytes == int(93.5 * 1024 * 1024)
        assert XEON_E3_1270.l3_bytes == 8 * 1024 * 1024

    def test_enclave_defaults_match_section_6_1(self):
        from repro.sgx.enclave import EnclaveConfig

        config = EnclaveConfig()
        assert config.heap_max_bytes == 4 * (1 << 30)  # 4 GB heaps
        assert config.stack_max_bytes == 8 * (1 << 20)  # 8 MB stacks

    def test_images_built_with_2gb_heaps(self):
        from repro.core.partitioner import PartitionOptions

        assert PartitionOptions().image_heap_max_bytes == 2 * (1 << 30)
