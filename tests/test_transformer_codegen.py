"""Tests for the bytecode-transformer analog and the SGX code generator."""

import pytest

from repro.apps.bank import BANK_CLASSES
from repro.core import BytecodeTransformer, Side
from repro.core.codegen import SgxCodeGenerator
from repro.core.transformer import GC_ROUTINES, SHIM_OCALLS
from repro.errors import PartitionError
from repro.graal.extraction import extract_classes
from repro.graal.jtypes import TrustLevel


@pytest.fixture()
def bank_ir():
    return extract_classes(BANK_CLASSES)


@pytest.fixture()
def result(bank_ir):
    return BytecodeTransformer().transform(bank_ir, main_entry="Main.main")


class TestTransform:
    def test_universes_are_disjoint_in_concretes(self, result):
        """Trusted image has no concrete untrusted classes; it only has
        their proxies — and vice versa (§5.2)."""
        trusted_person = result.trusted_universe["Person"]
        # Person exists in the trusted universe only as a stripped proxy:
        # it carries the hash field, not its real fields.
        field_names = {f.name for f in trusted_person.fields}
        assert field_names == {"hash"}
        untrusted_account = result.untrusted_universe["Account"]
        assert {f.name for f in untrusted_account.fields} == {"hash"}

    def test_concrete_classes_keep_their_fields(self, result):
        account = result.trusted_universe["Account"]
        assert {"owner", "balance"} <= {f.name for f in account.fields}

    def test_relays_added_to_concrete_classes(self, result):
        account = result.trusted_universe["Account"]
        relay_names = {m.name for m in account.methods if m.name.startswith("relay_")}
        assert {"relay_init", "relay_update_balance", "relay_get_balance"} <= relay_names

    def test_proxies_have_no_relays(self, result):
        person_proxy = result.trusted_universe["Person"]
        assert not any(m.name.startswith("relay_") for m in person_proxy.methods)

    def test_proxy_methods_mirror_public_methods(self, result):
        person_proxy = result.trusted_universe["Person"]
        names = {m.name for m in person_proxy.methods}
        assert {"__init__", "get_account", "transfer"} <= names

    def test_relay_specs_cover_both_sides(self, result):
        trusted_specs = result.relay_specs[Side.TRUSTED]
        untrusted_specs = result.relay_specs[Side.UNTRUSTED]
        assert all(s.transition == "ecall" for s in trusted_specs)
        assert all(s.transition == "ocall" for s in untrusted_specs)
        assert any(s.kind == "constructor" for s in trusted_specs)

    def test_entry_points(self, result):
        assert result.untrusted_entry_points[0] == "Main.main"
        assert "Account.relay_init" in result.trusted_entry_points
        assert all("." in e for e in result.trusted_entry_points)

    def test_relay_entry_points_are_valid_centrypoints(self, result):
        from repro.graal.entrypoints import validate_entry_point

        for specs in result.relay_specs.values():
            for spec in specs:
                validate_entry_point(spec.entry_point)  # must not raise

    def test_neutral_classes_untouched(self, bank_ir):
        class Helper:
            def assist(self):
                return 1

        ir = dict(bank_ir)
        ir.update(extract_classes([Helper]))
        result = BytecodeTransformer().transform(ir, main_entry="Main.main")
        helper_t = result.trusted_universe["Helper"]
        helper_u = result.untrusted_universe["Helper"]
        assert helper_t.trust is TrustLevel.NEUTRAL
        assert helper_t.methods == helper_u.methods

    def test_no_trusted_classes_rejected(self):
        class OnlyNeutral:
            def run(self):
                return 1

        ir = extract_classes([OnlyNeutral])
        with pytest.raises(PartitionError):
            BytecodeTransformer().transform(ir)

    def test_synthetic_driver_when_no_main(self, bank_ir):
        # Drop the untrusted classes so there are no untrusted relays.
        ir = {k: v for k, v in bank_ir.items() if k in ("Account", "AccountRegistry")}
        result = BytecodeTransformer().transform(ir)
        assert result.untrusted_entry_points == ("MontsalvatDriver.main",)
        assert "MontsalvatDriver" in result.untrusted_universe


class TestCodegen:
    @pytest.fixture()
    def artifacts(self, result):
        return SgxCodeGenerator("bankapp").generate(result)

    def test_all_expected_files(self, artifacts):
        names = artifacts.names()
        assert "bankapp.edl" in names
        assert "ecalls.c" in names and "ocalls.c" in names
        assert "shim_ocalls.c" in names
        assert "bankapp_t.c" in names and "bankapp_u.h" in names

    def test_edl_routes_unique(self, result):
        edl = SgxCodeGenerator("bankapp").build_edl(result)
        names = edl.routine_names()
        assert len(names) == len(set(names))

    def test_edl_contains_every_relay(self, artifacts, result):
        for spec in result.relay_specs[Side.TRUSTED]:
            assert f"ecall_{spec.class_name}_{spec.relay_name}" in artifacts.edl_text
        for spec in result.relay_specs[Side.UNTRUSTED]:
            assert f"ocall_{spec.class_name}_{spec.relay_name}" in artifacts.edl_text

    def test_edl_contains_shim_and_gc(self, artifacts):
        for routine in SHIM_OCALLS:
            assert routine in artifacts.edl_text
        for routine in GC_ROUTINES:
            assert routine in artifacts.edl_text

    def test_ecall_defs_fetch_trusted_isolate(self, artifacts):
        text = artifacts["ecalls.c"]
        assert "get_trusted_isolate()" in text
        assert "ecall_Account_relay_update_balance" in text

    def test_ocall_defs_fetch_untrusted_isolate(self, artifacts):
        text = artifacts["ocalls.c"]
        assert "get_untrusted_isolate()" in text
        assert "ocall_Person_relay_transfer" in text

    def test_shim_helper_invokes_real_libc(self, artifacts):
        text = artifacts["shim_ocalls.c"]
        assert "#include <unistd.h>" in text
        for call in ("open(", "read(", "write(", "fsync(", "close("):
            assert call in text

    def test_bridges_generated_by_edger8r(self, artifacts):
        assert "sgx_is_outside_enclave" in artifacts["bankapp_t.c"]

    def test_total_bytes_positive(self, artifacts):
        assert artifacts.total_bytes() > 1000
