"""Trace-driven batching (repro.batching).

Covers the shared ranking heuristic, the hot-site detector and MSV003
re-ranking, the call coalescer's flush triggers and pricing identity,
fault-aware batch semantics (mid-batch enclave loss, envelope
idempotency, batch-granularity refusal), runtime wiring (proxy marks,
teardown drain, transition accounting) and the ablation's determinism.
"""

from __future__ import annotations

import pytest

from repro.apps.bank import Account, BANK_CLASSES
from repro.batching import (
    CONFIRMED,
    STATIC_ONLY,
    TRACE_ONLY,
    BATCHABLE_ATTR,
    BatchPolicy,
    CallCoalescer,
    HotSiteDetector,
    attach_batching,
    batchable,
    crossing_rate_hz,
    rank_hot_routines,
    rerank_predictions,
    suggest_batch_size,
)
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import Side, trusted
from repro.core.proxy import make_proxy_class
from repro.costs.platform import fresh_platform
from repro.errors import (
    BatchingError,
    ConfigurationError,
    EnclaveLostError,
    NonIdempotentReplayError,
)
from repro.experiments import batching_exp
from tests.helpers import assert_ledgers_identical, session_ledger
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    RecoveryCoordinator,
    RetryPolicy,
    attach_recovery,
    idempotent,
)
from repro.obs.artifacts import validate_artifact
from repro.sgx.enclave import Enclave, EnclaveContents
from repro.sgx.profiler import (
    SWITCHLESS_CANDIDATE_HZ,
    RoutineProfile,
    TransitionProfiler,
)
from repro.sgx.transitions import TransitionLayer


@trusted
class Counter:
    """Module-level so checkpoint sealing can pickle its mirrors."""

    def __init__(self) -> None:
        self.total = 0

    @batchable
    def bump(self, amount: int) -> None:
        self.total += amount

    @batchable
    def mark(self) -> None:
        self.total += 1_000

    def snapshot(self) -> int:
        return self.total


@trusted
class LeakyVoid:
    """A method wrongly declared batchable: it returns a value."""

    def __init__(self) -> None:
        pass

    @batchable
    def leaky(self, n: int) -> int:
        return n


@trusted
class IdemSink:
    """Replay-safe batchable sink (idempotent by declaration)."""

    def __init__(self) -> None:
        self.ticks = 0

    @idempotent
    @batchable
    def tick(self) -> None:
        self.ticks += 1

    def count(self) -> int:
        return self.ticks


def _partitioned(classes, name="batchtest"):
    return Partitioner(PartitionOptions(name=name)).partition(list(classes))


def _profile(name, kind="ecall", calls=0, total_ns=0.0, payload=0):
    return RoutineProfile(
        name=name, kind=kind, calls=calls, total_ns=total_ns, payload_bytes=payload
    )


# ---------------------------------------------------------------------------
# Shared ranking heuristic
# ---------------------------------------------------------------------------


class TestRankingHeuristic:
    def test_rate_guards_zero_elapsed(self):
        assert crossing_rate_hz(100, 0.0) > 0
        assert crossing_rate_hz(100, 2.0) == pytest.approx(50.0)

    def test_rank_filters_by_rate_and_sorts_by_cost(self):
        profiles = [
            _profile("cold", calls=1, total_ns=9e9),
            _profile("warm", calls=5_000, total_ns=1e6),
            _profile("hot", calls=5_000, total_ns=2e6),
        ]
        ranked = rank_hot_routines(profiles, elapsed_s=1.0, min_rate_hz=1_000.0)
        assert [p.name for p in ranked] == ["hot", "warm"]

    def test_suggest_batch_size_rounds_to_power_of_two(self):
        # 10_000 calls/s over a 1 ms window = 10 expected -> 16.
        assert suggest_batch_size(10_000, 1.0, window_ns=1e6) == 16
        assert suggest_batch_size(0, 1.0, window_ns=1e6) == 1
        assert suggest_batch_size(10**9, 1.0, window_ns=1e9, max_batch=64) == 64

    def test_profiler_shares_the_heuristic(self):
        assert SWITCHLESS_CANDIDATE_HZ == 1_000.0
        app = _partitioned(BANK_CLASSES, name="heuristic")
        with app.start() as session:
            profiler = TransitionProfiler(session.transitions)
            account = Account("a", 0)
            for _ in range(64):
                account.update_balance(1)
            candidates = profiler.switchless_candidates()
            expected = rank_hot_routines(
                profiler.profiles(),
                profiler.elapsed_s,
                min_rate_hz=SWITCHLESS_CANDIDATE_HZ,
            )
            profiler.close()
        assert [p.name for p in candidates] == [p.name for p in expected]
        assert "relay_Account_update_balance" in {p.name for p in candidates}


# ---------------------------------------------------------------------------
# Hot-site detector + MSV003 re-ranking
# ---------------------------------------------------------------------------


class TestDetector:
    def test_detect_ranks_and_sizes(self):
        profiles = [
            _profile("quiet", calls=3, total_ns=1e3),
            _profile("busy", calls=40_000, total_ns=8e8, payload=40_000 * 8),
        ]
        sites = HotSiteDetector(window_ns=1e6).detect(profiles, elapsed_s=2.0)
        assert [s.routine for s in sites] == ["busy"]
        site = sites[0]
        assert site.rate_hz == pytest.approx(20_000.0)
        assert site.suggested_batch == 32  # 20 expected per ms window -> 32
        assert site.mean_payload == pytest.approx(8.0)
        assert "busy" in HotSiteDetector().report(sites)

    def test_from_profiler_live(self):
        app = _partitioned(BANK_CLASSES, name="detectlive")
        with app.start() as session:
            profiler = TransitionProfiler(session.transitions)
            account = Account("a", 0)
            for _ in range(64):
                account.update_balance(1)
            sites = HotSiteDetector().from_profiler(profiler)
            profiler.close()
        assert "relay_Account_update_balance" in {s.routine for s in sites}
        assert all(s.suggested_batch >= 1 for s in sites)

    def test_rerank_static_vs_trace_informed_order(self):
        # Static order: A (big estimate) before B. The trace disagrees:
        # B dominated measured cost and C (unpredicted) was hot too,
        # while A never crossed enough to matter.
        static = [
            _profile("relay_A", calls=500),
            _profile("relay_B", calls=100),
        ]
        dynamic = [
            _profile("relay_B", calls=9_000, total_ns=7e8),
            _profile("relay_C", calls=4_000, total_ns=3e8),
            _profile("relay_A", calls=2, total_ns=1e3),
        ]
        ranked = rerank_predictions(static, dynamic, elapsed_s=1.0)
        assert [(c.routine, c.source) for c in ranked] == [
            ("relay_B", CONFIRMED),
            ("relay_C", TRACE_ONLY),
            ("relay_A", STATIC_ONLY),
        ]
        # Static order alone would have put A first; the trace flipped it.
        assert [p.name for p in static][0] == "relay_A"
        assert ranked[0].observed_calls == 9_000
        assert ranked[0].predicted_calls == 100
        assert ranked[2].suggested_batch >= 1

    def test_linter_reranked_candidates(self):
        from repro.analysis import PartitionLinter
        from tests.fixtures.lintapp import LINT_FIXTURE_CLASSES, Station

        result = PartitionLinter().lint(LINT_FIXTURE_CLASSES)
        static = result.predicted_candidates()
        assert static  # MSV003 fired
        app = _partitioned(LINT_FIXTURE_CLASSES, name="rerank")
        with app.start() as session:
            profiler = TransitionProfiler(session.transitions)
            station = Station("hunter2")
            station.rekey(2_000)
            ranked = result.reranked_candidates(
                profiler.profiles(), profiler.elapsed_s
            )
            profiler.close()
        by_routine = {c.routine: c for c in ranked}
        confirmed = by_routine["relay_Vault_rotate"]
        assert confirmed.source == CONFIRMED
        assert confirmed.observed_calls >= 2_000
        # The trace decides priority: measured-hot routines lead.
        assert all(
            c.source in (CONFIRMED, TRACE_ONLY)
            for c in ranked[: len([c for c in ranked if c.source != STATIC_ONLY])]
        )
        assert ranked[0].source in (CONFIRMED, TRACE_ONLY)

    def test_policy_from_hot_sites(self):
        profiles = [_profile("relay_X_go", calls=50_000, total_ns=5e8)]
        sites = HotSiteDetector(window_ns=1e6).detect(profiles, elapsed_s=1.0)
        policy = BatchPolicy.from_hot_sites(sites)
        assert policy.covers("relay_X_go")
        assert not policy.covers("relay_X_stop")
        assert policy.size_for("relay_X_go") == sites[0].suggested_batch
        empty = BatchPolicy.from_hot_sites([])
        assert empty.routines == ()


# ---------------------------------------------------------------------------
# Call coalescer: flush triggers + pricing identity
# ---------------------------------------------------------------------------


class TestCoalescer:
    def test_empty_flush_is_free(self):
        app = _partitioned([Counter], name="emptyflush")
        with app.start() as session:
            coalescer = attach_batching(session)
            before = dict(session.platform.snapshot())
            assert coalescer.flush() == 0
            assert coalescer.barrier("test") == 0
            assert dict(session.platform.snapshot()) == before
            assert coalescer.stats.to_dict()["batches"] == 0

    def test_batch_reduces_crossings_same_result(self):
        totals = {}
        crossings = {}
        for batch_size in (None, 8):
            app = _partitioned([Counter], name="reduce")
            with app.start() as session:
                counter = Counter()
                if batch_size is not None:
                    attach_batching(
                        session,
                        BatchPolicy(max_batch=batch_size, window_ns=1e9),
                    )
                before = session.transition_stats.crossings
                for i in range(24):
                    counter.bump(i)
                totals[batch_size] = counter.snapshot()
                crossings[batch_size] = (
                    session.transition_stats.crossings - before
                )
        assert totals[None] == totals[8] == sum(range(24))
        # 24 calls in batches of 8 = 3 crossings (+1 read) vs 24 (+1).
        assert crossings[8] < crossings[None] / 4

    def test_single_call_flush_priced_identically_to_unbatched(self):
        ledgers = {}
        for batch_size in (None, 1):
            app = _partitioned([Counter], name="price1")
            with app.start() as session:
                counter = Counter()
                if batch_size is not None:
                    attach_batching(session, BatchPolicy(max_batch=1))
                for i in range(8):
                    counter.bump(i)
                assert counter.snapshot() == sum(range(8))
                ledgers[batch_size] = session_ledger(session)
        assert_ledgers_identical(ledgers[1], ledgers[None])

    def test_window_trigger(self):
        app = _partitioned([Counter], name="window")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1_000.0)
            )
            counter.bump(1)
            session.platform.charge_ns("test.idle", 50_000.0)
            counter.bump(2)  # queue is stale: drained before this joins
            assert coalescer.stats.flushes.get("window") == 1
            assert counter.snapshot() == 3

    def test_routine_switch_trigger(self):
        app = _partitioned([Counter], name="switch")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1e9)
            )
            counter.bump(1)
            counter.bump(2)
            counter.mark()  # different routine: bump-queue must drain
            assert coalescer.stats.flushes.get("routine-switch") == 1
            assert counter.snapshot() == 1_003

    def test_data_dependent_read_drains_queue(self):
        app = _partitioned([Counter], name="read")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1e9)
            )
            for i in range(5):
                counter.bump(1)
            assert coalescer.pending == 5
            assert counter.snapshot() == 5  # barrier drained first
            assert coalescer.pending == 0
            assert coalescer.stats.flushes.get("barrier:data-dependent") == 1

    def test_strict_void_rejects_value_returning_batchable(self):
        app = _partitioned([LeakyVoid], name="strict")
        with app.start() as session:
            leaky = LeakyVoid()
            attach_batching(session, BatchPolicy(max_batch=2, window_ns=1e9))
            with pytest.raises(BatchingError):
                leaky.leaky(1)
                leaky.leaky(2)  # batch-full flush surfaces the violation

    def test_non_batchable_falls_through(self):
        app = _partitioned([Counter], name="fallthrough")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(session)
            assert counter.snapshot() == 0  # offered, but not eligible
            assert coalescer.stats.fallthrough >= 1
            assert coalescer.stats.enqueued == 0

    def test_batchable_mark_survives_proxy_generation(self):
        proxy_cls = make_proxy_class(Counter)
        assert getattr(proxy_cls.bump, BATCHABLE_ATTR, False)
        assert not getattr(proxy_cls.snapshot, BATCHABLE_ATTR, False)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(window_ns=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(sizes=(("relay_*", 0),))

    def test_teardown_drains_open_queue(self):
        app = _partitioned([Counter], name="teardown")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1e9)
            )
            counter.bump(7)
            assert coalescer.pending == 1
        # The session's finally-block flushed before enclave teardown.
        assert coalescer.pending == 0
        assert coalescer.stats.flushes.get("explicit") == 1

    def test_detach_flushes_and_uninstalls(self):
        app = _partitioned([Counter], name="detach")
        with app.start() as session:
            counter = Counter()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=64, window_ns=1e9)
            )
            counter.bump(3)
            assert coalescer.detach() == 1
            assert session.runtime.batcher is None
            assert counter.snapshot() == 3

    def test_stats_crossings_saved(self):
        stats = CallCoalescer(runtime=None).stats
        stats.batches = 3
        stats.batched_calls = 24
        assert stats.crossings_saved == 21


# ---------------------------------------------------------------------------
# Fault-aware batch semantics
# ---------------------------------------------------------------------------


class TestBatchFaults:
    def _chaos_app(self, classes, routine, name, idempotent_patterns=()):
        app = _partitioned(classes, name=name)
        injector = FaultInjector(
            seed=99,
            rules=[
                FaultRule(
                    FaultKind.ENCLAVE_CRASH,
                    routine=routine,
                    at_call=1,
                    phase="mid",
                    max_fires=1,
                )
            ],
        )
        return app, injector

    def test_mid_batch_loss_refuses_whole_batch(self):
        app, injector = self._chaos_app(
            [Counter], "batch_Counter_bump", "midloss"
        )
        with app.start() as session:
            coordinator = attach_recovery(
                session,
                checkpoint_interval_ns=0.0,
                policy=RetryPolicy(max_attempts=4),
                platform_secret=b"t",
            )
            counter = Counter()
            coordinator.checkpoints.checkpoint()
            attach_batching(session, BatchPolicy(max_batch=4, window_ns=1e9))
            session.platform.enable_fault_injection(injector)
            acked = 0
            with pytest.raises(NonIdempotentReplayError):
                for _ in range(4):
                    counter.bump(1)
                    acked += 1
            # Three members were silently acknowledged; the whole batch
            # was refused replay as one unit and rolled back.
            assert acked == 3
            assert coordinator.stats.calls_refused == 4
            session.platform.disable_fault_injection()
            session.runtime.recovery = None
            assert counter.snapshot() == 0

    def test_idempotent_batch_replays_after_mid_loss(self):
        app, injector = self._chaos_app(
            [IdemSink], "batch_IdemSink_tick", "midreplay"
        )
        with app.start() as session:
            coordinator = attach_recovery(
                session,
                checkpoint_interval_ns=0.0,
                policy=RetryPolicy(max_attempts=4),
                platform_secret=b"t",
            )
            sink = IdemSink()
            coordinator.checkpoints.checkpoint()
            attach_batching(session, BatchPolicy(max_batch=4, window_ns=1e9))
            session.platform.enable_fault_injection(injector)
            for _ in range(4):
                sink.tick()  # @idempotent: the envelope may replay
            session.platform.disable_fault_injection()
            assert coordinator.stats.retries >= 1
            assert coordinator.stats.calls_refused == 0
            session.runtime.recovery = None
            # Rolled back to the checkpoint, then replayed in full.
            assert sink.count() == 4

    def test_envelope_conjunction_one_bad_call_poisons_batch(self):
        app, injector = self._chaos_app(
            [Counter], "batch_Counter_bump", "poison"
        )
        with app.start() as session:
            coordinator = attach_recovery(
                session,
                checkpoint_interval_ns=0.0,
                policy=RetryPolicy(max_attempts=4),
                platform_secret=b"t",
            )
            counter = Counter()
            coordinator.checkpoints.checkpoint()
            coalescer = attach_batching(
                session, BatchPolicy(max_batch=8, window_ns=1e9)
            )
            session.platform.enable_fault_injection(injector)
            # Three replay-safe calls and one that is not: the
            # envelope's bit is the conjunction, so the loss refuses
            # all four.
            for hint in (True, True, False, True):
                assert coalescer.offer(
                    counter,
                    "Counter",
                    "bump",
                    (1,),
                    {},
                    Side.UNTRUSTED,
                    Side.TRUSTED,
                    hint,
                )
            with pytest.raises(NonIdempotentReplayError):
                coalescer.flush()
            assert coordinator.stats.calls_refused == 4
            session.platform.disable_fault_injection()
            session.runtime.recovery = None

    def test_run_with_retry_counts_refused_calls(self):
        platform = fresh_platform()
        enclave = Enclave(platform, EnclaveContents("rc", b"x" * 2_000))
        enclave.initialize()
        coordinator = RecoveryCoordinator(enclave, policy=RetryPolicy())

        def doomed():
            raise EnclaveLostError("mid loss", phase="mid", transient=True)

        with pytest.raises(NonIdempotentReplayError):
            coordinator.run_with_retry(
                doomed, routine="batch_x", invocation_id=1, calls=5
            )
        assert coordinator.stats.calls_refused == 5

    def test_checkpoints_amortised_per_batch(self):
        # Eager checkpointing seals once per *crossing*: a batch of 8
        # calls seals once, not eight times.
        seals = {}
        for batch_size in (None, 8):
            app = _partitioned([Counter], name="amortise")
            with app.start() as session:
                coordinator = attach_recovery(
                    session, checkpoint_interval_ns=0.0, platform_secret=b"t"
                )
                counter = Counter()
                coordinator.checkpoints.checkpoint()
                baseline = coordinator.checkpoints.stats.checkpoints
                if batch_size is not None:
                    attach_batching(
                        session, BatchPolicy(max_batch=batch_size, window_ns=1e9)
                    )
                for _ in range(8):
                    counter.bump(1)
                if session.runtime.batcher is not None:
                    session.runtime.batcher.flush()
                seals[batch_size] = (
                    coordinator.checkpoints.stats.checkpoints - baseline
                )
                session.runtime.recovery = None
        assert seals[8] < seals[None]
        assert seals[8] >= 1


# ---------------------------------------------------------------------------
# Transition accounting
# ---------------------------------------------------------------------------


class TestTransitionAccounting:
    def test_batch_crossing_counts(self):
        platform = fresh_platform()
        enclave = Enclave(platform, EnclaveContents("tx", b"x" * 2_000))
        enclave.initialize()
        layer = TransitionLayer(platform, enclave)
        layer.ecall("solo", lambda: None)
        layer.ecall("batch", lambda: None, calls=6)
        layer.ocall("obatch", lambda: None, calls=3)
        assert layer.stats.crossings == 3
        assert layer.stats.batch_crossings == 2
        assert layer.stats.batched_calls == 9
        assert layer.stats.logical_calls == 10

    def test_profiler_separates_calls_from_crossings(self):
        platform = fresh_platform()
        enclave = Enclave(platform, EnclaveContents("pf", b"x" * 2_000))
        enclave.initialize()
        layer = TransitionLayer(platform, enclave)
        profiler = TransitionProfiler(layer)
        layer.ecall("hot", lambda: None, calls=4)
        layer.ecall("hot", lambda: None)
        profiler.close()
        profile = {p.name: p for p in profiler.profiles()}["hot"]
        assert profile.calls == 5
        assert profile.crossings == 2


# ---------------------------------------------------------------------------
# The ablation
# ---------------------------------------------------------------------------


class TestBatchingExperiment:
    def test_batch1_ledger_identical_to_unbatched(self):
        base = batching_exp.run_bank_batching(None, n_accounts=2, rounds=8)
        one = batching_exp.run_bank_batching(1, n_accounts=2, rounds=8)
        assert base.ledger == one.ledger
        assert base.checksum == one.checksum
        assert base.elapsed_s == one.elapsed_s

    def test_speedup_and_crossings_at_batch_16(self):
        base = batching_exp.run_bank_batching(None)
        fast = batching_exp.run_bank_batching(16)
        assert base.checksum == fast.checksum
        assert base.elapsed_s / fast.elapsed_s >= 2.0
        assert fast.crossings < base.crossings / 4
        assert fast.crossings_saved > 0

    def test_durability_scales_with_batch_size(self):
        one = batching_exp.run_bank_durability(1, n_updates=8)
        four = batching_exp.run_bank_durability(4, n_updates=8)
        assert one.lost_acked == 0
        assert four.lost_acked == 3
        assert four.calls_refused == 4
        assert one.enclave_losses == four.enclave_losses == 1

    def test_report_fingerprint_deterministic_and_artifact_valid(self):
        kwargs = dict(
            batch_sizes=(None, 1, 4),
            durability_sizes=(None, 2),
            workloads=("bank",),
        )
        first = batching_exp.run_batching(**kwargs)
        second = batching_exp.run_batching(**kwargs)
        assert first.fingerprint() == second.fingerprint()
        assert first.identical == {"bank": True}
        artifact = first.to_artifact()
        validate_artifact(artifact)  # raises on malformed documents
        assert artifact["batching"]["fingerprint"] == first.fingerprint()
        assert "bank" in first.format()
