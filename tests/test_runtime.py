"""Unit tests for execution contexts, heaps, GC and the proxy tracker."""

import gc

import pytest

from repro.costs import fresh_platform
from repro.errors import ConfigurationError, HeapError
from repro.runtime import (
    ExecutionContext,
    Location,
    ProxyTracker,
    ResourceUsage,
    RuntimeKind,
    SimHeap,
)


def host_ctx(platform=None):
    return ExecutionContext(platform or fresh_platform(), Location.HOST)


def enclave_ctx(platform=None):
    return ExecutionContext(platform or fresh_platform(), Location.ENCLAVE)


class TestExecutionContext:
    def test_compute_charges_cycles(self):
        ctx = host_ctx()
        ns = ctx.compute(3800.0)
        assert ns == pytest.approx(1000.0)

    def test_enclave_memory_pays_mee(self):
        platform_out = fresh_platform()
        platform_in = fresh_platform()
        out_ns = host_ctx(platform_out).memory_traffic(1_000_000)
        in_ns = enclave_ctx(platform_in).memory_traffic(1_000_000)
        mee = platform_in.cost_model.memory.mee_multiplier
        assert in_ns == pytest.approx(out_ns * mee)

    def test_paging_kicks_in_above_epc(self):
        platform = fresh_platform()
        ctx = enclave_ctx(platform)
        epc = platform.spec.epc_usable_bytes
        small_ws = ctx.memory_traffic(10 * 4096, ws_bytes=epc // 2)
        assert platform.ledger.total_ns("epc.paging.enclave.app") == 0.0
        ctx.memory_traffic(10 * 4096, ws_bytes=epc * 4)
        assert platform.ledger.total_ns("epc.paging.enclave.app") > 0.0
        assert small_ws > 0.0

    def test_host_never_pays_paging(self):
        platform = fresh_platform()
        ctx = host_ctx(platform)
        ctx.memory_traffic(10 * 4096, ws_bytes=platform.spec.epc_usable_bytes * 10)
        assert platform.ledger.total_ns("epc.paging.host.app") == 0.0

    def test_enclave_syscall_is_an_ocall(self):
        platform = fresh_platform()
        ctx = enclave_ctx(platform)
        ctx.syscall(payload_bytes=4096, name="write")
        assert platform.ledger.count("transition.ocall.shim.write") == 1

    def test_host_syscall_is_not_an_ocall(self):
        platform = fresh_platform()
        host_ctx(platform).syscall(payload_bytes=4096, name="write")
        assert platform.ledger.count("transition.ocall") == 0

    def test_enclave_syscall_costs_more(self):
        p_in, p_out = fresh_platform(), fresh_platform()
        in_ns = enclave_ctx(p_in).syscall(payload_bytes=4096)
        out_ns = host_ctx(p_out).syscall(payload_bytes=4096)
        assert in_ns > out_ns * 2

    def test_jvm_inflates_compute(self):
        p_ni, p_jvm = fresh_platform(), fresh_platform()
        ni = ExecutionContext(p_ni, Location.HOST, RuntimeKind.NATIVE_IMAGE)
        jvm = ExecutionContext(p_jvm, Location.HOST, RuntimeKind.JVM)
        assert jvm.compute(1e6) > ni.compute(1e6)

    def test_jvm_inflates_memory(self):
        p_ni, p_jvm = fresh_platform(), fresh_platform()
        ni = ExecutionContext(p_ni, Location.HOST, RuntimeKind.NATIVE_IMAGE)
        jvm = ExecutionContext(p_jvm, Location.HOST, RuntimeKind.JVM)
        factor = p_jvm.cost_model.jvm.traffic_multiplier
        assert jvm.memory_traffic(1e6) == pytest.approx(ni.memory_traffic(1e6) * factor)

    def test_execute_resource_usage(self):
        ctx = host_ctx()
        usage = ResourceUsage(cpu_cycles=1000, mem_bytes=100, alloc_bytes=64, alloc_objects=1)
        assert ctx.execute(usage) > 0.0

    def test_usage_scaled(self):
        usage = ResourceUsage(cpu_cycles=10, mem_bytes=4, alloc_objects=2, alloc_bytes=8)
        scaled = usage.scaled(3)
        assert scaled.cpu_cycles == 30
        assert scaled.alloc_objects == 6

    def test_negative_inputs_rejected(self):
        ctx = host_ctx()
        with pytest.raises(ConfigurationError):
            ctx.compute(-1)
        with pytest.raises(ConfigurationError):
            ctx.memory_traffic(-1)
        with pytest.raises(ConfigurationError):
            ctx.allocate(-1)

    def test_sibling_switches_location(self):
        ctx = host_ctx()
        sibling = ctx.sibling(Location.ENCLAVE)
        assert sibling.in_enclave
        assert sibling.platform is ctx.platform


class TestSimHeap:
    def test_alloc_tracks_live_bytes(self):
        heap = SimHeap(host_ctx(), max_bytes=1 << 20)
        heap.alloc(100)
        heap.alloc(50)
        assert heap.stats.live_bytes == 150

    def test_free_moves_bytes_to_dead(self):
        heap = SimHeap(host_ctx(), max_bytes=1 << 20)
        ref = heap.alloc(100)
        heap.free(ref)
        assert heap.stats.live_bytes == 0
        assert heap.stats.dead_bytes == 100

    def test_double_free_rejected(self):
        heap = SimHeap(host_ctx(), max_bytes=1 << 20)
        ref = heap.alloc(10)
        heap.free(ref)
        with pytest.raises(HeapError):
            heap.free(ref)

    def test_collect_resets_dead(self):
        heap = SimHeap(host_ctx(), max_bytes=1 << 20)
        heap.free(heap.alloc(100))
        ns = heap.collect()
        assert ns > 0
        assert heap.stats.dead_bytes == 0
        assert heap.stats.collections == 1

    def test_gc_triggered_at_threshold(self):
        heap = SimHeap(host_ctx(), max_bytes=1000, gc_threshold=0.5)
        for _ in range(4):
            heap.free(heap.alloc(200))
        assert heap.stats.collections >= 1

    def test_exhaustion_raises(self):
        heap = SimHeap(host_ctx(), max_bytes=100)
        heap.alloc(90)
        with pytest.raises(HeapError):
            heap.alloc(50)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(HeapError):
            SimHeap(host_ctx(), max_bytes=0)
        heap = SimHeap(host_ctx(), max_bytes=100)
        with pytest.raises(HeapError):
            heap.alloc(0)

    def test_enclave_gc_order_of_magnitude_slower(self):
        """The Fig. 5a effect, at the unit level."""
        p_in, p_out = fresh_platform(), fresh_platform()
        heap_in = SimHeap(enclave_ctx(p_in), max_bytes=1 << 30)
        heap_out = SimHeap(host_ctx(p_out), max_bytes=1 << 30)
        for heap in (heap_in, heap_out):
            refs = [heap.alloc(128) for _ in range(1000)]
            for ref in refs[::2]:
                heap.free(ref)
        ns_in = heap_in.collect()
        ns_out = heap_out.collect()
        assert ns_in == pytest.approx(
            ns_out * p_in.cost_model.gc.enclave_multiplier, rel=0.01
        )


class TestProxyTracker:
    def test_scan_finds_dead_proxies(self):
        tracker = ProxyTracker()

        class Obj:
            pass

        keep = Obj()
        drop = Obj()
        tracker.track(keep, 1)
        tracker.track(drop, 2)
        del drop
        gc.collect()
        dead = tracker.scan()
        assert dead == (2,)
        assert tracker.live_count() == 1

    def test_scan_invokes_callback(self):
        tracker = ProxyTracker()

        class Obj:
            pass

        obj = Obj()
        tracker.track(obj, 7)
        del obj
        gc.collect()
        released = []
        tracker.scan(on_dead=released.append)
        assert released == [7]

    def test_scan_drops_dead_entries(self):
        tracker = ProxyTracker()

        class Obj:
            pass

        obj = Obj()
        tracker.track(obj, 1)
        del obj
        gc.collect()
        tracker.scan()
        assert len(tracker) == 0
        assert tracker.scan() == ()
