"""Tests for the wire serializer and the generational GC model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.costs import fresh_platform
from repro.errors import ConfigurationError, HeapError, SerializationError
from repro.runtime.context import ExecutionContext, Location
from repro.runtime.gc import SerialCopyGc
from repro.runtime.gc_generational import GenerationalGc


def host_ctx():
    return ExecutionContext(fresh_platform(), Location.HOST)


class TestWireFormat:
    CASES = [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**80,
        -(2**80),
        3.14159,
        float("inf"),
        "",
        "héllo wörld",
        b"",
        b"\x00\xff" * 10,
        [],
        [1, "two", 3.0, None],
        (1, (2, (3,))),
        {"k": [1, 2], "nested": {"a": b"b"}},
        {1, 2, 3},
        [{"deep": [(1, 2), {"s": {4}}]}],
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_round_trip(self, value):
        assert wire.loads(wire.dumps(value)) == value

    def test_nan_round_trips(self):
        assert math.isnan(wire.loads(wire.dumps(float("nan"))))

    def test_magic_checked(self):
        with pytest.raises(SerializationError):
            wire.loads(b"XX\x01\x00")

    def test_version_checked(self):
        blob = bytearray(wire.dumps(None))
        blob[2] = 99
        with pytest.raises(SerializationError):
            wire.loads(bytes(blob))

    def test_truncation_detected(self):
        blob = wire.dumps([1, 2, 3])
        with pytest.raises(SerializationError):
            wire.loads(blob[:-1])

    def test_trailing_bytes_detected(self):
        with pytest.raises(SerializationError):
            wire.loads(wire.dumps(1) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            wire.loads(wire.MAGIC + bytes([wire.VERSION, 0x7F]))

    def test_non_neutral_type_rejected(self):
        class Custom:
            pass

        with pytest.raises(SerializationError):
            wire.dumps(Custom())
        with pytest.raises(SerializationError):
            wire.dumps(lambda: None)

    def test_depth_limit(self):
        value = []
        for _ in range(100):
            value = [value]
        with pytest.raises(SerializationError):
            wire.dumps(value)

    def test_decoder_executes_no_code(self):
        """Unlike pickle, adversarial buffers can only raise, never run."""
        import os

        evil = wire.MAGIC + bytes([wire.VERSION]) + b"\x05\xff\xff\xff"
        with pytest.raises(SerializationError):
            wire.loads(evil)
        assert os.path.exists("/")  # trivially: we are still alive

    @settings(max_examples=150)
    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.floats(allow_nan=False)
            | st.text(max_size=30)
            | st.binary(max_size=30),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=8), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_property_round_trip(self, value):
        assert wire.loads(wire.dumps(value)) == value

    def test_set_encoding_deterministic(self):
        a = wire.dumps({3, 1, 2})
        b = wire.dumps({2, 3, 1})
        assert a == b


class TestGenerationalGc:
    def test_minor_collections_triggered_by_nursery(self):
        gc = GenerationalGc(host_ctx(), nursery_bytes=1000)
        gc.allocate(2500)
        assert gc.stats.minor_collections == 2
        assert gc.nursery_used == 500

    def test_survivors_promoted(self):
        gc = GenerationalGc(host_ctx(), nursery_bytes=1000, survival_rate=0.1)
        gc.allocate(1000)
        gc.minor_collect()
        assert gc.old_used == 100
        assert gc.stats.bytes_promoted == 100

    def test_major_collection_when_old_fills(self):
        gc = GenerationalGc(
            host_ctx(), nursery_bytes=1000, old_max_bytes=300, survival_rate=0.5
        )
        gc.allocate(3000)
        assert gc.stats.major_collections >= 1

    def test_cheaper_than_serial_on_churny_workload(self):
        """The [28]/Table-1 effect: generational GC amortises churn."""
        churn = 50 * 1024 * 1024

        gen_ctx = host_ctx()
        generational = GenerationalGc(gen_ctx, nursery_bytes=4 * 1024 * 1024)
        generational.allocate(churn)
        generational_ns = generational.stats.total_ns

        serial_ctx = host_ctx()
        serial = SerialCopyGc(serial_ctx)
        # Serial stop-and-copy: the whole churn is copied/scanned across
        # collections of a same-size young space.
        space = 4 * 1024 * 1024
        serial_ns = 0.0
        for _ in range(churn // space):
            serial_ns += serial.collect(live_bytes=space // 2, dead_bytes=space // 2)

        assert generational_ns < serial_ns / 3

    def test_enclave_collections_pricier(self):
        p_out = fresh_platform()
        out_gc = GenerationalGc(
            ExecutionContext(p_out, Location.HOST), nursery_bytes=1000
        )
        p_in = fresh_platform()
        in_gc = GenerationalGc(
            ExecutionContext(p_in, Location.ENCLAVE), nursery_bytes=1000
        )
        out_gc.allocate(5000)
        in_gc.allocate(5000)
        assert in_gc.stats.total_ns > 5 * out_gc.stats.total_ns

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GenerationalGc(host_ctx(), nursery_bytes=0)
        with pytest.raises(ConfigurationError):
            GenerationalGc(host_ctx(), survival_rate=1.5)
        gc = GenerationalGc(host_ctx())
        with pytest.raises(HeapError):
            gc.allocate(0)
        with pytest.raises(ConfigurationError):
            gc.major_collect(live_fraction=2.0)
