"""Golden-fingerprint regression tests for the artifact-producing runs.

``repro batch``, ``repro chaos`` and ``repro scale`` each hash their
full report (ledgers, checksums, schedules) into one fingerprint. Two
guarantees are pinned here:

1. **replay** — running the same sweep twice with the same seed inside
   one process produces the same fingerprint (always asserted);
2. **regression** — the fingerprint matches the recorded golden, so an
   accidental cost-model or scheduling change shows up as a diff
   (asserted when a golden exists for this Python minor version).

Goldens live in ``tests/goldens/fingerprints.json`` keyed by
``major.minor``; regenerate with::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/test_fingerprints.py

The tiny sweep parameters here are intentionally *not* the CLI's
``--scale small`` parameters — the point is the stability of the
pipeline, not of one figure.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    batching_exp,
    fault_recovery,
    scaling_exp,
    traffic_exp,
)
from repro.obs.artifacts import validate_artifact

GOLDENS_PATH = Path(__file__).parent / "goldens" / "fingerprints.json"
PYTHON_KEY = f"{sys.version_info.major}.{sys.version_info.minor}"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDENS"))

#: Small fixed sweeps: one entry per artifact-producing CLI command.
RUNNERS = {
    "batch": lambda: batching_exp.run_batching(
        batch_sizes=(None, 4),
        durability_sizes=(None, 4),
        workloads=("bank",),
        include_durability=False,
    ),
    "chaos": lambda: fault_recovery.run_chaos(
        fault_rates=(0.0, 0.05),
        checkpoint_intervals_ns=(0.0,),
        n_accounts=3,
        rounds=6,
        n_entries=4,
        include_keeper=False,
    ),
    "scale": lambda: scaling_exp.run_scaling(
        session_counts=(1, 2),
        shard_counts=(1, 2),
        rounds=4,
        entries=4,
    ),
    "traffic": lambda: traffic_exp.run_traffic_ablation(
        rates=(20_000.0, 100_000.0),
        n_requests=40,
        diurnal_requests=120,
        chaos_requests=30,
    ),
}


def _load_goldens() -> dict:
    if GOLDENS_PATH.exists():
        return json.loads(GOLDENS_PATH.read_text())
    return {}


def _record_golden(command: str, fingerprint: str) -> None:
    goldens = _load_goldens()
    goldens.setdefault(PYTHON_KEY, {})[command] = fingerprint
    GOLDENS_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDENS_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("command", sorted(RUNNERS))
def test_artifact_fingerprint_replays_and_matches_golden(command):
    report = RUNNERS[command]()
    fingerprint = report.fingerprint()

    # Replay: a second identical run must reproduce the digest exactly.
    assert RUNNERS[command]().fingerprint() == fingerprint

    # The artifact document embedding the fingerprint must validate.
    artifact = report.to_artifact()
    validate_artifact(artifact)

    if UPDATE:
        _record_golden(command, fingerprint)
        return
    recorded = _load_goldens().get(PYTHON_KEY, {}).get(command)
    if recorded is None:
        pytest.skip(
            f"no golden for {command!r} on Python {PYTHON_KEY}; "
            "regenerate with REPRO_UPDATE_GOLDENS=1"
        )
    assert fingerprint == recorded, (
        f"{command!r} fingerprint drifted from the recorded golden — a "
        "cost-model, scheduling or serialization change altered priced "
        "output. If intentional, refresh with REPRO_UPDATE_GOLDENS=1."
    )


def test_scale_artifact_embeds_identity_and_fingerprint():
    report = RUNNERS["scale"]()
    doc = report.to_artifact()
    scaling = doc["scaling"]
    assert scaling["fingerprint"] == report.fingerprint()
    assert scaling["identical"] == {"bank": True, "securekeeper": True}
    assert scaling["runs"]  # per-run records are preserved
