"""End-to-end security-property tests against the threat model (§4).

The adversary controls the full untrusted software stack and wants
confidential data processed in trusted classes. These tests check that
the mechanisms standing in the way actually stand in the way."""

import pytest

from repro.apps.bank import BANK_CLASSES, Account, Person
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.proxy import HASH_ATTR, is_proxy
from repro.costs import fresh_platform
from repro.errors import AttestationError, EnclaveError, RmiError
from repro.graal.buildstats import partitioned_build_stats
from repro.sgx import AttestationService, SgxSdk
from repro.sgx.sealing import SealingService
from repro.sgx.switchless import SwitchlessConfig, SwitchlessLayer


@pytest.fixture()
def app():
    return Partitioner(PartitionOptions(name="sec")).partition(
        BANK_CLASSES, main="Main.main"
    )


class TestDataConfinement:
    def test_proxy_carries_no_sensitive_fields(self, app):
        """The untrusted side holds only a hash, never the balance."""
        with app.start():
            account = Account("alice-secret", 1_000_000)
            assert is_proxy(account)
            assert not hasattr(account, "balance")
            assert not hasattr(account, "owner")
            public_state = {
                name: value
                for name, value in vars(account).items()
                if not name.startswith("_montsalvat")
            }
            assert public_state == {}

    def test_sensitive_values_only_cross_as_primitives_on_demand(self, app):
        """Reading the balance is an explicit relay, not ambient state."""
        with app.start() as session:
            account = Account("alice", 500)
            before = session.transition_stats.ecalls
            value = account.get_balance()
            assert value == 500
            assert session.transition_stats.ecalls == before + 1

    def test_untrusted_image_contains_no_trusted_method_bodies(self, app):
        """The artifact shipped outside has no trusted functionality —
        the image was analysed from (U ∪ N) with proxies only (§5.3)."""
        untrusted = app.images.untrusted
        # Relay entry points of trusted classes exist only in the
        # trusted image.
        assert not untrusted.contains_method("Account.relay_update_balance")
        assert app.images.trusted.contains_method("Account.relay_update_balance")

    def test_trusted_image_has_no_untrusted_functionality(self, app):
        trusted = app.images.trusted
        assert not trusted.contains_method("Person.transfer")
        assert not trusted.contains_class("Main")

    def test_unreachable_proxies_pruned_from_tcb(self, app):
        trusted_stats, _ = partitioned_build_stats(app)
        assert "Person" in trusted_stats.pruned_proxy_classes

    def test_images_measure_differently(self, app):
        assert app.images.trusted.measure() != app.images.untrusted.measure()


class TestLaunchIntegrity:
    def test_modified_enclave_changes_measurement(self):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        honest = sdk.sign("app", b"honest code")
        malicious = sdk.sign("app", b"honest code with a backdoor")
        assert honest.contents.measure() != malicious.contents.measure()

    def test_unsigned_code_cannot_launch(self):
        from dataclasses import replace

        platform = fresh_platform()
        sdk = SgxSdk(platform)
        signed = sdk.sign("app", b"code")
        from repro.sgx.enclave import EnclaveContents

        swapped = replace(
            signed, contents=EnclaveContents("app", b"swapped at load time")
        )
        with pytest.raises(EnclaveError):
            sdk.create_enclave(swapped)

    def test_attestation_detects_wrong_build(self, app):
        with app.start() as session:
            service = AttestationService()
            quote = service.quote(service.create_report(session.enclave))
            with pytest.raises(AttestationError):
                service.verify(quote, expected_measurement="f" * 64)

    def test_attestation_accepts_expected_build(self, app):
        with app.start() as session:
            service = AttestationService()
            quote = service.quote(service.create_report(session.enclave))
            service.verify(quote, expected_measurement=session.enclave.measurement)


class TestForgedReferences:
    def test_guessed_hash_cannot_reach_foreign_mirror(self, app):
        """An attacker forging a proxy with a guessed hash gets a
        registry error, not another object's data."""
        from repro.core.proxy import construct_proxy

        with app.start() as session:
            Account("victim", 9_999)
            forged = construct_proxy(
                Account, session.runtime, Side.TRUSTED, remote_hash=123456789
            )
            from repro.errors import RegistryError

            with pytest.raises(RegistryError):
                forged.get_balance()

    def test_released_mirror_not_reachable_by_old_hash(self, app):
        import gc

        with app.start() as session:
            account = Account("gone", 1)
            old_hash = getattr(account, HASH_ATTR)
            del account
            gc.collect()
            session.gc_helpers[Side.UNTRUSTED].scan_once()
            from repro.core.proxy import construct_proxy
            from repro.errors import RegistryError

            stale = construct_proxy(Account, session.runtime, Side.TRUSTED, old_hash)
            with pytest.raises(RegistryError):
                stale.get_balance()


class TestSealedDataAtRest:
    def test_sealed_state_useless_outside_enclave(self):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        enclave = sdk.create_enclave(sdk.sign("sealer", b"sealer-code"))
        blob = SealingService(enclave).seal({"key": "K" * 32})
        # The adversary holds the blob (untrusted storage) but cannot
        # recover plaintext without the enclave's sealing key.
        assert b"KKKK" not in blob.ciphertext
        evil = SealingService(
            sdk.create_enclave(sdk.sign("evil", b"evil-code"))
        )
        with pytest.raises(AttestationError):
            evil.unseal(blob)


class TestSwitchlessWorkerPool:
    def make_layer(self, trusted_workers=1):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        enclave = sdk.create_enclave(sdk.sign("sw", b"sw-code"))
        return platform, SwitchlessLayer(
            platform,
            enclave,
            SwitchlessConfig(trusted_workers=trusted_workers, untrusted_workers=1),
        )

    def test_fast_path_used_when_workers_free(self):
        _, layer = self.make_layer()
        assert layer.ecall("f", lambda: 1) == 1
        assert layer.stats.switchless_ecalls == 1
        assert layer.stats.fallback_ecalls == 0

    def test_fallback_when_workers_busy(self):
        _, layer = self.make_layer(trusted_workers=1)

        def nested():
            # The outer ecall occupies the single trusted worker; the
            # nested one must fall back to a hardware transition.
            return layer.ecall("inner", lambda: 2)

        assert layer.ecall("outer", nested) == 2
        assert layer.stats.switchless_ecalls == 1
        assert layer.stats.fallback_ecalls == 1
        assert layer.fallback_stats.ecalls == 1

    def test_fallback_rate(self):
        _, layer = self.make_layer(trusted_workers=1)
        layer.ecall("a", lambda: layer.ecall("b", lambda: None))
        assert layer.stats.fallback_rate == pytest.approx(0.5)

    def test_fast_path_cheaper_than_fallback(self):
        platform, layer = self.make_layer(trusted_workers=1)
        t0 = platform.now_s
        layer.ecall("fast", lambda: None)
        fast_cost = platform.now_s - t0

        def nested():
            t1 = platform.now_s
            layer.ecall("slow", lambda: None)
            self.slow_cost = platform.now_s - t1

        layer.ecall("outer", nested)
        assert fast_cost < self.slow_cost / 10

    def test_idle_workers_burn_cpu(self):
        platform, layer = self.make_layer()
        ns = layer.idle_worker_cost(1.0)
        # Two workers busy-waiting for one second = two CPU-seconds.
        assert ns == pytest.approx(2e9)

    def test_zero_workers_always_fall_back(self):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        enclave = sdk.create_enclave(sdk.sign("sw0", b"sw0"))
        layer = SwitchlessLayer(
            platform, enclave, SwitchlessConfig(trusted_workers=0, untrusted_workers=0)
        )
        layer.ecall("f", lambda: None)
        layer.ocall("g", lambda: None)
        assert layer.stats.fallback_ecalls == 1
        assert layer.stats.fallback_ocalls == 1
