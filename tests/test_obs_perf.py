"""Performance observability: profiler, SLO watchdog, BENCH trajectory.

Covers the wall-clock self-profiler (:mod:`repro.obs.perf`), the SLO
watchdog (:mod:`repro.obs.slo`), the trajectory file helpers
(:mod:`repro.obs.bench`), the ``repro perf`` harness, and the exporter
edge cases the satellite tasks call out (empty run, post-wrap Chrome
export, schema round-trips).
"""

import json
from itertools import count
from types import SimpleNamespace

import pytest

from repro.costs.platform import Platform
from repro.obs import bench as obs_bench
from repro.obs import export as obs_export
from repro.obs.perf import (
    SimulatorHooks,
    WallProfiler,
    profiled,
    validate_perf,
)
from repro.obs.recorder import RunRecorder, recording
from repro.obs.slo import (
    SloRule,
    SloWatchdog,
    default_rulebook,
    resolve_metric,
    validate_slo,
    write_slo,
    load_slo,
)


def fake_timer(step_ns: int = 100):
    """Deterministic monotonic timer: 0, step, 2*step, ..."""
    ticks = count(0, step_ns)
    return lambda: next(ticks)


# -- wall profiler ---------------------------------------------------------------


class TestWallProfiler:
    def test_nested_sections_attribute_self_time(self):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("outer"):
            with prof.profile_section("inner"):
                pass
        # Each timer read advances 100ns: outer spans 3 ticks (300ns),
        # inner 1 tick (100ns); outer self time excludes inner.
        rows = {row["path"]: row for row in prof.hotspots(top=10)}
        assert rows["outer"]["total_ns"] == 300
        assert rows["outer"]["self_ns"] == 200
        assert rows["outer;inner"]["total_ns"] == 100
        assert prof.total_ns == 300

    def test_repeat_calls_aggregate_per_path(self):
        prof = WallProfiler(timer=fake_timer())
        for _ in range(3):
            with prof.profile_section("hot"):
                pass
        (row,) = prof.hotspots()
        assert row["calls"] == 3
        assert row["total_ns"] == 300

    def test_same_name_under_different_parents_is_two_paths(self):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("a"):
            with prof.profile_section("leaf"):
                pass
        with prof.profile_section("b"):
            with prof.profile_section("leaf"):
                pass
        paths = {row["path"] for row in prof.hotspots(top=10)}
        assert {"a;leaf", "b;leaf"} <= paths
        # ...but self_by_name/shares fold them back together.
        assert prof.self_by_name()["leaf"] == 200

    def test_record_attributes_premeasured_time(self):
        prof = WallProfiler(timer=fake_timer())
        prof.record("external", 5_000)
        prof.record("external", 5_000)
        (row,) = prof.hotspots()
        assert row["calls"] == 2 and row["total_ns"] == 10_000

    def test_shares_sum_to_one(self):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("a"):
            with prof.profile_section("b"):
                pass
        shares = prof.shares()
        assert shares and sum(shares.values()) == pytest.approx(1.0)

    def test_collapsed_stacks_format(self):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("a"):
            with prof.profile_section("b"):
                pass
        lines = prof.collapsed_stacks().splitlines()
        assert "a 200" in lines
        assert "a;b 100" in lines

    def test_reset_clears_everything(self):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("x"):
            pass
        prof.reset()
        assert prof.total_ns == 0
        assert prof.hotspots() == []

    def test_perf_schema_round_trip(self, tmp_path):
        prof = WallProfiler(timer=fake_timer())
        with prof.profile_section("a"):
            with prof.profile_section("b"):
                pass
        doc = prof.to_dict(top=5)
        validate_perf(doc)
        # Survives JSON serialization.
        reloaded = json.loads(json.dumps(doc))
        validate_perf(reloaded)
        assert reloaded["schema"] == "repro.obs/perf@1"
        assert reloaded["total_ns"] == 300

    def test_validate_perf_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_perf([])
        with pytest.raises(ValueError):
            validate_perf({"schema": "nope", "tree": []})
        with pytest.raises(ValueError):
            validate_perf(
                {
                    "schema": "repro.obs/perf@1",
                    "tree": [{"name": "x", "calls": -1, "total_ns": 0,
                              "self_ns": 0, "children": []}],
                }
            )


# -- simulator hooks -------------------------------------------------------------


class TestSimulatorHooks:
    def test_install_uninstall_restores_originals(self):
        from repro.concurrency.scheduler import SessionScheduler
        from repro.core import wire
        from repro.obs.tracer import SpanTracer
        from repro.sgx.epc import EpcPageCache

        originals = (
            SpanTracer._commit,
            EpcPageCache.touch,
            wire.dumps,
            SessionScheduler.step,
        )
        hooks = SimulatorHooks(WallProfiler(timer=fake_timer()))
        hooks.install()
        try:
            assert wire.dumps is not originals[2]
            assert getattr(wire.dumps, "__wrapped_by_simulator_hooks__", False)
        finally:
            hooks.uninstall()
        assert (
            SpanTracer._commit,
            EpcPageCache.touch,
            wire.dumps,
            SessionScheduler.step,
        ) == originals
        assert not hooks.installed

    def test_double_install_raises(self):
        hooks = SimulatorHooks(WallProfiler(timer=fake_timer()))
        with hooks:
            with pytest.raises(RuntimeError):
                hooks.install()

    def test_hooked_run_records_hot_sections(self):
        from repro.experiments.scaling_exp import run_scale

        with profiled() as prof:
            run_scale("bank", sessions=2, shards=2, workers=2, rounds=3)
        by_name = prof.self_by_name()
        assert by_name.get("scheduler.pump", 0) > 0

    def test_wire_codec_sections_recorded(self):
        from repro.core import wire

        with profiled() as prof:
            blob = wire.dumps({"k": [1, 2, 3]})
            assert wire.loads(blob) == {"k": [1, 2, 3]}
        by_name = prof.self_by_name()
        assert by_name.get("wire.encode", -1) >= 0
        assert by_name.get("wire.decode", -1) >= 0
        rows = {r["path"]: r for r in prof.hotspots(top=10)}
        assert rows["wire.encode"]["calls"] == 1
        assert rows["wire.decode"]["calls"] == 1

    def test_tracer_emit_section_recorded(self):
        platform = Platform()
        obs = platform.enable_observability()
        with profiled() as prof:
            obs.tracer.instant("tick")
        assert prof.self_by_name().get("tracer.emit", -1) >= 0

    def test_zero_cost_off_full_ledger_identity(self):
        """Acceptance: with the profiler hooked in, the *virtual* output
        (full ledger, clock, checksums, interleaving) is byte-identical
        to a run without it."""
        from repro.experiments.scaling_exp import run_scale

        kwargs = dict(sessions=2, shards=2, workers=2, rounds=4)
        plain = run_scale("bank", **kwargs)
        with profiled():
            hooked = run_scale("bank", **kwargs)
        plain_again = run_scale("bank", **kwargs)
        assert plain.ledger == plain_again.ledger  # determinism baseline
        assert hooked.ledger == plain.ledger
        assert hooked.now_s == plain.now_s
        assert hooked.checksum == plain.checksum
        assert hooked.trace_digest == plain.trace_digest

    def test_zero_cost_off_figure_table_identity(self):
        """Cost tables render byte-identically under the profiler."""
        from repro.experiments.fig3_proxy_creation import run_fig3

        plain = run_fig3(counts=(300, 600)).format()
        with profiled():
            hooked = run_fig3(counts=(300, 600)).format()
        assert hooked == plain


# -- SLO rules -------------------------------------------------------------------


def _threshold_rule(threshold=5.0, metric="test.gauge", **kw):
    return SloRule(
        name=kw.pop("name", "gauge-high"),
        kind="threshold",
        metric=metric,
        threshold=threshold,
        **kw,
    )


class TestSloRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            SloRule(name="x", kind="nope", metric="m", threshold=1.0)
        with pytest.raises(ValueError):
            SloRule(name="x", kind="burn_rate", metric="m", threshold=1.0)
        with pytest.raises(ValueError):
            SloRule(
                name="x", kind="rate", metric="m", threshold=1.0, window_ns=0
            )
        with pytest.raises(ValueError):
            _threshold_rule(comparison="!=")

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            SloWatchdog([_threshold_rule(), _threshold_rule()])

    def test_resolve_metric_patterns_sum(self):
        platform = Platform()
        metrics = platform.enable_observability().metrics
        metrics.counter("charge.ns.recovery.reinit").inc(10)
        metrics.counter("charge.ns.recovery.restore").inc(5)
        assert resolve_metric(metrics, "charge.ns.recovery.*") == 15
        assert resolve_metric(metrics, "charge.ns.recovery.reinit") == 10
        assert resolve_metric(metrics, "charge.ns.absent.*") is None
        assert resolve_metric(metrics, "absent") is None

    def test_threshold_alert_is_edge_triggered_with_rearm(self):
        platform = Platform()
        watchdog = SloWatchdog([_threshold_rule()], evaluate_every_ns=1.0)
        watchdog.attach(platform, label="t")
        obs = platform.obs
        gauge = obs.metrics.gauge("test.gauge")

        def tick():
            platform.charge_ns("work", 5.0)

        tick()  # gauge at 0: ok
        gauge.set(10.0)
        tick()  # breached: one alert
        tick()  # still breached: no new alert
        assert len(watchdog.alerts) == 1
        gauge.set(1.0)
        tick()  # back under: re-arms
        gauge.set(10.0)
        tick()  # second episode: second alert
        assert len(watchdog.alerts) == 2
        alert = watchdog.alerts[0]
        assert alert.rule == "gauge-high"
        assert alert.value == 10.0
        assert alert.at_ns > 0
        assert alert.session == "t"

    def test_alert_visible_in_span_stream(self):
        platform = Platform()
        watchdog = SloWatchdog([_threshold_rule()], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        platform.obs.metrics.gauge("test.gauge").set(10.0)
        platform.charge_ns("work", 5.0)
        instants = [
            e for e in platform.obs.tracer.events() if e.kind == "instant"
        ]
        assert any(e.name == "slo.alert" for e in instants)
        (alert_event,) = [e for e in instants if e.name == "slo.alert"]
        assert alert_event.attrs["rule"] == "gauge-high"
        assert alert_event.attrs["threshold"] == 5.0

    def test_rate_rule_per_virtual_second(self):
        rule = SloRule(
            name="fast",
            kind="rate",
            metric="test.events",
            threshold=1_000_000.0,  # 1M/s
            window_ns=1_000.0,
        )
        platform = Platform()
        watchdog = SloWatchdog([rule], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        counter = platform.obs.metrics.counter("test.events")
        # 10 events over 100 virtual ns = 1e8/s >> threshold.
        for _ in range(10):
            counter.inc()
            platform.charge_ns("work", 10.0)
        assert any(a.rule == "fast" for a in watchdog.alerts)
        assert watchdog.verdicts()["fast"]["status"] == "breached"

    def test_rate_rule_quiet_below_threshold(self):
        rule = SloRule(
            name="slow",
            kind="rate",
            metric="test.events",
            threshold=1e12,
            window_ns=1_000.0,
        )
        platform = Platform()
        watchdog = SloWatchdog([rule], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        counter = platform.obs.metrics.counter("test.events")
        for _ in range(10):
            counter.inc()
            platform.charge_ns("work", 10.0)
        assert watchdog.alerts == []
        assert watchdog.verdicts()["slow"]["status"] == "ok"

    def test_burn_rate_share_of_denominator(self):
        rule = SloRule(
            name="fallback-share",
            kind="burn_rate",
            metric="pool.fallbacks",
            denominator=("pool.fallbacks", "pool.hits"),
            threshold=0.5,
            window_ns=10_000.0,
        )
        platform = Platform()
        watchdog = SloWatchdog([rule], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        fallbacks = platform.obs.metrics.counter("pool.fallbacks")
        hits = platform.obs.metrics.counter("pool.hits")
        # Healthy phase: 1 fallback per 9 hits -> share 0.1, quiet.
        for _ in range(5):
            hits.inc(9)
            fallbacks.inc(1)
            platform.charge_ns("work", 10.0)
        assert watchdog.alerts == []
        # Saturated phase: fallbacks dominate the window -> fires.
        for _ in range(10):
            fallbacks.inc(9)
            hits.inc(1)
            platform.charge_ns("work", 10.0)
        assert any(a.rule == "fallback-share" for a in watchdog.alerts)

    def test_missing_metric_abstains(self):
        platform = Platform()
        watchdog = SloWatchdog(
            [_threshold_rule(metric="never.emitted")], evaluate_every_ns=1.0
        )
        watchdog.attach(platform)
        platform.charge_ns("work", 5.0)
        watchdog.evaluate_now()
        assert watchdog.alerts == []
        verdict = watchdog.verdicts()["gauge-high"]
        assert verdict["status"] == "ok"
        assert verdict["worst"] is None

    def test_report_schema_round_trip(self, tmp_path):
        platform = Platform()
        watchdog = SloWatchdog([_threshold_rule()], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        platform.obs.metrics.gauge("test.gauge").set(10.0)
        platform.charge_ns("work", 5.0)
        doc = watchdog.report()
        validate_slo(doc)
        path = tmp_path / "slo.json"
        write_slo(str(path), doc)
        loaded = load_slo(str(path))
        assert loaded["verdicts"]["gauge-high"]["status"] == "breached"
        assert loaded["alerts"][0]["rule"] == "gauge-high"

    def test_validate_slo_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_slo([])
        with pytest.raises(ValueError):
            validate_slo({"schema": "nope"})
        with pytest.raises(ValueError):
            validate_slo(
                {
                    "schema": "repro.obs/slo@1",
                    "rules": [],
                    "alerts": [
                        {"rule": "ghost", "value": 1, "threshold": 0,
                         "at_ns": 0, "severity": "info"}
                    ],
                    "verdicts": {},
                }
            )

    def test_default_rulebook_names(self):
        names = {rule.name for rule in default_rulebook()}
        assert names == {
            "pool-fallback-burn",
            "epc-residency",
            "crossing-rate",
            "recovery-budget",
            "admission-queue",
            "shed-burn",
            "migration-budget",
        }

    def test_admission_queue_rule_edge_triggers_and_rearms(self):
        platform = Platform()
        rules = default_rulebook(admission_queue_depth=4.0)
        watchdog = SloWatchdog(rules, evaluate_every_ns=1.0)
        watchdog.attach(platform, label="traffic")
        depth = platform.obs.metrics.gauge("traffic.admission.queue_depth")

        def tick():
            platform.charge_ns("work", 5.0)

        tick()  # no backlog yet: quiet
        depth.set(6.0)
        tick()  # backlog above threshold: one alert
        tick()  # latched: still one
        queue_alerts = [
            a for a in watchdog.alerts if a.rule == "admission-queue"
        ]
        assert len(queue_alerts) == 1
        assert queue_alerts[0].value == 6.0
        assert queue_alerts[0].severity == "warning"
        depth.set(0.0)
        tick()  # drained: re-arms
        depth.set(9.0)
        tick()  # second backlog episode: second alert
        assert (
            len([a for a in watchdog.alerts if a.rule == "admission-queue"])
            == 2
        )

    def test_shed_burn_rule_fires_on_shed_share(self):
        platform = Platform()
        rules = default_rulebook(shed_share=0.05, window_ns=100.0)
        watchdog = SloWatchdog(rules, evaluate_every_ns=1.0)
        watchdog.attach(platform)
        offered = platform.obs.metrics.counter("traffic.offered")
        shed = platform.obs.metrics.counter("traffic.shed_total")
        # Healthy phase: nothing shed -> quiet.
        for _ in range(5):
            offered.inc(10)
            platform.charge_ns("work", 10.0)
        assert not any(a.rule == "shed-burn" for a in watchdog.alerts)
        # Overload phase: half the offered load shed inside the window.
        for _ in range(10):
            offered.inc(10)
            shed.inc(5)
            platform.charge_ns("work", 10.0)
        burn = [a for a in watchdog.alerts if a.rule == "shed-burn"]
        assert burn and burn[0].severity == "critical"

    def test_migration_budget_rule_sums_charge_pattern(self):
        platform = Platform()
        rules = default_rulebook(migration_budget_ns=50_000.0)
        watchdog = SloWatchdog(rules, evaluate_every_ns=1.0)
        watchdog.attach(platform)
        metrics = platform.obs.metrics
        # Under budget across two migration categories: quiet.
        metrics.counter("charge.ns.migration.transfer").inc(20_000.0)
        metrics.counter("charge.ns.migration.attest").inc(20_000.0)
        platform.charge_ns("work", 5.0)
        assert not any(
            a.rule == "migration-budget" for a in watchdog.alerts
        )
        # One more retry's worth of backoff tips the summed budget.
        metrics.counter("charge.ns.migration.backoff").inc(15_000.0)
        platform.charge_ns("work", 5.0)
        budget_alerts = [
            a for a in watchdog.alerts if a.rule == "migration-budget"
        ]
        assert len(budget_alerts) == 1
        assert budget_alerts[0].value == 55_000.0

    def test_summary_lines_mark_breaches(self):
        platform = Platform()
        watchdog = SloWatchdog([_threshold_rule()], evaluate_every_ns=1.0)
        watchdog.attach(platform)
        platform.obs.metrics.gauge("test.gauge").set(10.0)
        platform.charge_ns("work", 5.0)
        text = "\n".join(watchdog.summary_lines())
        assert "BREACHED" in text and "gauge-high" in text

    def test_watchdog_never_shifts_virtual_time(self):
        """The watchdog observes charges; it must not add any."""
        from repro.experiments.scaling_exp import run_scale

        plain = run_scale("securekeeper", sessions=2, shards=2, workers=1)
        recorder = RunRecorder(slo=SloWatchdog(default_rulebook()))
        with recording(recorder):
            watched = run_scale("securekeeper", sessions=2, shards=2, workers=1)
        assert watched.ledger == plain.ledger
        assert watched.now_s == plain.now_s
        assert watched.trace_digest == plain.trace_digest


# -- bench trajectory ------------------------------------------------------------


def _entry(commit="c1", mode="quick", rps=1000.0, fingerprint="f1"):
    return {
        "commit": commit,
        "mode": mode,
        "workloads": {
            "w": {
                "requests_per_sec": rps,
                "p50_ms": 1.0,
                "p95_ms": 2.0,
                "hotspots": [],
                "virtual_fingerprint": fingerprint,
            }
        },
    }


class TestBenchTrajectory:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        doc = obs_bench.load_bench(str(tmp_path / "none.json"))
        assert doc["entries"] == []
        obs_bench.validate_bench(doc)

    def test_append_and_previous_by_mode(self, tmp_path):
        doc = obs_bench.empty_doc()
        assert obs_bench.append_entry(doc, _entry("c1")) is None
        previous = obs_bench.append_entry(doc, _entry("c2"))
        assert previous["commit"] == "c1"
        # A full-mode entry is never the baseline for a quick one.
        obs_bench.append_entry(doc, _entry("c3", mode="full"))
        previous = obs_bench.append_entry(doc, _entry("c4"))
        assert previous["commit"] == "c2"
        path = tmp_path / "BENCH.json"
        obs_bench.write_bench(str(path), doc)
        assert obs_bench.load_bench(str(path)) == doc

    def test_same_commit_replaces_not_stacks(self):
        doc = obs_bench.empty_doc()
        obs_bench.append_entry(doc, _entry("c1", rps=100.0))
        obs_bench.append_entry(doc, _entry("c1", rps=200.0))
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["workloads"]["w"]["requests_per_sec"] == 200.0

    def test_compare_flags_regression_and_floor(self):
        current = _entry("c2", rps=700.0)
        baseline = _entry("c1", rps=1000.0)
        assert obs_bench.compare(current, baseline, tolerance=0.25) != []
        assert obs_bench.compare(current, baseline, tolerance=0.5) == []
        assert obs_bench.compare(current, None, tolerance=0.25,
                                 floor_rps=800.0) != []
        assert obs_bench.compare(current, None, tolerance=0.25,
                                 floor_rps=100.0) == []

    def test_fingerprint_drift_is_surfaced(self):
        current = _entry("c2", fingerprint="changed")
        baseline = _entry("c1", fingerprint="original")
        assert obs_bench.fingerprint_drift(current, baseline) != []
        assert obs_bench.fingerprint_drift(current, None) == []
        same = _entry("c3", fingerprint="original")
        assert obs_bench.fingerprint_drift(same, baseline) == []

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            obs_bench.validate_bench({"schema": "nope", "entries": []})
        bad = obs_bench.empty_doc()
        bad["entries"].append({"commit": "c", "mode": "quick", "workloads": {}})
        with pytest.raises(ValueError):
            obs_bench.validate_bench(bad)
        negative = obs_bench.empty_doc()
        negative["entries"].append(_entry(rps=0.0))
        with pytest.raises(ValueError):
            obs_bench.validate_bench(negative)


# -- the perf harness ------------------------------------------------------------


class TestPerfHarness:
    def test_measure_workload_is_deterministic(self):
        from repro.experiments.perf_bench import Workload, measure_workload

        def body(seed):
            run = SimpleNamespace(
                trace_digest="d", now_s=1.0, checksum=(seed,),
                ledger={"cat": (1, 2.0)},
            )
            return 10, [run]

        result = measure_workload(
            Workload("unit", "test", body), seed=7, repeats=3
        )
        assert result.requests == 10
        assert result.repeats == 3
        assert len(result.wall_ms) == 3
        assert result.requests_per_sec > 0

    def test_nondeterministic_workload_aborts(self):
        from repro.experiments.perf_bench import Workload, measure_workload

        ticks = count()

        def body(seed):
            run = SimpleNamespace(
                trace_digest="d", now_s=1.0, checksum=(next(ticks),),
                ledger={},
            )
            return 1, [run]

        with pytest.raises(RuntimeError, match="not deterministic"):
            measure_workload(
                Workload("flaky", "test", body), seed=7, repeats=2
            )

    def test_quick_suite_via_cli(self, tmp_path, capsys):
        """Acceptance: 'repro perf' writes a valid trajectory with >=3
        workloads, the overload scenario fires pool-fallback-burn into
        both the span-visible slo@1 report and the entry, and the
        virtual fingerprints are identical across two runs."""
        from repro import cli

        bench_path = tmp_path / "BENCH_perf.json"
        profile_dir = tmp_path / "perf"
        args = [
            "perf", "--quick",
            "--bench", str(bench_path),
            "--profile-dir", str(profile_dir),
            "--floor", "1",
        ]
        assert cli.main(list(args)) == 0
        out_first = capsys.readouterr().out
        assert "pool-fallback-burn" in out_first

        doc = obs_bench.load_bench(str(bench_path))
        (entry,) = doc["entries"]
        assert len(entry["workloads"]) >= 3
        for workload in entry["workloads"].values():
            assert workload["requests_per_sec"] > 0
            assert workload["p95_ms"] >= workload["p50_ms"] >= 0
            assert len(workload["hotspots"]) <= 5
            assert workload["virtual_fingerprint"]
        assert "pool-fallback-burn" in entry["slo"]["breached"]

        slo_doc = load_slo(str(profile_dir / "slo.json"))
        assert any(
            alert["rule"] == "pool-fallback-burn" for alert in slo_doc["alerts"]
        )
        # Per-workload profiler dumps exist and validate.
        for name in entry["workloads"]:
            perf_doc = json.loads(
                (profile_dir / f"{name}.perf.json").read_text()
            )
            validate_perf(perf_doc)
            assert (profile_dir / f"{name}.collapsed.txt").exists()

        # Second run: same commit+mode replaces the entry; the virtual
        # fingerprints must come out identical.
        first = {
            name: w["virtual_fingerprint"]
            for name, w in entry["workloads"].items()
        }
        assert cli.main(list(args)) == 0
        capsys.readouterr()
        doc2 = obs_bench.load_bench(str(bench_path))
        (entry2,) = doc2["entries"]
        second = {
            name: w["virtual_fingerprint"]
            for name, w in entry2["workloads"].items()
        }
        assert second == first

    def test_floor_violation_fails(self, tmp_path, capsys):
        from repro.experiments.perf_bench import main as perf_main

        rc = perf_main(
            [
                "--quick",
                "--bench", str(tmp_path / "BENCH.json"),
                "--no-write",
                "--floor", "1e12",
            ]
        )
        assert rc == 1
        assert "below the floor" in capsys.readouterr().out


# -- exporter edge cases ---------------------------------------------------------


class TestExporterEdgeCases:
    def test_empty_run_summary_and_exports(self, tmp_path):
        """A recorder that saw no observable work still produces
        well-formed outputs everywhere."""
        recorder = RunRecorder()
        with recording(recorder):
            pass
        assert "(no spans recorded)" in recorder.summary()
        doc = recorder.chrome_trace()
        obs_export.validate_chrome_trace(doc)
        assert recorder.write_jsonl(str(tmp_path / "e.jsonl")) == 0
        metrics_doc = recorder.metrics_document()
        assert metrics_doc["metrics"] == {}
        assert metrics_doc["crosscheck_mismatches"] == []

    def test_empty_summary_with_slo_still_renders_verdicts(self):
        recorder = RunRecorder(slo=SloWatchdog(default_rulebook()))
        with recording(recorder):
            pass
        text = recorder.summary()
        assert "(no spans recorded)" in text
        assert "SLO verdicts" in text

    def test_chrome_trace_after_ring_wrap(self, tmp_path):
        platform = Platform()
        obs = platform.enable_observability(ring_capacity=4, label="wrap")
        for i in range(20):
            with obs.tracer.span(f"s{i}"):
                platform.charge_ns("w", 10.0)
        assert obs.tracer.dropped == 16
        doc = obs_export.chrome_trace([("wrap", obs)])
        obs_export.validate_chrome_trace(doc)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Only the surviving window exports; newest spans win.
        assert [e["name"] for e in complete] == ["s16", "s17", "s18", "s19"]
        path = tmp_path / "wrapped.json"
        obs_export.write_chrome_trace(str(path), doc)
        assert obs_export.load_chrome_trace(str(path)) == doc

    def test_summary_table_reports_drops_after_wrap(self):
        platform = Platform()
        obs = platform.enable_observability(ring_capacity=2)
        for i in range(5):
            obs.tracer.instant(f"e{i}")
        text = obs_export.summary_table([("t", obs)])
        assert "dropped 3 events" in text
