"""Tests for the Montsalvat core runtime: annotations, proxies, RMI,
mirror-proxy registries and GC synchronization — on the paper's own
bank example."""

import gc

import pytest

from repro.apps.bank import BANK_CLASSES, Account, AccountRegistry, Main, Person
from repro.core import Partitioner, Side, current_context, trust_of
from repro.core.annotations import current_runtime
from repro.core.proxy import is_proxy, proxy_hash
from repro.errors import AnnotationError, PartitionError, RegistryError, RmiError
from repro.graal.jtypes import TrustLevel


@pytest.fixture()
def app():
    return Partitioner().partition(BANK_CLASSES, main="Main.main")


class TestAnnotations:
    def test_trust_levels(self):
        assert trust_of(Account) is TrustLevel.TRUSTED
        assert trust_of(Person) is TrustLevel.UNTRUSTED

    def test_unannotated_class_is_neutral(self):
        class Helper:
            pass

        assert trust_of(Helper) is TrustLevel.NEUTRAL

    def test_annotation_on_non_class_rejected(self):
        from repro.core import trusted

        with pytest.raises(AnnotationError):
            trusted(lambda: None)

    def test_conflicting_annotations_rejected(self):
        from repro.core import trusted, untrusted

        with pytest.raises(AnnotationError):
            @untrusted
            @trusted
            class Both:
                pass

    def test_no_runtime_means_plain_python(self):
        """§5.6: without an active runtime, annotated classes behave
        like ordinary classes."""
        assert current_runtime() is None
        account = Account("plain", 10)
        assert not is_proxy(account)
        account.update_balance(5)
        assert account.balance == 15


class TestInstantiation:
    def test_untrusted_is_concrete_on_untrusted_side(self, app):
        with app.start():
            alice = Person("Alice", 100)
            assert not is_proxy(alice)

    def test_trusted_is_proxy_from_untrusted_side(self, app):
        with app.start():
            account = Account("Alice", 100)
            assert is_proxy(account)
            assert isinstance(account, Account)

    def test_mirror_registered_in_enclave(self, app):
        with app.start() as session:
            Account("Alice", 100)
            trusted_state = session.runtime.state_of(Side.TRUSTED)
            assert trusted_state.registry.live_count() == 1

    def test_constructor_crosses_once(self, app):
        with app.start() as session:
            before = session.transition_stats.ecalls
            Account("Alice", 100)
            assert session.transition_stats.ecalls == before + 1

    def test_trusted_instantiation_from_trusted_side_is_concrete(self, app):
        with app.start() as session:
            with session.on_side(Side.TRUSTED):
                account = Account("inside", 5)
                assert not is_proxy(account)

    def test_untrusted_class_proxied_from_enclave(self, app):
        with app.start() as session:
            with session.on_side(Side.TRUSTED):
                person = Person("outside", 5)
                assert is_proxy(person)
            # Constructing Person outside created its trusted Account
            # mirror through a nested transition.
            assert session.transition_stats.ocalls >= 1

    def test_proxy_cannot_be_instantiated_directly(self, app):
        from repro.core.proxy import make_proxy_class

        with app.start():
            proxy_cls = make_proxy_class(Account)
            with pytest.raises((RmiError, AnnotationError)):
                proxy_cls("x", 1)


class TestInvocation:
    def test_remote_method_effects_visible(self, app):
        with app.start() as session:
            account = Account("Alice", 100)
            account.update_balance(-30)
            assert account.get_balance() == 70
            mirror = session.runtime.state_of(Side.TRUSTED).registry.get(
                proxy_hash(account)
            )
            assert mirror.balance == 70

    def test_paper_main_scenario(self, app):
        with app.start():
            registry = Main.main()
            assert registry.count() == 2
            assert registry.total_balance() == 125  # 75 + 50

    def test_proxy_argument_resolves_to_mirror(self, app):
        """Listing 5: passing a proxy sends its hash; the relay looks
        the mirror up and invokes on it."""
        with app.start() as session:
            account = Account("Alice", 100)
            registry = AccountRegistry()
            registry.add_account(account)
            assert registry.count() == 1
            trusted_state = session.runtime.state_of(Side.TRUSTED)
            mirror_registry = trusted_state.registry.get(proxy_hash(registry))
            mirror_account = trusted_state.registry.get(proxy_hash(account))
            assert mirror_registry.reg[0] is mirror_account

    def test_concrete_annotated_return_becomes_proxy(self, app):
        with app.start():
            alice = Person("Alice", 100)
            account = alice.get_account()
            assert is_proxy(account)
            assert account.get_balance() == 100

    def test_proxy_identity_cached(self, app):
        with app.start():
            alice = Person("Alice", 100)
            first = alice.get_account()
            second = alice.get_account()
            assert first is second

    def test_neutral_arguments_serialized(self, app):
        with app.start() as session:
            before = session.platform.ledger.count("rmi.serialize.host")
            Account("Alice", 100)  # the owner string serializes
            assert session.platform.ledger.count("rmi.serialize.host") > before

    def test_private_method_stripped_from_proxy(self, app):
        from repro.core.proxy import make_proxy_class

        class WithPrivate:
            def public(self):
                return self._secret()

            def _secret(self):
                return 42

        proxy_cls = make_proxy_class(WithPrivate)
        proxy = object.__new__(proxy_cls)
        with pytest.raises(RmiError):
            proxy._secret()

    def test_transfer_uses_transitions(self, app):
        with app.start() as session:
            alice = Person("Alice", 100)
            bob = Person("Bob", 25)
            before = session.transition_stats.ecalls
            alice.transfer(bob, 25)
            # Two update_balance relays.
            assert session.transition_stats.ecalls == before + 2

    def test_current_context_follows_side(self, app):
        with app.start() as session:
            assert not current_context().in_enclave
            with session.on_side(Side.TRUSTED):
                assert current_context().in_enclave


class TestGcSynchronization:
    def test_dead_proxy_releases_mirror(self, app):
        """Fig. 5b mechanics: collecting a proxy releases its mirror."""
        with app.start() as session:
            account = Account("Alice", 100)
            trusted_registry = session.runtime.state_of(Side.TRUSTED).registry
            assert trusted_registry.live_count() == 1
            del account
            gc.collect()
            released = session.gc_helpers[Side.UNTRUSTED].scan_once()
            assert released == 1
            assert trusted_registry.live_count() == 0

    def test_live_proxy_keeps_mirror(self, app):
        with app.start() as session:
            account = Account("Alice", 100)
            gc.collect()
            released = session.gc_helpers[Side.UNTRUSTED].scan_once()
            assert released == 0
            assert session.runtime.state_of(Side.TRUSTED).registry.live_count() == 1
            assert account.get_balance() == 100

    def test_released_mirror_unreachable_from_relays(self, app):
        with app.start() as session:
            account = Account("Alice", 100)
            dead_hash = proxy_hash(account)
            del account
            gc.collect()
            session.gc_helpers[Side.UNTRUSTED].scan_once()
            with pytest.raises(RegistryError):
                session.runtime.state_of(Side.TRUSTED).registry.get(dead_hash)

    def test_gc_release_is_batched_transition(self, app):
        with app.start() as session:
            accounts = [Account(f"a{i}", i) for i in range(10)]
            del accounts
            gc.collect()
            before = session.transition_stats.ecalls
            released = session.gc_helpers[Side.UNTRUSTED].scan_once()
            assert released == 10
            # One batched ecall for all ten releases.
            assert session.transition_stats.ecalls == before + 1

    def test_maybe_scan_respects_period(self, app):
        with app.start() as session:
            helper = session.gc_helpers[Side.UNTRUSTED]
            account = Account("Alice", 1)
            del account
            gc.collect()
            # Less than a virtual second has passed since start.
            assert helper.maybe_scan() == 0
            session.platform.charge_ns("idle", 2e9)
            assert helper.maybe_scan() == 1


class TestPartitionerValidation:
    def test_requires_trusted_class(self):
        with pytest.raises(PartitionError):
            Partitioner().partition([Person, Main], main="Main.main")

    def test_trusted_main_rejected(self):
        with pytest.raises(PartitionError):
            Partitioner().partition(BANK_CLASSES, main="Account.get_balance")

    def test_unknown_main_rejected(self):
        with pytest.raises(PartitionError):
            Partitioner().partition(BANK_CLASSES, main="Nowhere.main")

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(PartitionError):
            Partitioner().partition([Account, Account], main=None)


class TestImagePartitioning:
    def test_untrusted_functionality_absent_from_trusted_image(self, app):
        """§5.3: after analysis the trusted image contains no untrusted
        methods — the unreachable Person proxy is pruned."""
        assert not app.images.trusted.contains_class("Person")

    def test_trusted_proxies_present_in_untrusted_image(self, app):
        assert app.images.untrusted.contains_class("Account")
        assert app.images.untrusted.contains_method("Person.transfer")

    def test_relays_are_trusted_entry_points(self, app):
        assert "Account.relay_init" in app.images.trusted.entry_points
        assert "Account.relay_update_balance" in app.images.trusted.entry_points

    def test_main_is_untrusted_entry_point(self, app):
        assert app.images.untrusted.entry_points[0] == "Main.main"

    def test_images_are_relocatable(self, app):
        assert app.images.trusted.artifact_name.endswith("-trusted.o")
        assert app.images.untrusted.artifact_name.endswith("-untrusted.o")

    def test_edl_covers_all_relays_and_shim(self, app):
        text = app.artifacts.edl_text
        assert "ecall_Account_relay_update_balance" in text
        assert "ocall_Person_relay_transfer" in text
        assert "ocall_write" in text
        assert "ecall_gc_release" in text

    def test_generated_c_dispatches_through_isolate(self, app):
        assert "get_trusted_isolate()" in app.artifacts["ecalls.c"]
        assert "get_untrusted_isolate()" in app.artifacts["ocalls.c"]
