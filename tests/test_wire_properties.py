"""Seeded property tests for the wire format and the codecs.

A deterministic generator (``random.Random(seed)`` — no external
property-testing dependency) builds hundreds of random nested payloads
and checks the properties every crossing relies on:

- ``wire.loads(wire.dumps(v)) == v`` with container types preserved;
- encoding is a pure function of the value (set insertion order does
  not leak into the bytes);
- every strict prefix of a valid buffer fails loudly with
  :class:`SerializationError` — never a crash, hang or silent value;
- random single-byte corruption either decodes or raises
  :class:`SerializationError`, nothing else;
- both codecs price bytes *stably*: serializing the same corpus on two
  fresh platforms charges byte-identical ledgers, and ``measure``
  agrees with the encoded length while charging nothing.
"""

from __future__ import annotations

import random

import pytest

from repro.core import wire
from repro.core.secure import SecureValue, secure
from repro.core.serialization import (
    SerializationCodec,
    WireSerializationCodec,
    round_trip,
)
from repro.costs.platform import fresh_platform
from repro.errors import SerializationError
from repro.runtime.context import Location
from tests.helpers import assert_ledgers_identical, platform_ledger

_SCALAR_KINDS = ("none", "bool", "int", "float", "str", "bytes")
_CONTAINER_KINDS = ("list", "tuple", "dict", "set")

_STRING_ALPHABET = "abc é世\U0001f600\"'\\\n\x00"


def _random_scalar(rng: random.Random):
    kind = rng.choice(_SCALAR_KINDS)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        magnitude = rng.choice((1, 2**8, 2**31, 2**63, 2**130))
        return rng.randint(-magnitude, magnitude)
    if kind == "float":
        # Finite floats only: NaN breaks the equality property itself.
        return rng.choice(
            (0.0, -0.0, 1.5, -2.75, 1e-300, 1e300, rng.uniform(-1e6, 1e6))
        )
    if kind == "str":
        return "".join(
            rng.choice(_STRING_ALPHABET) for _ in range(rng.randint(0, 12))
        )
    return bytes(rng.randrange(256) for _ in range(rng.randint(0, 16)))


def _random_key(rng: random.Random):
    kind = rng.choice(("int", "str", "bytes", "bool"))
    if kind == "int":
        return rng.randint(-1000, 1000)
    if kind == "str":
        return "".join(rng.choice("abcdefgh") for _ in range(rng.randint(1, 6)))
    if kind == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randint(1, 4)))
    return rng.random() < 0.5


def random_payload(rng: random.Random, depth: int = 0):
    """A random nested payload drawn from the wire-encodable types."""
    if depth >= 3 or rng.random() < 0.4:
        return _random_scalar(rng)
    kind = rng.choice(_CONTAINER_KINDS)
    size = rng.randint(0, 5)
    if kind == "list":
        return [random_payload(rng, depth + 1) for _ in range(size)]
    if kind == "tuple":
        return tuple(random_payload(rng, depth + 1) for _ in range(size))
    if kind == "dict":
        return {
            _random_key(rng): random_payload(rng, depth + 1)
            for _ in range(size)
        }
    return {_random_key(rng) for _ in range(size)}


def _corpus(seed: int, count: int):
    rng = random.Random(seed)
    return [random_payload(rng) for _ in range(count)]


class TestWireRoundTripProperties:
    @pytest.mark.parametrize("seed", (1, 7, 99, 2024))
    def test_encode_decode_identity(self, seed):
        for value in _corpus(seed, 100):
            decoded = wire.loads(wire.dumps(value))
            assert decoded == value
            assert type(decoded) is type(value)

    @pytest.mark.parametrize("seed", (5, 51))
    def test_encoding_is_deterministic(self, seed):
        for value in _corpus(seed, 60):
            assert wire.dumps(value) == wire.dumps(value)

    def test_set_insertion_order_does_not_leak(self):
        rng = random.Random(13)
        for _ in range(40):
            elements = [_random_key(rng) for _ in range(rng.randint(0, 8))]
            forward, backward = set(), set()
            for e in elements:
                forward.add(e)
            for e in reversed(elements):
                backward.add(e)
            assert wire.dumps(forward) == wire.dumps(backward)

    @pytest.mark.parametrize("seed", (3, 33))
    def test_every_strict_prefix_raises_typed_error(self, seed):
        rng = random.Random(seed)
        for value in _corpus(seed, 15):
            buffer = wire.dumps(value)
            cuts = set(
                rng.randrange(len(buffer)) for _ in range(min(len(buffer), 12))
            )
            cuts.add(0)
            cuts.add(len(buffer) - 1)
            for cut in cuts:
                with pytest.raises(SerializationError):
                    wire.loads(buffer[:cut])

    def test_random_corruption_never_crashes(self):
        rng = random.Random(77)
        for value in _corpus(77, 30):
            buffer = bytearray(wire.dumps(value))
            position = rng.randrange(len(buffer))
            buffer[position] ^= 1 << rng.randrange(8)
            try:
                wire.loads(bytes(buffer))
            except SerializationError:
                pass  # typed failure is the contract

    def test_deep_nesting_bounded_not_crashing(self):
        value = None
        for _ in range(wire._MAX_DEPTH + 1):
            value = [value]
        with pytest.raises(SerializationError):
            wire.dumps(value)


class TestCodecPricingProperties:
    @pytest.mark.parametrize("codec_cls", (SerializationCodec, WireSerializationCodec))
    def test_round_trip_identity_through_codec(self, codec_cls):
        platform = fresh_platform()
        codec = codec_cls(platform)
        for value in _corpus(11, 40):
            for location in (Location.ENCLAVE, Location.HOST):
                result, nbytes = round_trip(codec, value, location)
                assert result == value
                assert nbytes > 0

    @pytest.mark.parametrize("codec_cls", (SerializationCodec, WireSerializationCodec))
    def test_byte_pricing_is_stable_across_platforms(self, codec_cls):
        def price_corpus():
            platform = fresh_platform()
            codec = codec_cls(platform)
            for value in _corpus(23, 40):
                round_trip(codec, value, Location.ENCLAVE)
                round_trip(codec, value, Location.HOST)
            return platform_ledger(platform)

        assert_ledgers_identical(price_corpus(), price_corpus())

    @pytest.mark.parametrize("codec_cls", (SerializationCodec, WireSerializationCodec))
    def test_measure_matches_encoded_length_and_charges_nothing(self, codec_cls):
        platform = fresh_platform()
        codec = codec_cls(platform)
        for value in _corpus(31, 40):
            measured = codec.measure(value)
        assert dict(platform.snapshot()) == {}  # measure is free
        for value in _corpus(31, 10):
            buffer = codec.serialize(value, Location.HOST)
            assert codec.measure(value) == len(buffer)

    def test_enclave_side_costs_more_than_host_side(self):
        ledgers = {}
        for location in (Location.ENCLAVE, Location.HOST):
            platform = fresh_platform()
            codec = WireSerializationCodec(platform)
            for value in _corpus(47, 25):
                round_trip(codec, value, location)
            ledgers[location] = platform.now_s
        assert ledgers[Location.ENCLAVE] > ledgers[Location.HOST]


class TestSecureValueWireProperties:
    """secure()-tagged payloads survive the codec tag-intact (PR 7)."""

    def test_tag_label_and_provenance_survive(self):
        original = secure({"pin": 1234}, "pin")
        decoded = wire.loads(wire.dumps(original))
        assert isinstance(decoded, SecureValue)
        assert decoded == original
        assert decoded.label == "pin"
        assert decoded.provenance == ("secure:pin",)
        assert decoded.value == {"pin": 1234}

    def test_derivation_chain_survives(self):
        value = secure(100, "balance")
        for step in range(3):
            value = value.derive(f"step{step}", value.value + 1)
        decoded = wire.loads(wire.dumps(value))
        assert decoded.value == 103
        assert decoded.provenance == (
            "secure:balance",
            "derive:step0",
            "derive:step1",
            "derive:step2",
        )

    @pytest.mark.parametrize("seed", (17, 170))
    def test_random_secure_payloads_round_trip(self, seed):
        rng = random.Random(seed)
        for index, inner in enumerate(_corpus(seed, 50)):
            original = secure(inner, f"blob{index}")
            if rng.random() < 0.5:
                original = original.derive("rederived", inner)
            decoded = wire.loads(wire.dumps(original))
            assert decoded == original
            assert type(decoded.value) is type(inner)

    def test_secure_values_nest_inside_containers(self):
        payload = [secure(1, "a"), {"k": secure(b"x", "b")}, (secure(None),)]
        decoded = wire.loads(wire.dumps(payload))
        assert decoded == payload
        assert all(
            isinstance(v, SecureValue)
            for v in (decoded[0], decoded[1]["k"], decoded[2][0])
        )

    def test_secure_prefixes_raise_typed_error(self):
        buffer = wire.dumps(secure({"pin": 1234}, "pin"))
        for cut in range(len(buffer)):
            with pytest.raises(SerializationError):
                wire.loads(buffer[:cut])


#: Pinned pre-PR encodings: introducing the secure tag (0x0B) must not
#: move a single byte of any previously encodable payload.
_GOLDEN_PLAIN = (
    (None, "ac3d0100"),
    (True, "ac3d0101"),
    (False, "ac3d0102"),
    (0, "ac3d010300"),
    (-1, "ac3d010301"),
    (2**70, "ac3d01038080808080808080808002"),
    (1.5, "ac3d01043ff8000000000000"),
    ("héllo\n", "ac3d01050768c3a96c6c6f0a"),
    (b"\x00\xff", "ac3d010602" "00ff"),
    ([1, "a", (2.5, None)], "ac3d0107030302050161080204400400000000000000"),
    ((), "ac3d010800"),
    ({"k": [True, b"x"], 3: {1, 2}}, "ac3d01090205016b07020106017803060a0203020304"),
    ({}, "ac3d010900"),
    (set(), "ac3d010a00"),
)


class TestWireGoldenBytes:
    """Untagged payloads stay byte-identical to the pre-PR wire format."""

    @pytest.mark.parametrize(
        "value,expected", _GOLDEN_PLAIN, ids=[h for _, h in _GOLDEN_PLAIN]
    )
    def test_plain_encoding_is_frozen(self, value, expected):
        assert wire.dumps(value).hex() == expected
        assert wire.loads(bytes.fromhex(expected)) == value

    def test_secure_encoding_is_frozen(self):
        expected = (
            "ac3d010b0370696e010a7365637572653a70696e0901050370696e03a413"
        )
        original = secure({"pin": 1234}, "pin")
        assert wire.dumps(original).hex() == expected
        assert wire.loads(bytes.fromhex(expected)) == original
