"""Tests for the extension modules: switchless transitions, tracing
agent, transition profiler, and sealing."""

import pytest

from repro.apps.bank import BANK_CLASSES, Account
from repro.core import Partitioner, PartitionOptions
from repro.costs import fresh_platform
from repro.errors import AttestationError, BuildError
from repro.graal import NativeImageBuilder, extract_classes
from repro.graal.builder import BuildOptions
from repro.graal.jtypes import ClassUniverse
from repro.graal.tracing import TracingAgent, load_reflection_config
from repro.sgx import SgxSdk, TransitionLayer
from repro.sgx.profiler import TransitionProfiler
from repro.sgx.sealing import SealingService, transparent_seal


def make_enclave(platform=None):
    platform = platform or fresh_platform()
    sdk = SgxSdk(platform)
    return platform, sdk.create_enclave(sdk.sign("ext", b"ext-code"))


class TestSwitchlessRuntime:
    def _time_run(self, switchless: bool) -> float:
        options = PartitionOptions(name=f"sw_{switchless}", switchless=switchless)
        app = Partitioner(options).partition(BANK_CLASSES, main="Main.main")
        with app.start() as session:
            account = Account("x", 0)
            for i in range(200):
                account.update_balance(1)
            assert account.get_balance() == 200
            return session.platform.now_s

    def test_switchless_speeds_up_chatty_workloads(self):
        """The §7 future-work claim: transition-less calls pay off for
        applications performing many enclave transitions."""
        normal = self._time_run(switchless=False)
        switchless = self._time_run(switchless=True)
        assert switchless < normal / 10

    def test_switchless_counts_separately(self):
        options = PartitionOptions(name="sw_count", switchless=True)
        app = Partitioner(options).partition(BANK_CLASSES, main="Main.main")
        with app.start() as session:
            Account("x", 0)
            assert session.transition_stats.switchless_calls >= 1
            assert session.transition_stats.ecalls >= 1  # counted as ecalls too


class TestTracingAgent:
    def test_records_only_while_active(self):
        agent = TracingAgent()
        agent.record_class_access("Early")
        with agent.tracing():
            agent.record_class_access("During")
        agent.record_class_access("Late")
        assert agent.traced_classes == ("During",)

    def test_reflective_helpers_record(self):
        class Widget:
            def ping(self):
                return "pong"

        agent = TracingAgent()
        with agent.tracing():
            widget = agent.reflect_instantiate(Widget)
            assert agent.reflect_call(widget, "ping") == "pong"
        assert "Widget" in agent.traced_classes

    def test_json_round_trip_into_build_options(self):
        agent = TracingAgent()
        with agent.tracing():
            agent.record_method_access("AccountRegistry", "count")
        config = load_reflection_config(agent.to_json())
        assert config == ("AccountRegistry",)

        # The traced class is forced into an image that would not
        # otherwise reach it — closing the closed-world gap (§2.2).
        universe = ClassUniverse(extract_classes(BANK_CLASSES))
        image = NativeImageBuilder(
            BuildOptions(reflection_config=config)
        ).build("traced", universe, ["Account.get_balance"])
        assert image.contains_class("AccountRegistry")

    def test_malformed_config_rejected(self):
        with pytest.raises(BuildError):
            load_reflection_config("not json")
        with pytest.raises(BuildError):
            load_reflection_config('{"name": "NotAList"}')
        with pytest.raises(BuildError):
            load_reflection_config('[{"class": "missing-name-key"}]')


class TestTransitionProfiler:
    def test_profiles_accumulate(self):
        platform, enclave = make_enclave()
        profiler = TransitionProfiler(TransitionLayer(platform, enclave))
        for _ in range(3):
            profiler.ecall("relay_update", lambda: None, payload_bytes=100)
        profiler.ocall("ocall_write", lambda: None, payload_bytes=4096)
        profiles = {(p.kind, p.name): p for p in profiler.profiles()}
        assert profiles[("ecall", "relay_update")].calls == 3
        assert profiles[("ecall", "relay_update")].payload_bytes == 300
        assert profiles[("ocall", "ocall_write")].mean_payload == 4096
        assert profiles[("ecall", "relay_update")].mean_ns > 0

    def test_hottest_sorted_by_total_time(self):
        platform, enclave = make_enclave()
        profiler = TransitionProfiler(TransitionLayer(platform, enclave))
        profiler.ecall("cold", lambda: None)
        for _ in range(10):
            profiler.ecall("hot", lambda: None)
        assert profiler.hottest(1)[0].name == "hot"

    def test_switchless_candidates_flagged(self):
        platform, enclave = make_enclave()
        profiler = TransitionProfiler(TransitionLayer(platform, enclave))
        # ~7000 calls in well under a virtual second -> high frequency.
        for _ in range(7000):
            profiler.ecall("chatty", lambda: None)
        names = [p.name for p in profiler.switchless_candidates()]
        assert "chatty" in names
        assert "chatty" in profiler.report()


class TestSealing:
    def test_seal_unseal_round_trip(self):
        _, enclave = make_enclave()
        service = SealingService(enclave)
        blob = service.seal({"pin": 1234})
        assert service.unseal(blob) == {"pin": 1234}

    def test_ciphertext_hides_plaintext(self):
        _, enclave = make_enclave()
        blob = SealingService(enclave).seal("super-secret-owner")
        assert b"super-secret-owner" not in blob.ciphertext

    def test_tamper_rejected(self):
        from dataclasses import replace

        _, enclave = make_enclave()
        service = SealingService(enclave)
        blob = service.seal("data")
        flipped = bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:]
        with pytest.raises(AttestationError):
            service.unseal(replace(blob, ciphertext=flipped))

    def test_foreign_enclave_cannot_unseal(self):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        enclave_a = sdk.create_enclave(sdk.sign("a", b"code-a"))
        enclave_b = sdk.create_enclave(sdk.sign("b", b"code-b"))
        blob = SealingService(enclave_a).seal("bound to A")
        with pytest.raises(AttestationError):
            SealingService(enclave_b).unseal(blob)

    def test_same_measurement_can_unseal(self):
        """Sealing survives enclave restarts of the same build."""
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        signed = sdk.sign("app", b"same-code")
        first = sdk.create_enclave(signed)
        blob = SealingService(first).seal([1, 2, 3])
        sdk.destroy_enclave(first)
        second = sdk.create_enclave(signed)
        assert SealingService(second).unseal(blob) == [1, 2, 3]

    def test_transparent_seal_decorator(self):
        _, enclave = make_enclave()
        service = SealingService(enclave)

        class Secret:
            def __init__(self):
                self._value = "classified"

            @transparent_seal(service)
            def get_value(self):
                return self._value

        blob = Secret().get_value()
        assert not isinstance(blob, str)
        assert service.unseal(blob) == "classified"

    def test_sealing_charges_time(self):
        platform, enclave = make_enclave()
        before = platform.now_s
        SealingService(enclave).seal(b"x" * 10000)
        assert platform.now_s > before
