"""Tests for the build tool, the virtual scheduler, the report
generator, the EPC-paging experiment and the wire-codec option."""

import json
import os

import pytest

from repro.apps.bank import BANK_CLASSES, Account, Main, Person
from repro.buildtool import build, collect_classes, main as buildtool_main
from repro.core import Partitioner, PartitionOptions, Side
from repro.costs import fresh_platform
from repro.errors import ConfigurationError, PartitionError, SerializationError
from repro.experiments.epc_paging import run_epc_paging
from repro.runtime.scheduler import VirtualScheduler


class TestBuildTool:
    def test_build_bank_module(self, tmp_path):
        manifest = build("repro.apps.bank", str(tmp_path), main="Main.main")
        assert manifest["classes"]["Account"] == "trusted"
        assert manifest["classes"]["Person"] == "untrusted"
        assert manifest["images"]["trusted"]["artifact"].endswith("-trusted.o")
        assert "Main.main" in manifest["images"]["untrusted"]["entry_points"]
        for filename in ("manifest.json", "Enclave.config.xml", "tcb_report.txt",
                         "bank.edl", "ecalls.c", "shim_ocalls.c"):
            assert (tmp_path / filename).exists(), filename

    def test_manifest_parsable_and_consistent(self, tmp_path):
        build("repro.apps.bank", str(tmp_path), main="Main.main")
        with open(tmp_path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["images"]["trusted"]["reachable_methods"] > 0
        assert len(manifest["images"]["trusted"]["measurement"]) == 64

    def test_explicit_class_selection(self, tmp_path):
        manifest = build(
            "repro.apps.bank",
            str(tmp_path),
            class_names=["Account", "Person", "Main"],
            main="Main.main",
        )
        assert set(manifest["classes"]) == {"Account", "Person", "Main"}

    def test_unknown_module_rejected(self, tmp_path):
        with pytest.raises(PartitionError):
            build("no.such.module", str(tmp_path))

    def test_unknown_class_rejected(self, tmp_path):
        with pytest.raises(PartitionError):
            build("repro.apps.bank", str(tmp_path), class_names=["Ghost"])

    def test_cli_entry_point(self, tmp_path, capsys):
        code = buildtool_main(
            ["repro.apps.bank", "-o", str(tmp_path), "--main", "Main.main"]
        )
        assert code == 0
        assert "bank-trusted.o" in capsys.readouterr().out

    def test_cli_failure_is_nonzero(self, tmp_path, capsys):
        code = buildtool_main(["no.such.module", "-o", str(tmp_path)])
        assert code == 1
        assert "build failed" in capsys.readouterr().err

    def test_collect_classes_defaults_to_module_classes(self):
        classes = collect_classes("repro.apps.bank", None)
        names = {cls.__name__ for cls in classes}
        assert {"Account", "AccountRegistry", "Person", "Main"} <= names


class TestVirtualScheduler:
    def test_periodic_firing(self):
        platform = fresh_platform()
        scheduler = VirtualScheduler(platform)
        fired = []
        scheduler.every(1.0, lambda: fired.append(platform.now_s), name="tick")
        scheduler.advance_to(3.5)
        assert len(fired) == 3
        assert fired[0] == pytest.approx(1.0)
        assert fired[2] == pytest.approx(3.0)

    def test_pump_fires_overdue_tasks_once_each(self):
        platform = fresh_platform()
        scheduler = VirtualScheduler(platform)
        count = []
        scheduler.every(1.0, lambda: count.append(1))
        platform.charge_ns("work", 5e9)  # five periods pass without pumping
        scheduler.pump()
        assert len(count) == 1  # no catch-up storm

    def test_multiple_tasks_deadline_order(self):
        platform = fresh_platform()
        scheduler = VirtualScheduler(platform)
        order = []
        scheduler.every(2.0, lambda: order.append("slow"))
        scheduler.every(1.0, lambda: order.append("fast"))
        scheduler.advance_to(2.0)
        assert order == ["fast", "slow", "fast"] or order == ["fast", "fast", "slow"]

    def test_cancel(self):
        platform = fresh_platform()
        scheduler = VirtualScheduler(platform)
        fired = []
        task = scheduler.every(1.0, lambda: fired.append(1))
        scheduler.cancel(task)
        scheduler.advance_to(5.0)
        assert fired == []
        assert scheduler.pending() == 0

    def test_invalid_period_rejected(self):
        scheduler = VirtualScheduler(fresh_platform())
        with pytest.raises(ConfigurationError):
            scheduler.every(0.0, lambda: None)

    def test_cannot_advance_backwards(self):
        platform = fresh_platform()
        platform.charge_ns("work", 2e9)
        scheduler = VirtualScheduler(platform)
        with pytest.raises(ConfigurationError):
            scheduler.advance_to(1.0)

    def test_drives_gc_helpers(self):
        """The §5.5 wiring: helpers as periodic scheduler tasks."""
        import gc

        app = Partitioner(PartitionOptions(name="sched")).partition(
            BANK_CLASSES, main="Main.main"
        )
        with app.start() as session:
            scheduler = VirtualScheduler(session.platform)
            for helper in session.gc_helpers.values():
                scheduler.every(1.0, lambda h=helper: h.scan_once(), name="gc")
            account = Account("x", 1)
            registry = session.runtime.state_of(Side.TRUSTED).registry
            assert registry.live_count() == 1
            del account
            gc.collect()
            scheduler.advance_to(session.platform.now_s + 1.5)
            assert registry.live_count() == 0


class TestEpcPagingExperiment:
    def test_cliff_at_usable_epc(self):
        table = run_epc_paging(working_sets_mb=(64, 93, 110, 192))
        slowdown = table.get("enclave/host slowdown")
        # Flat below the EPC boundary...
        assert slowdown.y_at(64) == pytest.approx(slowdown.y_at(93))
        # ...cliff above it, growing with the working set.
        assert slowdown.y_at(110) > slowdown.y_at(93) * 1.5
        assert slowdown.y_at(192) > slowdown.y_at(110)

    def test_host_never_pages(self):
        table = run_epc_paging(working_sets_mb=(64, 256))
        host = table.get("host time (s)")
        assert host.y_at(64) == pytest.approx(host.y_at(256))


class TestWireCodecOption:
    def test_partitioned_run_with_wire_format(self):
        options = PartitionOptions(name="wire_run", wire_format=True)
        app = Partitioner(options).partition(BANK_CLASSES, main="Main.main")
        with app.start():
            registry = Main.main()
            assert registry.total_balance() == 125

    def test_wire_format_rejects_non_plain_arguments(self):
        options = PartitionOptions(name="wire_reject", wire_format=True)
        app = Partitioner(options).partition(BANK_CLASSES, main="Main.main")
        with app.start():
            account = Account("x", 1)
            with pytest.raises(SerializationError):
                # A set of functions is not plain data in any codec, but
                # wire rejects even custom objects pickle would accept.
                account.update_balance(object())


class TestBuildTimeInit:
    def test_collect_build_time_init(self):
        from repro.core.partitioner import collect_build_time_init
        from repro.graal.image import ImageHeap

        class WithInit:
            @classmethod
            def __build_init__(cls, heap):
                heap.put("ready", True)

        class Without:
            pass

        assert collect_build_time_init([Without]) is None
        runner = collect_build_time_init([WithInit, Without])
        heap = ImageHeap()
        runner(heap)
        assert heap.startup_view()["ready"] is True

    def test_partitioned_app_exposes_startup_heap(self):
        from repro.core.annotations import trusted

        @trusted
        class Precomputed:
            @classmethod
            def __build_init__(cls, heap):
                heap.put("table", [i * i for i in range(16)])

            def use(self):
                return 1

        app = Partitioner(PartitionOptions(name="bti_unit")).partition(
            [Precomputed, *BANK_CLASSES], main="Main.main"
        )
        assert app.images.trusted.image_heap_bytes > 0
        with app.start() as session:
            table = session.startup_heap(Side.TRUSTED)["table"]
            assert table[4] == 16
            # The untrusted image has no trusted build-init state.
            assert "table" not in session.startup_heap(Side.UNTRUSTED)

    def test_image_startup_heap_empty_without_init(self):
        from repro.graal import NativeImageBuilder, extract_classes
        from repro.graal.jtypes import ClassUniverse

        universe = ClassUniverse(extract_classes(BANK_CLASSES))
        image = NativeImageBuilder().build("plain", universe, ["Main.main"])
        assert image.startup_heap() == {}


class TestReportGenerator:
    def test_report_contains_headlines(self):
        from repro.experiments.report import generate_report

        text = generate_report(paper_scale=False)
        assert "Fig. 3 proxy creation" in text
        assert "Table 1 ratios" in text
        assert "| result | paper | measured |" in text


class TestNeutralCopies:
    def test_neutral_objects_copy_and_evolve_independently(self):
        """§5.1: neutral instances may have several copies in both
        worlds and evolve independently."""
        app = Partitioner(PartitionOptions(name="neutral")).partition(
            BANK_CLASSES, main="Main.main"
        )
        with app.start() as session:
            payload = [1, 2, 3]
            account = Account("x", 0)
            # The list crossed by serialization: the mirror saw a copy.
            mirror = session.runtime.state_of(Side.TRUSTED).registry.get(
                account.get_hash()
            )
            payload.append(4)  # evolving the local copy...
            assert mirror.owner == "x"  # ...does not affect the enclave
