"""Partition linter: rules, baseline, reporters, CLI and the lint gate."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CODES,
    BOUNDARY_ESCAPE,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    IDLE_CROSSING,
    SECURE_ESCAPE,
    UNSERIALIZABLE_CROSSING,
    AppModel,
    Diagnostic,
    LintResult,
    PartitionLinter,
    Severity,
    analyze_taint,
    classify_annotation,
    declares_secure_return,
    diff_candidates,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.report import JSON_SCHEMA, format_text, to_dict, to_json
from repro.apps.bank import BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.errors import PartitionError
from repro.sgx.profiler import RoutineProfile
from tests.fixtures.lintapp import LINT_FIXTURE_CLASSES, Station
from tests.fixtures.secvapp import SECV_FIXTURE_CLASSES

REPO_BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"


@pytest.fixture(scope="module")
def fixture_result() -> LintResult:
    return PartitionLinter().lint(LINT_FIXTURE_CLASSES)


@pytest.fixture(scope="module")
def secv_result() -> LintResult:
    return PartitionLinter().lint(SECV_FIXTURE_CLASSES)


class TestFixtureFindings:
    """The fixture app seeds at least one finding per rule (acceptance)."""

    def test_all_five_codes_fire(self, fixture_result):
        assert fixture_result.codes() == tuple(sorted(ALL_CODES))

    def test_exit_code_nonzero(self, fixture_result):
        assert fixture_result.error_count > 0
        assert fixture_result.exit_code == 1

    def test_boundary_escape_locations(self, fixture_result):
        escapes = fixture_result.by_code(BOUNDARY_ESCAPE)
        assert {d.location for d in escapes} == {"Station.exfiltrate"}
        details = {d.detail for d in escapes}
        assert "return:secret" in details
        assert any(d.endswith("Uplink.send") for d in details)
        assert all(d.severity is Severity.ERROR for d in escapes)

    def test_unserializable_crossing_severities(self, fixture_result):
        crossings = fixture_result.by_code(UNSERIALIZABLE_CROSSING)
        by_location = {(d.location, d.detail): d.severity for d in crossings}
        # Callable can never cross; neutral Config crosses pickle-only.
        assert by_location[("Uplink.send_callback", "param:callback")] is Severity.ERROR
        assert by_location[("Station.configure", "param:config")] is Severity.WARNING

    def test_chatty_crossing_estimate(self, fixture_result):
        chatty = fixture_result.by_code(CHATTY_CROSSING)
        assert len(chatty) == 1
        diag = chatty[0]
        assert diag.location == "Station.rekey"
        assert diag.data["routine"] == "relay_Vault_rotate"
        assert diag.data["kind"] == "ecall"
        assert diag.data["depth"] == 1
        assert diag.data["estimated_calls"] >= 1

    def test_dead_tcb_names_method_and_bytes(self, fixture_result):
        from repro.core.tcb import method_code_bytes

        dead = fixture_result.by_code(DEAD_TCB)
        assert {d.location for d in dead} == {"Vault._forgotten_migration"}
        assert str(method_code_bytes()) in dead[0].message

    def test_encapsulation_covers_getattr(self, fixture_result):
        leaks = fixture_result.by_code(ENCAPSULATION)
        assert {d.location for d in leaks} == {"Station.peek", "Station.probe"}
        assert all(d.detail == "Vault.secret" for d in leaks)


class TestBundledApps:
    """False-positive guard: shipped apps lint clean against the baseline."""

    def test_bank_is_clean_without_baseline(self):
        result = PartitionLinter().lint(list(BANK_CLASSES))
        assert result.diagnostics == ()

    def test_all_bundled_apps_match_checked_in_baseline(self):
        from repro.analysis.cli import BUNDLED_APPS

        baseline = load_baseline(REPO_BASELINE)
        for name, loader in BUNDLED_APPS.items():
            result = PartitionLinter().lint(loader(), baseline=baseline)
            assert result.diagnostics == (), (
                f"unbaselined findings in bundled app {name!r}: "
                f"{[d.format() for d in result.diagnostics]}"
            )

    def test_baseline_has_no_globally_unused_keys(self):
        from repro.analysis.cli import BUNDLED_APPS

        baseline = load_baseline(REPO_BASELINE)
        used = set()
        for loader in BUNDLED_APPS.values():
            result = PartitionLinter().lint(loader(), baseline=baseline)
            used.update(d.suppression_key for d in result.suppressed)
        assert baseline == used


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path, fixture_result):
        path = tmp_path / "baseline.txt"
        write_baseline(path, fixture_result.diagnostics)
        reloaded = load_baseline(path)
        result = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=reloaded)
        assert result.diagnostics == ()
        assert len(result.suppressed) == len(fixture_result.diagnostics)
        assert result.exit_code == 0

    def test_comments_and_unused_keys(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# explanatory comment\n"
            "MSV005:Station.peek:Vault.secret\n"
            "MSV001:Ghost.method:bogus  # trailing comment\n"
        )
        baseline = load_baseline(path)
        result = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=baseline)
        assert "MSV001:Ghost.method:bogus" in result.unused_suppressions
        suppressed = {d.suppression_key for d in result.suppressed}
        assert suppressed == {"MSV005:Station.peek:Vault.secret"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.txt") == set()


class TestReporters:
    def test_text_report_mentions_codes_and_counts(self, fixture_result):
        text = format_text({"lintapp": fixture_result})
        for code in ALL_CODES:
            assert code in text
        assert "error" in text
        assert "relay_Vault_rotate" in text  # predicted candidates block

    def test_json_report_schema(self, fixture_result):
        doc = json.loads(to_json({"lintapp": fixture_result}))
        assert doc["schema"] == JSON_SCHEMA
        assert doc["exit_code"] == 1
        target = doc["targets"]["lintapp"]
        codes = {d["code"] for d in target["diagnostics"]}
        assert codes == set(ALL_CODES)
        sample = target["diagnostics"][0]
        assert {"code", "severity", "class", "method", "message"} <= set(sample)

    def test_to_dict_counts_are_consistent(self, fixture_result):
        doc = to_dict({"lintapp": fixture_result})
        counts = doc["targets"]["lintapp"]["counts"]
        assert counts["error"] == fixture_result.error_count
        assert counts["warning"] == fixture_result.warning_count


class TestCli:
    def test_lint_subcommand_dispatches(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--module", "tests.fixtures.lintapp"])
        out = capsys.readouterr().out
        assert rc == 1
        for code in ALL_CODES:
            assert code in out

    def test_bundled_apps_exit_zero_with_baseline(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--baseline", str(REPO_BASELINE)])
        captured = capsys.readouterr()
        assert rc == 0, captured.out
        assert "unused suppression" not in captured.err

    def test_json_flag(self, capsys):
        from repro.analysis.cli import main

        rc = main(["bank", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema"] == JSON_SCHEMA
        assert doc["targets"]["bank"]["diagnostics"] == []

    def test_unknown_target_is_usage_error(self, capsys):
        from repro.analysis.cli import main

        assert main(["no-such-app"]) == 2

    def test_write_baseline(self, tmp_path, capsys):
        from repro.analysis.cli import main

        path = tmp_path / "new-baseline.txt"
        rc = main(
            [
                "--module",
                "tests.fixtures.lintapp",
                "--write-baseline",
                str(path),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        keys = load_baseline(path)
        assert any(key.startswith("MSV001:") for key in keys)
        rerun = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=keys)
        assert rerun.exit_code == 0


class TestLintGate:
    def test_partition_refuses_on_errors(self):
        with pytest.raises(PartitionError, match="partition linter found"):
            Partitioner(PartitionOptions(name="gate")).partition(
                list(LINT_FIXTURE_CLASSES), lint=True
            )

    def test_partition_passes_clean_app(self):
        app = Partitioner(PartitionOptions(name="gate_ok")).partition(
            list(BANK_CLASSES), main="Main.main", lint=True
        )
        assert app.name == "gate_ok"

    def test_gate_off_by_default(self):
        app = Partitioner(PartitionOptions(name="gate_off")).partition(
            list(LINT_FIXTURE_CLASSES)
        )
        assert app.name == "gate_off"


class TestDiagnosticModel:
    def test_suppression_key_replaces_spaces(self):
        diag = Diagnostic(
            code="MSV001",
            severity=Severity.ERROR,
            class_name="C",
            method_name="m",
            message="msg",
            detail="a b",
        )
        assert diag.suppression_key == "MSV001:C.m:a_b"

    def test_classify_annotation_outside_model(self):
        model = AppModel(LINT_FIXTURE_CLASSES)
        assert classify_annotation("int", model, None).kind == "wire"
        assert classify_annotation("Vault", model, None).crosses_as_proxy
        assert (
            classify_annotation("Callable[[str], None]", model, None).kind
            == "unmarshalable"
        )
        assert classify_annotation("List[Vault]", model, None).kind == "nested_proxy"


class TestStaticVsDynamic:
    """Acceptance: MSV003's static predictions agree with a dynamic
    :class:`TransitionProfiler` trace of the same workload."""

    def test_predicted_candidates_format(self, fixture_result):
        static = fixture_result.predicted_candidates()
        assert static and all(isinstance(p, RoutineProfile) for p in static)
        assert {(p.kind, p.name) for p in static} == {("ecall", "relay_Vault_rotate")}

    def test_static_predictions_confirmed_by_trace(self, fixture_result):
        from repro.sgx.profiler import TransitionProfiler

        static = fixture_result.predicted_candidates()
        options = PartitionOptions(name="lint_dynamic")
        app = Partitioner(options).partition(list(LINT_FIXTURE_CLASSES))
        with app.start() as session:
            profiler = TransitionProfiler(session.transitions)
            station = Station("hunter2")
            station.rekey(2000)
            dynamic = profiler.switchless_candidates()
            profiler.close()

        assert ("ecall", "relay_Vault_rotate") in {
            (p.kind, p.name) for p in dynamic
        }
        diff = diff_candidates(static, dynamic)
        assert [(p.kind, p.name) for p in diff["static_only"]] == []
        assert ("ecall", "relay_Vault_rotate") in {
            (p.kind, p.name) for p in diff["both"]
        }
        # Anything dynamic-only is the one-off constructor crossing, not a
        # loop the static analysis should have seen.
        assert all(p.name == "relay_Vault_init" for p in diff["dynamic_only"])


class TestDeadTcbAccounting:
    def test_dead_code_report_prices_by_method(self):
        from repro.core.tcb import dead_code_report, method_code_bytes
        from repro.graal.image import CODE_BYTES_PER_METHOD

        assert method_code_bytes() == CODE_BYTES_PER_METHOD
        report = dead_code_report({"Vault": ["_forgotten_migration", "_other"]})
        assert report.total_bytes == 2 * CODE_BYTES_PER_METHOD


class TestTaintRegressions:
    """The MSV001 propagation gaps this PR closes (satellite 1)."""

    def test_tuple_unpacking_propagates_taint(self, secv_result):
        keys = {d.suppression_key for d in secv_result.by_code(BOUNDARY_ESCAPE)}
        assert "MSV001:Mixer.tuple_leak:secret->Gateway.send" in keys

    def test_augmented_assign_propagates_taint(self, secv_result):
        keys = {d.suppression_key for d in secv_result.by_code(BOUNDARY_ESCAPE)}
        assert "MSV001:Mixer.accumulate:banner->Gateway.send" in keys

    def test_plain_findings_carry_provenance(self, secv_result):
        for diag in secv_result.by_code(BOUNDARY_ESCAPE):
            assert diag.data["provenance"] == ["Keyring.reveal"]

    def test_untainted_sibling_not_flagged(self, secv_result):
        details = {d.detail for d in secv_result.by_code(BOUNDARY_ESCAPE)}
        assert all("count" not in detail for detail in details)
        assert all("attempts" not in detail for detail in details)

    def test_engine_agrees_with_walker_on_lintapp(self, fixture_result):
        """Acceptance: no churn on the PR 2 fixture's MSV001 keys."""
        keys = {d.suppression_key for d in fixture_result.by_code(BOUNDARY_ESCAPE)}
        assert keys == {
            "MSV001:Station.exfiltrate:secret->Uplink.send",
            "MSV001:Station.exfiltrate:return:secret",
        }


class TestSecureEscape:
    """MSV006: secure values must pass declassify() before escaping."""

    def test_every_seeded_escape_path_fires(self, secv_result):
        escapes = secv_result.by_code(SECURE_ESCAPE)
        assert {d.location for d in escapes} == {
            "Broker.leak_direct",  # secure() call as the argument
            "Broker.leak_via_helper",  # interprocedural return flow
            "Broker.leak_via_field",  # through self.cached
            "Broker.leak_via_tuple",  # through tuple unpacking
            "Broker.export",  # returned under a plain annotation
        }
        assert all(d.severity is Severity.ERROR for d in escapes)

    def test_declassified_exit_is_clean(self, secv_result):
        locations = {d.location for d in secv_result.diagnostics}
        assert "Broker.publish" not in locations

    def test_declared_secure_return_is_sanctioned(self, secv_result):
        assert not [
            d
            for d in secv_result.by_code(SECURE_ESCAPE)
            if d.location == "Broker.mint"
        ]

    def test_suppression_keys_are_stable(self, secv_result):
        keys = {d.suppression_key for d in secv_result.by_code(SECURE_ESCAPE)}
        assert keys == {
            "MSV006:Broker.export:secure-return:secure:api-key",
            "MSV006:Broker.leak_direct:secure:secure:pin()->Gateway.send",
            "MSV006:Broker.leak_via_field:secure:secure:api-key->Gateway.send",
            "MSV006:Broker.leak_via_helper:secure:token->Gateway.send",
            "MSV006:Broker.leak_via_tuple:secure:token->Gateway.send",
        }

    def test_field_flow_provenance_names_every_hop(self, secv_result):
        by_location = {
            d.location: d for d in secv_result.by_code(SECURE_ESCAPE)
        }
        chain = by_location["Broker.leak_via_field"].data["provenance"]
        assert chain == [
            "secure:api-key",
            "via:Broker.mint",
            "field:Broker.cached",
        ]

    def test_lintapp_broadcast_fires_publish_does_not(self, fixture_result):
        escapes = fixture_result.by_code(SECURE_ESCAPE)
        assert {d.suppression_key for d in escapes} == {
            "MSV006:Station.broadcast:secure:token->Uplink.send"
        }

    def test_secv_apps_lint_clean(self):
        from repro.apps.secv import SECV_BANK_CLASSES, SECV_KEEPER_CLASSES

        for classes in (SECV_BANK_CLASSES, SECV_KEEPER_CLASSES):
            result = PartitionLinter().lint(list(classes))
            assert result.diagnostics == (), [
                d.suppression_key for d in result.diagnostics
            ]


class TestIdleCrossing:
    """MSV007: crossings carrying zero secure values, info-only."""

    def test_flags_plain_crossings_when_app_uses_secure(self, secv_result):
        idle = secv_result.by_code(IDLE_CROSSING)
        keys = {d.suppression_key for d in idle}
        assert "MSV007:Broker.heartbeat:relay_Keyring_rotate" in keys
        assert all(d.severity is Severity.INFO for d in idle)

    def test_silent_when_app_never_uses_secure(self):
        result = PartitionLinter().lint(list(BANK_CLASSES))
        assert result.by_code(IDLE_CROSSING) == ()

    def test_info_severity_never_fails_the_build(self, secv_result):
        infos = tuple(
            d for d in secv_result.diagnostics if d.severity is Severity.INFO
        )
        assert infos
        info_only = LintResult(diagnostics=infos)
        assert info_only.exit_code == 0

    def test_minting_crossings_are_not_idle(self):
        from repro.apps.secv import SECV_BANK_CLASSES

        result = PartitionLinter().lint(list(SECV_BANK_CLASSES))
        assert result.by_code(IDLE_CROSSING) == ()


class TestTaintEngine:
    """Engine-level behaviour behind MSV001/MSV006/MSV007."""

    def test_interprocedural_summary_returns_secure(self):
        analysis = analyze_taint(AppModel(SECV_FIXTURE_CLASSES))
        summary = analysis.summaries["Broker.mint"]
        kinds = {(t.kind, t.source) for t in summary.returns}
        assert ("secure", "secure:api-key") in kinds

    def test_analysis_is_cached_per_model(self):
        model = AppModel(SECV_FIXTURE_CLASSES)
        assert analyze_taint(model) is analyze_taint(model)

    def test_fixpoint_terminates_quickly(self):
        analysis = analyze_taint(AppModel(SECV_FIXTURE_CLASSES))
        assert 1 <= analysis.iterations <= 16

    def test_provenance_chains_are_bounded(self):
        from repro.analysis.taint import MAX_CHAIN, Taint

        taint = Taint("secure", "secure:x", ("secure:x",))
        for step in range(20):
            taint = taint.extended(f"hop{step}")
        assert len(taint.chain) <= MAX_CHAIN
        assert taint.extended("hop19") == taint  # repeated step is a no-op

    def test_crossing_events_count_secure_payloads(self):
        from repro.apps.secv import SECV_BANK_CLASSES

        analysis = analyze_taint(AppModel(SECV_BANK_CLASSES))
        by_routine = {event.routine: event for event in analysis.crossings}
        settle = by_routine["relay_SettlementVault_settle"]
        assert settle.secure_args >= 1
        mint = by_routine["relay_SettlementVault_open_account"]
        assert mint.secure_args == 0 and mint.secure_return

    def test_declares_secure_return_reads_the_signature(self):
        model = AppModel(SECV_FIXTURE_CLASSES)
        assert declares_secure_return(model, "Broker", "mint")
        assert not declares_secure_return(model, "Broker", "export")
        assert not declares_secure_return(model, "Keyring", "reveal")
        assert not declares_secure_return(model, "Ghost", "nothing")


class TestUpdateBaseline:
    """``repro lint --update-baseline`` regenerates the file in place."""

    def _initial(self, tmp_path, fixture_result):
        path = tmp_path / "baseline.txt"
        keep = [
            d
            for d in fixture_result.diagnostics
            if d.code in (ENCAPSULATION, CHATTY_CROSSING)
        ]
        path.write_text(
            "# Header comment describing the file.\n"
            "\n"
            "# peek is a debug helper, removal tracked elsewhere.\n"
            f"{keep[0].suppression_key}\n"
            "MSV001:Ghost.method:stale  # no longer produced\n"
            + "".join(f"{d.suppression_key}\n" for d in keep[1:])
        )
        return path

    def test_update_keeps_drops_and_appends(self, tmp_path, fixture_result):
        path = self._initial(tmp_path, fixture_result)
        update = update_baseline(str(path), fixture_result.diagnostics)
        text = path.read_text()
        assert update.removed == ("MSV001:Ghost.method:stale",)
        assert "Ghost.method" not in text
        # Kept entries retain their explanatory comments verbatim.
        assert "# peek is a debug helper" in text
        # Every current finding is now suppressed, new ones under the marker.
        assert update.total == len(
            {d.suppression_key for d in fixture_result.diagnostics}
        )
        assert "# New findings" in text
        reloaded = load_baseline(path)
        rerun = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=reloaded)
        assert rerun.diagnostics == ()

    def test_second_run_is_a_byte_identical_noop(self, tmp_path, fixture_result):
        path = self._initial(tmp_path, fixture_result)
        update_baseline(str(path), fixture_result.diagnostics)
        first = path.read_bytes()
        second_update = update_baseline(str(path), fixture_result.diagnostics)
        assert not second_update.changed
        assert second_update.added == () and second_update.removed == ()
        assert path.read_bytes() == first

    def test_update_creates_missing_file_with_header(self, tmp_path, fixture_result):
        path = tmp_path / "fresh.txt"
        update = update_baseline(str(path), fixture_result.diagnostics)
        assert update.total == len(
            {d.suppression_key for d in fixture_result.diagnostics}
        )
        assert path.read_text().startswith("# Partition-linter baseline")

    def test_cli_update_baseline_flag(self, tmp_path, capsys):
        from repro.analysis.cli import main

        path = tmp_path / "cli-baseline.txt"
        args = ["--module", "tests.fixtures.lintapp", "--update-baseline", str(path)]
        assert main(args) == 0
        first = path.read_bytes()
        out = capsys.readouterr().out
        assert "added" in out and "removed" in out
        # Second run: a no-op, file byte-identical.
        assert main(args) == 0
        assert "0 added, 0 removed" in capsys.readouterr().out
        assert path.read_bytes() == first
