"""Partition linter: rules, baseline, reporters, CLI and the lint gate."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CODES,
    BOUNDARY_ESCAPE,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    UNSERIALIZABLE_CROSSING,
    AppModel,
    Diagnostic,
    LintResult,
    PartitionLinter,
    Severity,
    classify_annotation,
    diff_candidates,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import JSON_SCHEMA, format_text, to_dict, to_json
from repro.apps.bank import BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.errors import PartitionError
from repro.sgx.profiler import RoutineProfile
from tests.fixtures.lintapp import LINT_FIXTURE_CLASSES, Station

REPO_BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"


@pytest.fixture(scope="module")
def fixture_result() -> LintResult:
    return PartitionLinter().lint(LINT_FIXTURE_CLASSES)


class TestFixtureFindings:
    """The fixture app seeds at least one finding per rule (acceptance)."""

    def test_all_five_codes_fire(self, fixture_result):
        assert fixture_result.codes() == tuple(sorted(ALL_CODES))

    def test_exit_code_nonzero(self, fixture_result):
        assert fixture_result.error_count > 0
        assert fixture_result.exit_code == 1

    def test_boundary_escape_locations(self, fixture_result):
        escapes = fixture_result.by_code(BOUNDARY_ESCAPE)
        assert {d.location for d in escapes} == {"Station.exfiltrate"}
        details = {d.detail for d in escapes}
        assert "return:secret" in details
        assert any(d.endswith("Uplink.send") for d in details)
        assert all(d.severity is Severity.ERROR for d in escapes)

    def test_unserializable_crossing_severities(self, fixture_result):
        crossings = fixture_result.by_code(UNSERIALIZABLE_CROSSING)
        by_location = {(d.location, d.detail): d.severity for d in crossings}
        # Callable can never cross; neutral Config crosses pickle-only.
        assert by_location[("Uplink.send_callback", "param:callback")] is Severity.ERROR
        assert by_location[("Station.configure", "param:config")] is Severity.WARNING

    def test_chatty_crossing_estimate(self, fixture_result):
        chatty = fixture_result.by_code(CHATTY_CROSSING)
        assert len(chatty) == 1
        diag = chatty[0]
        assert diag.location == "Station.rekey"
        assert diag.data["routine"] == "relay_Vault_rotate"
        assert diag.data["kind"] == "ecall"
        assert diag.data["depth"] == 1
        assert diag.data["estimated_calls"] >= 1

    def test_dead_tcb_names_method_and_bytes(self, fixture_result):
        from repro.core.tcb import method_code_bytes

        dead = fixture_result.by_code(DEAD_TCB)
        assert {d.location for d in dead} == {"Vault._forgotten_migration"}
        assert str(method_code_bytes()) in dead[0].message

    def test_encapsulation_covers_getattr(self, fixture_result):
        leaks = fixture_result.by_code(ENCAPSULATION)
        assert {d.location for d in leaks} == {"Station.peek", "Station.probe"}
        assert all(d.detail == "Vault.secret" for d in leaks)


class TestBundledApps:
    """False-positive guard: shipped apps lint clean against the baseline."""

    def test_bank_is_clean_without_baseline(self):
        result = PartitionLinter().lint(list(BANK_CLASSES))
        assert result.diagnostics == ()

    def test_all_bundled_apps_match_checked_in_baseline(self):
        from repro.analysis.cli import BUNDLED_APPS

        baseline = load_baseline(REPO_BASELINE)
        for name, loader in BUNDLED_APPS.items():
            result = PartitionLinter().lint(loader(), baseline=baseline)
            assert result.diagnostics == (), (
                f"unbaselined findings in bundled app {name!r}: "
                f"{[d.format() for d in result.diagnostics]}"
            )

    def test_baseline_has_no_globally_unused_keys(self):
        from repro.analysis.cli import BUNDLED_APPS

        baseline = load_baseline(REPO_BASELINE)
        used = set()
        for loader in BUNDLED_APPS.values():
            result = PartitionLinter().lint(loader(), baseline=baseline)
            used.update(d.suppression_key for d in result.suppressed)
        assert baseline == used


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path, fixture_result):
        path = tmp_path / "baseline.txt"
        write_baseline(path, fixture_result.diagnostics)
        reloaded = load_baseline(path)
        result = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=reloaded)
        assert result.diagnostics == ()
        assert len(result.suppressed) == len(fixture_result.diagnostics)
        assert result.exit_code == 0

    def test_comments_and_unused_keys(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# explanatory comment\n"
            "MSV005:Station.peek:Vault.secret\n"
            "MSV001:Ghost.method:bogus  # trailing comment\n"
        )
        baseline = load_baseline(path)
        result = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=baseline)
        assert "MSV001:Ghost.method:bogus" in result.unused_suppressions
        suppressed = {d.suppression_key for d in result.suppressed}
        assert suppressed == {"MSV005:Station.peek:Vault.secret"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.txt") == set()


class TestReporters:
    def test_text_report_mentions_codes_and_counts(self, fixture_result):
        text = format_text({"lintapp": fixture_result})
        for code in ALL_CODES:
            assert code in text
        assert "error" in text
        assert "relay_Vault_rotate" in text  # predicted candidates block

    def test_json_report_schema(self, fixture_result):
        doc = json.loads(to_json({"lintapp": fixture_result}))
        assert doc["schema"] == JSON_SCHEMA
        assert doc["exit_code"] == 1
        target = doc["targets"]["lintapp"]
        codes = {d["code"] for d in target["diagnostics"]}
        assert codes == set(ALL_CODES)
        sample = target["diagnostics"][0]
        assert {"code", "severity", "class", "method", "message"} <= set(sample)

    def test_to_dict_counts_are_consistent(self, fixture_result):
        doc = to_dict({"lintapp": fixture_result})
        counts = doc["targets"]["lintapp"]["counts"]
        assert counts["error"] == fixture_result.error_count
        assert counts["warning"] == fixture_result.warning_count


class TestCli:
    def test_lint_subcommand_dispatches(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--module", "tests.fixtures.lintapp"])
        out = capsys.readouterr().out
        assert rc == 1
        for code in ALL_CODES:
            assert code in out

    def test_bundled_apps_exit_zero_with_baseline(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--baseline", str(REPO_BASELINE)])
        captured = capsys.readouterr()
        assert rc == 0, captured.out
        assert "unused suppression" not in captured.err

    def test_json_flag(self, capsys):
        from repro.analysis.cli import main

        rc = main(["bank", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema"] == JSON_SCHEMA
        assert doc["targets"]["bank"]["diagnostics"] == []

    def test_unknown_target_is_usage_error(self, capsys):
        from repro.analysis.cli import main

        assert main(["no-such-app"]) == 2

    def test_write_baseline(self, tmp_path, capsys):
        from repro.analysis.cli import main

        path = tmp_path / "new-baseline.txt"
        rc = main(
            [
                "--module",
                "tests.fixtures.lintapp",
                "--write-baseline",
                str(path),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        keys = load_baseline(path)
        assert any(key.startswith("MSV001:") for key in keys)
        rerun = PartitionLinter().lint(LINT_FIXTURE_CLASSES, baseline=keys)
        assert rerun.exit_code == 0


class TestLintGate:
    def test_partition_refuses_on_errors(self):
        with pytest.raises(PartitionError, match="partition linter found"):
            Partitioner(PartitionOptions(name="gate")).partition(
                list(LINT_FIXTURE_CLASSES), lint=True
            )

    def test_partition_passes_clean_app(self):
        app = Partitioner(PartitionOptions(name="gate_ok")).partition(
            list(BANK_CLASSES), main="Main.main", lint=True
        )
        assert app.name == "gate_ok"

    def test_gate_off_by_default(self):
        app = Partitioner(PartitionOptions(name="gate_off")).partition(
            list(LINT_FIXTURE_CLASSES)
        )
        assert app.name == "gate_off"


class TestDiagnosticModel:
    def test_suppression_key_replaces_spaces(self):
        diag = Diagnostic(
            code="MSV001",
            severity=Severity.ERROR,
            class_name="C",
            method_name="m",
            message="msg",
            detail="a b",
        )
        assert diag.suppression_key == "MSV001:C.m:a_b"

    def test_classify_annotation_outside_model(self):
        model = AppModel(LINT_FIXTURE_CLASSES)
        assert classify_annotation("int", model, None).kind == "wire"
        assert classify_annotation("Vault", model, None).crosses_as_proxy
        assert (
            classify_annotation("Callable[[str], None]", model, None).kind
            == "unmarshalable"
        )
        assert classify_annotation("List[Vault]", model, None).kind == "nested_proxy"


class TestStaticVsDynamic:
    """Acceptance: MSV003's static predictions agree with a dynamic
    :class:`TransitionProfiler` trace of the same workload."""

    def test_predicted_candidates_format(self, fixture_result):
        static = fixture_result.predicted_candidates()
        assert static and all(isinstance(p, RoutineProfile) for p in static)
        assert {(p.kind, p.name) for p in static} == {("ecall", "relay_Vault_rotate")}

    def test_static_predictions_confirmed_by_trace(self, fixture_result):
        from repro.sgx.profiler import TransitionProfiler

        static = fixture_result.predicted_candidates()
        options = PartitionOptions(name="lint_dynamic")
        app = Partitioner(options).partition(list(LINT_FIXTURE_CLASSES))
        with app.start() as session:
            profiler = TransitionProfiler(session.transitions)
            station = Station("hunter2")
            station.rekey(2000)
            dynamic = profiler.switchless_candidates()
            profiler.close()

        assert ("ecall", "relay_Vault_rotate") in {
            (p.kind, p.name) for p in dynamic
        }
        diff = diff_candidates(static, dynamic)
        assert [(p.kind, p.name) for p in diff["static_only"]] == []
        assert ("ecall", "relay_Vault_rotate") in {
            (p.kind, p.name) for p in diff["both"]
        }
        # Anything dynamic-only is the one-off constructor crossing, not a
        # loop the static analysis should have seen.
        assert all(p.name == "relay_Vault_init" for p in diff["dynamic_only"])


class TestDeadTcbAccounting:
    def test_dead_code_report_prices_by_method(self):
        from repro.core.tcb import dead_code_report, method_code_bytes
        from repro.graal.image import CODE_BYTES_PER_METHOD

        assert method_code_bytes() == CODE_BYTES_PER_METHOD
        report = dead_code_report({"Vault": ["_forgotten_migration", "_other"]})
        assert report.total_bytes == 2 * CODE_BYTES_PER_METHOD
