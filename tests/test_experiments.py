"""Integration tests: every experiment reproduces the paper's *shape*
at a reduced scale, and the CLI drives them."""

import math

import pytest

from repro.cli import main as cli_main
from repro.experiments.ablations import (
    run_gc_period_ablation,
    run_hash_ablation,
    run_mee_sensitivity,
    run_switchless_ablation,
)
from repro.experiments.common import ExperimentTable, Series, orders_of_magnitude
from repro.experiments.fig12_specjvm import PAPER_TABLE1, run_fig12, run_table1
from repro.experiments.fig3_proxy_creation import run_fig3
from repro.experiments.fig4_rmi import run_fig4a, run_fig4b
from repro.experiments.fig5_gc import run_fig5a, run_fig5b
from repro.experiments.fig6_synthetic import run_fig6
from repro.experiments.fig7_paldb import run_fig7, run_fig10
from repro.experiments.fig9_graphchi import run_fig9, run_fig11
from repro.errors import ConfigurationError


class TestCommonTable:
    def test_series_and_lookup(self):
        table = ExperimentTable("t", "x", "y")
        series = table.new_series("a")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert table.get("a").y_at(2) == 20.0
        assert series.mean() == 15.0

    def test_missing_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentTable("t", "x", "y").get("nope")

    def test_missing_point_rejected(self):
        series = Series("s", [(1, 1.0)])
        with pytest.raises(ConfigurationError):
            series.y_at(99)

    def test_mean_ratio(self):
        table = ExperimentTable("t", "x", "y")
        top = table.new_series("top")
        bottom = table.new_series("bottom")
        for x in (1, 2):
            top.add(x, 4.0 * x)
            bottom.add(x, 2.0 * x)
        assert table.mean_ratio("top", "bottom") == pytest.approx(2.0)

    def test_format_renders_all_series(self):
        table = ExperimentTable("Title", "x", "y")
        table.new_series("a").add(1, 0.5)
        text = table.format()
        assert "Title" in text and "a" in text and "0.5" in text

    def test_orders_of_magnitude(self):
        assert orders_of_magnitude(1000) == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            orders_of_magnitude(0)


class TestFig3Shape:
    def test_proxy_orders_of_magnitude(self):
        table = run_fig3(counts=(2_000, 4_000))
        out_in = table.mean_ratio("proxy-out->in", "concrete-out")
        in_out = table.mean_ratio("proxy-in->out", "concrete-in")
        assert 3.0 <= math.log10(out_in) <= 4.7
        assert 3.0 <= math.log10(in_out) <= 4.5
        assert in_out < out_in

    def test_latency_scales_linearly(self):
        table = run_fig3(counts=(2_000, 4_000))
        series = table.get("proxy-out->in")
        assert series.y_at(4_000) == pytest.approx(2 * series.y_at(2_000), rel=0.05)


class TestFig4Shape:
    def test_rmi_orders_and_serialization_overhead(self):
        table = run_fig4a(counts=(2_000,), payload_size=300)
        assert math.log10(table.mean_ratio("proxy-out->in", "concrete-out")) >= 3.0
        assert table.mean_ratio("proxy-in->out+s", "proxy-in->out") > 1.0

    def test_fig4b_asymmetry(self):
        table = run_fig4b(list_sizes=(30_000,), invocations=300)
        in_ratio = table.get("proxy-in->out+s").y_at(30_000) / table.get(
            "proxy-in->out"
        ).y_at(30_000)
        out_ratio = table.get("proxy-out->in+s").y_at(30_000) / table.get(
            "proxy-out->in"
        ).y_at(30_000)
        assert 5.0 <= in_ratio <= 25.0
        assert 1.8 <= out_ratio <= 8.0
        assert in_ratio > out_ratio


class TestFig5Shape:
    def test_enclave_gc_order_of_magnitude(self):
        table = run_fig5a(counts=(60_000,))
        ratio = table.mean_ratio("concrete-in: GC in", "concrete-out: GC out")
        assert 7.0 <= ratio <= 13.0

    def test_consistency_timeline(self):
        table = run_fig5b(duration_s=10.0, create_phase_s=5.0, batch=200)
        proxies = table.get("proxy-objs-out").ys()
        mirrors = table.get("mirror-objs-in").ys()
        assert proxies == mirrors
        assert max(proxies) > proxies[-1]


class TestFig6Shape:
    def test_monotone_improvement(self):
        table = run_fig6(percentages=(0, 50, 100), n_classes=12)
        for name in ("cpu intensive", "io intensive"):
            ys = table.get(name).ys()
            assert ys[0] > ys[1] > ys[2]
            assert ys[0] / ys[2] >= 3.0


class TestFig7Shape:
    def test_partitioning_gains(self):
        table = run_fig7(key_counts=(6_000,))
        assert 1.8 <= table.mean_ratio("NoPart", "Part(RTWU)") <= 3.5
        assert 0.9 <= table.mean_ratio("NoPart", "Part(RUWT)") <= 1.35
        assert table.get("NoSGX").mean() < table.get("Part(RTWU)").mean()

    def test_fig10_adds_scone(self):
        table = run_fig10(key_counts=(6_000,))
        assert table.get("SCONE+JVM").mean() > table.get("NoPart").mean()


class TestFig9Shape:
    def test_partitioned_sharding_back_to_native(self):
        results = run_fig9(graphs=((4_000, 16_000),), shard_counts=(2,), iterations=3)
        table = results[(4_000, 16_000)]
        assert table.mean_ratio("NoPart-NI", "Part-NI") > 1.05
        assert table.mean_ratio("Part-NI:sharding", "NoSGX-NI:sharding") < 1.2

    def test_fig11_scone_ordering(self):
        table = run_fig11(n_vertices=4_000, n_edges=16_000, shard_counts=(2,), iterations=3)
        assert table.get("SCONE+JVM").mean() > table.get("NoPart-NI").mean()
        assert table.get("NoPart-NI").mean() > table.get("Part-NI").mean()


class TestFig12AndTable1:
    def test_table1_bands(self):
        ratios = run_table1()
        for kernel, paper in PAPER_TABLE1.items():
            assert paper / 1.5 <= ratios[kernel] <= paper * 1.5, kernel
        assert ratios["monte_carlo"] < 1.0

    def test_fig12_sgx_always_costs(self):
        table = run_fig12(kernels=("fft", "monte_carlo"))
        assert table.get("SGX-NI").y_at(0) > table.get("NoSGX-NI").y_at(0)


class TestAblations:
    def test_switchless_gain(self):
        table = run_switchless_ablation(invocation_counts=(1_000,))
        assert table.mean_ratio("hardware transitions", "switchless") > 10

    def test_hash_strategies_close(self):
        table = run_hash_ablation(n_objects=1_000)
        identity = table.get("identity-hash").mean()
        md5 = table.get("md5-hash").mean()
        assert identity < md5 < identity * 1.05

    def test_mee_sensitivity_monotone(self):
        table = run_mee_sensitivity(multipliers=(2.0, 8.0), n_classes=8)
        ys = table.get("enclave slowdown").ys()
        assert ys[0] < ys[1]

    def test_gc_period_tradeoff(self):
        table = run_gc_period_ablation(periods_s=(0.5, 2.0), batches=6, batch_size=100)
        retention = table.get("peak stale mirrors").ys()
        scans = table.get("helper scans").ys()
        assert retention[0] <= retention[1]
        assert scans[0] >= scans[1]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_fig5a_small(self, capsys):
        assert cli_main(["fig5a", "--scale", "small"]) == 0
        assert "GC time" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])
