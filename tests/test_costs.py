"""Unit tests for the cost substrate: clock, ledger, machine, platform."""

import pytest

from repro.costs import (
    CostLedger,
    CostModel,
    Platform,
    VirtualClock,
    XEON_E3_1270,
    fresh_platform,
)
from repro.costs.machine import MachineSpec
from repro.errors import ConfigurationError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance_ns(10.0)
        clock.advance_ns(5.5)
        assert clock.now_ns == pytest.approx(15.5)

    def test_now_s_converts(self):
        clock = VirtualClock()
        clock.advance_ns(2.5e9)
        assert clock.now_s == pytest.approx(2.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock().advance_ns(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(start_ns=-5)

    def test_measure_span(self):
        clock = VirtualClock()
        span = clock.measure()
        clock.advance_ns(100.0)
        assert span.elapsed_ns() == pytest.approx(100.0)
        assert span.elapsed_s() == pytest.approx(1e-7)


class TestMachineSpec:
    def test_paper_testbed_values(self):
        spec = XEON_E3_1270
        assert spec.cpu_ghz == 3.80
        assert spec.epc_total_bytes == 128 * 1024 * 1024
        assert spec.epc_usable_bytes < spec.epc_total_bytes

    def test_cycles_ns_round_trip(self):
        spec = XEON_E3_1270
        assert spec.ns_to_cycles(spec.cycles_to_ns(1000.0)) == pytest.approx(1000.0)

    def test_one_cycle_duration(self):
        # 3.8 GHz -> one cycle is ~0.263 ns.
        assert XEON_E3_1270.cycles_to_ns(1.0) == pytest.approx(1 / 3.8)

    def test_pages_ceiling(self):
        assert XEON_E3_1270.pages(1) == 1
        assert XEON_E3_1270.pages(4096) == 1
        assert XEON_E3_1270.pages(4097) == 2
        assert XEON_E3_1270.pages(0) == 0

    def test_pages_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            XEON_E3_1270.pages(-1)

    def test_invalid_epc_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(
                name="bad",
                cpu_ghz=1.0,
                cores=1,
                l1_bytes=1,
                l2_bytes=1,
                l3_bytes=1,
                dram_bytes=1,
                epc_total_bytes=10,
                epc_usable_bytes=20,
            )

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(
                name="bad",
                cpu_ghz=1.0,
                cores=1,
                l1_bytes=1,
                l2_bytes=1,
                l3_bytes=1,
                dram_bytes=1,
                epc_total_bytes=100,
                epc_usable_bytes=50,
                page_bytes=1000,
            )


class TestCostLedger:
    def test_charge_and_total(self):
        ledger = CostLedger()
        ledger.charge("a.b", 10.0)
        ledger.charge("a.b", 5.0)
        ledger.charge("a.c", 1.0)
        assert ledger.total_ns("a") == pytest.approx(16.0)
        assert ledger.total_ns("a.b") == pytest.approx(15.0)
        assert ledger.count("a") == 3

    def test_prefix_does_not_match_partial_segment(self):
        ledger = CostLedger()
        ledger.charge("transition.ocall", 1.0)
        ledger.charge("transition.ocallish", 2.0)
        assert ledger.total_ns("transition.ocall") == pytest.approx(1.0)

    def test_empty_prefix_matches_all(self):
        ledger = CostLedger()
        ledger.charge("x", 1.0)
        ledger.charge("y", 2.0)
        assert ledger.total_ns() == pytest.approx(3.0)

    def test_snapshot_and_diff(self):
        ledger = CostLedger()
        ledger.charge("x", 1.0)
        snap = ledger.snapshot()
        ledger.charge("x", 2.0)
        ledger.charge("y", 3.0)
        delta = ledger.diff_since(snap)
        assert delta["x"] == (1, pytest.approx(2.0))
        assert delta["y"] == (1, pytest.approx(3.0))

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 4.0)
        a.merge(b)
        assert a.total_ns("x") == pytest.approx(3.0)
        assert a.total_ns("y") == pytest.approx(4.0)

    def test_format_table_contains_categories(self):
        ledger = CostLedger()
        ledger.charge("alpha", 5.0)
        table = ledger.format_table()
        assert "alpha" in table


class TestPlatform:
    def test_charge_cycles_advances_clock(self):
        platform = fresh_platform()
        ns = platform.charge_cycles("work", 3800.0)  # 3800 cycles @ 3.8GHz = 1us
        assert ns == pytest.approx(1000.0)
        assert platform.clock.now_ns == pytest.approx(1000.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            fresh_platform().charge_ns("work", -1.0)

    def test_ledger_records_categories(self):
        platform = fresh_platform()
        platform.charge_ns("a", 1.0)
        platform.charge_ns("b", 2.0)
        assert set(platform.ledger.categories()) == {"a", "b"}


class TestCostModel:
    def test_default_is_valid(self):
        model = CostModel()
        assert model.transitions.ecall_cycles == pytest.approx(13_100.0)

    def test_mee_cannot_speed_up(self):
        from dataclasses import replace

        from repro.costs.model import MemoryCosts

        with pytest.raises(ConfigurationError):
            CostModel(memory=MemoryCosts(mee_multiplier=0.5))

    def test_enclave_gc_cannot_be_faster(self):
        from repro.costs.model import GcCosts

        with pytest.raises(ConfigurationError):
            CostModel(gc=GcCosts(enclave_multiplier=0.9))
