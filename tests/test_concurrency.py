"""Deterministic multi-session concurrency (repro.concurrency).

Covers the session scheduler (min-timestamp order, think time, seeded
replay, error policy, timer-wheel pumping, zero platform cost), the
contended switchless worker pool (virtual-time leases, fallback
pricing, attach/detach), enclave sharding (hash routing, per-shard
crossings, EPC partitioning with owner-LRU eviction, shard loss and
recovery via the fault injector) and the scaling ablation's invariants
(replay determinism and the 1-session/1-shard pricing identity).
"""

from __future__ import annotations

import pytest

from repro.apps.bank import Account, BANK_CLASSES
from repro.batching import BatchPolicy, attach_batching
from repro.concurrency import (
    ContendedWorkerPool,
    SessionScheduler,
    ShardedEnclaveGroup,
    attach_worker_pool,
    detach_worker_pool,
)
from repro.core import Partitioner, PartitionOptions
from repro.core.multi_isolate import DEFAULT_ISOLATE
from repro.costs.platform import fresh_platform
from repro.errors import ConfigurationError, EpcError, RmiError
from repro.experiments import scaling_exp
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    RetryPolicy,
    attach_recovery,
)
from repro.obs.artifacts import validate_artifact
from repro.runtime.scheduler import VirtualScheduler
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EpcPageCache
from tests.helpers import assert_ledgers_identical, session_ledger


def _bank_app(name: str):
    return Partitioner(PartitionOptions(name=name)).partition(
        list(BANK_CLASSES)
    )


def _charging_body(platform, charges, think_ns=0.0):
    """A session that charges a fixed list of cycle amounts."""

    def body():
        for cycles in charges:
            platform.charge_cycles("test.work", cycles)
            yield think_ns
        return len(charges)

    return body()


# ---------------------------------------------------------------------------
# SessionScheduler
# ---------------------------------------------------------------------------


class TestSessionScheduler:
    def test_runs_lowest_timestamp_first(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=3)
        # 'slow' charges 10x per step: after its first step it is far
        # ahead in local time, so 'fast' gets every next turn until it
        # catches up.
        sched.spawn("slow", _charging_body(platform, [10_000] * 2))
        sched.spawn("fast", _charging_body(platform, [1_000] * 8))
        sched.run()
        order = [record.session for record in sched._trace]
        first_slow = order.index("slow")
        second_slow = order.index("slow", first_slow + 1)
        # Between the two slow steps, fast runs many times.
        assert second_slow - first_slow > 5

    def test_scheduler_itself_charges_nothing(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)

        def idle():
            yield 100.0
            yield None
            return "done"

        sched.spawn("idle", idle())
        results = sched.run()
        assert results == {"idle": "done"}
        assert dict(platform.snapshot()) == {}
        assert platform.now_s == 0.0

    def test_think_time_advances_local_clock_only(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("thinker", _charging_body(platform, [1_000], think_ns=5_000.0))
        sched.run()
        session = sched.sessions[0]
        assert session.think_ns == 5_000.0
        assert session.busy_ns > 0
        assert session.local_ns == session.busy_ns + session.think_ns
        # The global clock only saw the charged work.
        assert platform.clock.now_ns == session.busy_ns

    def test_same_seed_replays_byte_identically(self):
        def run_once():
            platform = fresh_platform()
            sched = SessionScheduler(platform, seed=42)
            for i in range(4):
                sched.spawn(
                    f"s{i}", _charging_body(platform, [500 + 10 * i] * 5)
                )
            sched.run()
            return sched.trace_digest(), dict(platform.snapshot())

        digest_a, ledger_a = run_once()
        digest_b, ledger_b = run_once()
        assert digest_a == digest_b
        assert ledger_a == ledger_b

    def test_start_ns_staggers_arrival(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("late", _charging_body(platform, [100] * 3), start_ns=1e9)
        sched.spawn("early", _charging_body(platform, [100] * 3))
        sched.run()
        order = [record.session for record in sched._trace]
        assert order[:3] == ["early", "early", "early"]

    def test_spawn_validation(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("dup", _charging_body(platform, [1]))
        with pytest.raises(ConfigurationError):
            sched.spawn("dup", _charging_body(platform, [1]))
        with pytest.raises(ConfigurationError):
            sched.spawn("past", _charging_body(platform, [1]), start_ns=-1.0)
        with pytest.raises(ConfigurationError):
            SessionScheduler(platform, on_error="ignore")

    def test_negative_think_time_rejected(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)

        def bad():
            yield -5.0

        sched.spawn("bad", bad())
        with pytest.raises(ConfigurationError):
            sched.run()

    def test_error_policy_record_keeps_other_sessions_running(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0, on_error="record")

        def crashing():
            yield 0.0
            raise ValueError("boom")

        sched.spawn("crash", crashing())
        sched.spawn("steady", _charging_body(platform, [100] * 4))
        results = sched.run()
        assert results["steady"] == 4
        assert isinstance(sched.errors()["crash"], ValueError)

    def test_error_policy_raise_propagates(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)

        def crashing():
            raise ValueError("boom")
            yield 0.0

        sched.spawn("crash", crashing())
        with pytest.raises(ValueError):
            sched.run()

    def test_max_steps_bounds_the_run(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("a", _charging_body(platform, [100] * 10))
        sched.run(max_steps=3)
        assert sched.active_count == 1
        assert len(sched.trace()) == 3

    def test_sessions_active_gauge(self):
        platform = fresh_platform()
        obs = platform.enable_observability()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("a", _charging_body(platform, [100]))
        sched.spawn("b", _charging_body(platform, [100] * 3))
        assert obs.metrics.gauge("concurrency.sessions_active").value == 2
        sched.run()
        assert obs.metrics.gauge("concurrency.sessions_active").value == 0
        assert obs.metrics.counter("concurrency.steps").value == 6

    def test_pumps_timer_wheel_between_segments(self):
        platform = fresh_platform()
        wheel = VirtualScheduler(platform)
        fired = []
        wheel.every(1e-6, lambda: fired.append(platform.clock.now_ns), name="tick")
        sched = SessionScheduler(platform, seed=0, wheel=wheel)
        sched.spawn("worker", _charging_body(platform, [3_000] * 4))
        sched.run()
        assert fired  # periodic task fired between session segments

    def test_makespan_is_max_local_time(self):
        platform = fresh_platform()
        sched = SessionScheduler(platform, seed=0)
        sched.spawn("a", _charging_body(platform, [1_000], think_ns=9_000.0))
        sched.spawn("b", _charging_body(platform, [2_000]))
        sched.run()
        by_name = {s.name: s for s in sched.sessions}
        assert sched.makespan_ns == max(
            by_name["a"].local_ns, by_name["b"].local_ns
        )
        assert sched.total_busy_ns == sum(s.busy_ns for s in sched.sessions)


# ---------------------------------------------------------------------------
# Contended worker pool
# ---------------------------------------------------------------------------


class TestContendedWorkerPool:
    def test_lease_algebra(self):
        pool = ContendedWorkerPool(trusted_workers=2, untrusted_workers=1)
        assert pool.try_acquire("trusted", 0.0) == 0
        pool.occupy("trusted", 0, 100.0)
        assert pool.try_acquire("trusted", 50.0) == 1
        pool.occupy("trusted", 1, 80.0)
        assert pool.try_acquire("trusted", 50.0) is None
        # A lease expiring exactly now frees the worker.
        assert pool.try_acquire("trusted", 100.0) == 0
        assert pool.occupancy("trusted", 90.0) == 1
        assert pool.total_occupancy(90.0) == 1

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ContendedWorkerPool(trusted_workers=-1)

    def test_single_session_never_contends(self):
        result = scaling_exp.run_scale("bank", sessions=1, shards=1, workers=1)
        assert result.pool_stats is not None
        assert result.pool_stats["fallbacks"] == {"trusted": 0, "untrusted": 0}
        assert result.pool_stats["served"]["trusted"] > 0

    def test_contention_grows_with_sessions(self):
        shares = [
            scaling_exp.run_scale(
                "securekeeper", sessions=k, shards=1, workers=1
            ).fallback_share
            for k in (1, 4, 8)
        ]
        assert shares[0] == 0.0
        assert shares[0] < shares[1] < shares[2]
        assert shares[2] > 0.5  # fallbacks dominate: the knee

    def test_fallback_prices_hardware_path(self):
        # Under heavy contention both pricing categories appear: cheap
        # switchless crossings for served calls, hardware transitions
        # for fallbacks.
        result = scaling_exp.run_scale("bank", sessions=6, shards=1, workers=1)
        switchless = [
            key for key in result.ledger if key.startswith("transition.switchless.")
        ]
        hardware = [
            key
            for key in result.ledger
            if key.startswith("transition.ecall.")
            or key.startswith("transition.ocall.")
        ]
        assert switchless and hardware
        assert result.pool_stats["fallback_share"] > 0

    def test_attach_detach_round_trip(self):
        app = _bank_app("conc_attach")
        with app.start() as session:
            base = session.transitions
            pool = ContendedWorkerPool(1, 1)
            layer = attach_worker_pool(session, pool)
            assert session.transitions is layer
            assert session.runtime.transitions is layer
            assert layer.stats is base.stats  # shared accounting
            account = Account("a", 10)
            account.update_balance(5)
            assert pool.stats.total_served > 0
            detach_worker_pool(session)
            assert session.transitions is base
            with pytest.raises(ConfigurationError):
                detach_worker_pool(session)


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


class TestSharding:
    def test_hash_routing_is_stable_and_spreads(self):
        app = _bank_app("conc_route")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 4)
            keys = [f"k{i}" for i in range(64)]
            homes = {key: group.shard_for(key) for key in keys}
            assert homes == {key: group.shard_for(key) for key in keys}
            assert len(set(homes.values())) == 4  # every shard gets keys

    def test_single_shard_group_spawns_nothing(self):
        app = _bank_app("conc_one")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1)
            assert group.shard_names == (DEFAULT_ISOLATE,)
            assert group.shard_for("anything") == DEFAULT_ISOLATE

    def test_validation(self):
        app = _bank_app("conc_valid")
        with app.start() as session:
            with pytest.raises(ConfigurationError):
                ShardedEnclaveGroup(session, 0)
            with pytest.raises(ConfigurationError):
                ShardedEnclaveGroup(session, 2, touch_bytes=4096)  # no driver
            with pytest.raises(ConfigurationError):
                ShardedEnclaveGroup(session, 2, epc_budget_pages=16)

    def test_per_shard_crossings_counted(self):
        app = _bank_app("conc_cross")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            accounts = {
                key: group.create_pinned(key, lambda k=key: Account(k, 100))
                for key in (f"k{i}" for i in range(8))
            }
            for account in accounts.values():
                account.update_balance(1)
            counts = group.crossing_counts()
            assert sum(counts.values()) >= len(accounts)
            assert all(counts[group.shard_for(k)] > 0 for k in accounts)

    def test_lose_shard_drops_mirrors_and_restores(self):
        app = _bank_app("conc_loss")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            lost_shard = group.shard_names[1]
            registry = {}

            def make(key):
                registry[key] = group.create_pinned(
                    key, lambda k=key: Account(k, 100)
                )

            keys = [f"k{i}" for i in range(12)]
            on_lost = [k for k in keys if group.shard_for(k) == lost_shard]
            on_default = [k for k in keys if group.shard_for(k) != lost_shard]
            assert on_lost and on_default
            for key in keys:
                make(key)
                group.register_restore(key, lambda k=key: make(k))
            for key in keys:
                registry[key].update_balance(7)
            info = group.lose_shard(lost_shard)
            assert info["mirrors_dropped"] == len(on_lost)
            assert info["restored"] == len(on_lost)
            # Survivors kept their state; restored objects restart.
            assert registry[on_default[0]].get_balance() == 107
            assert registry[on_lost[0]].get_balance() == 100
            ledger = dict(session.platform.snapshot())
            assert f"shard.reload.{lost_shard}" in ledger

    def test_lose_shard_drains_open_batch_first(self):
        # Regression: a coalesced batch open when a shard dies must
        # land against live mirrors *before* teardown — flushing later
        # would dangle into the registry of a dead isolate.
        app = _bank_app("conc_midbatch")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            lost = group.shard_names[1]
            keys = [f"k{i}" for i in range(20)]
            on_lost = next(k for k in keys if group.shard_for(k) == lost)
            on_root = next(k for k in keys if group.shard_for(k) != lost)
            registry = {
                k: group.create_pinned(k, lambda k=k: Account(k, 0))
                for k in (on_lost, on_root)
            }

            def remake():
                registry[on_lost] = group.create_pinned(
                    on_lost, lambda: Account(on_lost, 0)
                )

            group.register_restore(on_lost, remake)
            coalescer = attach_batching(
                session,
                BatchPolicy(
                    routines=("relay_Account_update_balance",),
                    max_batch=64,
                    window_ns=1e15,
                ),
            )
            for _ in range(3):
                registry[on_lost].update_balance(1)
            for _ in range(2):
                registry[on_root].update_balance(1)
            assert coalescer.pending == 5
            group.lose_shard(lost)
            assert coalescer.pending == 0
            assert coalescer.stats.flushes.get("barrier:shard-loss") == 1
            coalescer.detach()
            # The queued updates landed pre-teardown; the survivor
            # shows them and the restored object restarts clean.
            assert registry[on_root].get_balance() == 2
            assert registry[on_lost].get_balance() == 0

    def test_mid_batch_crash_during_loss_drain_replays_idempotently(self):
        # The drain itself can crash mid-flush; with the batch routine
        # declared idempotent the coordinator recovers the enclave and
        # replays the whole batch instead of refusing it.
        app = _bank_app("conc_midbatch_chaos")
        with app.start() as session:
            coordinator = attach_recovery(
                session,
                policy=RetryPolicy(
                    max_attempts=4, idempotent_patterns=("batch_*",)
                ),
            )
            group = ShardedEnclaveGroup(session, 2)
            lost = group.shard_names[1]
            keys = [f"k{i}" for i in range(20)]
            on_lost = next(k for k in keys if group.shard_for(k) == lost)
            on_root = next(k for k in keys if group.shard_for(k) != lost)
            registry = {
                k: group.create_pinned(k, lambda k=k: Account(k, 0))
                for k in (on_lost, on_root)
            }
            group.register_restore(
                on_lost,
                lambda: registry.__setitem__(
                    on_lost,
                    group.create_pinned(on_lost, lambda: Account(on_lost, 0)),
                ),
            )
            coalescer = attach_batching(
                session,
                BatchPolicy(
                    routines=("relay_Account_update_balance",),
                    max_batch=64,
                    window_ns=1e15,
                ),
            )
            for _ in range(3):
                registry[on_lost].update_balance(1)
            for _ in range(2):
                registry[on_root].update_balance(1)
            session.platform.enable_fault_injection(
                FaultInjector(
                    seed=2,
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            routine="batch_Account_update_balance",
                            at_call=1,
                            phase="mid",
                            max_fires=1,
                        )
                    ],
                )
            )
            group.lose_shard(lost)
            session.platform.disable_fault_injection()
            assert coalescer.pending == 0
            assert coordinator.stats.recoveries >= 1
            assert coordinator.stats.calls_refused == 0
            coalescer.detach()
            # Replay-by-contract: the batch landed (twice — at-most-once
            # waived by the idempotency declaration), nothing dangled.
            assert registry[on_root].get_balance() in (2, 4)
            assert registry[on_lost].get_balance() == 0

    def test_stale_proxy_to_lost_shard_raises(self):
        app = _bank_app("conc_stale")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            lost_shard = group.shard_names[1]
            key = next(
                f"k{i}" for i in range(100)
                if group.shard_for(f"k{i}") == lost_shard
            )
            account = group.create_pinned(key, lambda: Account(key, 100))
            group.lose_shard(lost_shard)
            with pytest.raises(RmiError):
                account.get_balance()

    def test_root_shard_cannot_be_lost(self):
        app = _bank_app("conc_root")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            with pytest.raises(ConfigurationError):
                group.lose_shard(DEFAULT_ISOLATE)
            with pytest.raises(ConfigurationError):
                group.lose_shard("no-such-shard")

    def test_poll_faults_follows_seeded_plan(self):
        app = _bank_app("conc_chaos")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 2)
            session.platform.enable_fault_injection(
                FaultInjector(
                    seed=1,
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            call_kind="shard",
                            routine="shard.shard1",
                            at_call=2,
                            max_fires=1,
                        )
                    ],
                )
            )
            assert group.poll_faults() is None
            info = group.poll_faults()
            assert info is not None and info["shard"] == "shard1"
            assert group.poll_faults() is None  # max_fires=1
            assert group.losses == 1
            session.platform.disable_fault_injection()


# ---------------------------------------------------------------------------
# EPC partitioning
# ---------------------------------------------------------------------------


class TestEpcPartitioning:
    def test_partition_splits_budget_evenly(self):
        cache = EpcPageCache(capacity_bytes=64 * 4096)
        quotas = cache.partition([1, 2, 3], total_pages=30)
        assert quotas == {1: 10, 2: 10, 3: 10}
        assert cache.partitioned
        assert cache.quota_of(1) == 10

    def test_partition_validation(self):
        cache = EpcPageCache(capacity_bytes=8 * 4096)
        with pytest.raises(EpcError):
            cache.partition([])
        with pytest.raises(EpcError):
            cache.partition(list(range(20)))  # share < 1 page
        with pytest.raises(EpcError):
            cache.set_quota(1, 0)

    def test_owner_at_quota_evicts_own_lru_not_neighbours(self):
        cache = EpcPageCache(capacity_bytes=100 * 4096)
        cache.partition([1, 2], total_pages=8)  # 4 pages each
        for page in range(4):
            cache.touch_range(1, page * 4096, 1)
            cache.touch_range(2, page * 4096, 1)
        assert cache.stats.evictions == 0
        cache.touch_range(1, 4 * 4096, 1)  # owner 1 over quota
        assert cache.stats.evictions == 1
        # Owner 2 keeps all its pages resident (no cross-owner theft).
        assert cache.touch_range(2, 0, 4 * 4096) == 0
        # Owner 1's LRU page (page 0) was the victim.
        assert cache.touch_range(1, 0, 1) == 1

    def test_unpartitioned_cache_behaves_as_before(self):
        plain = EpcPageCache(capacity_bytes=4 * 4096)
        for page in range(6):
            plain.touch_range(7, page * 4096, 1)
        assert plain.stats.faults == 6
        assert plain.stats.evictions == 2  # global LRU still applies

    def test_driver_partition_emits_per_owner_gauges(self):
        platform = fresh_platform()
        obs = platform.enable_observability()
        driver = SgxDriver(platform)
        driver.partition_epc([-10, -11], total_pages=8)
        driver.access(-10, 0, 2 * 4096)
        assert obs.metrics.gauge("epc.owner.-10.resident_pages").value == 2
        assert obs.metrics.gauge("epc.owner.-11.resident_pages").value == 0

    def test_shard_group_epc_pressure_prices_faults(self):
        result = scaling_exp.run_scale(
            "bank",
            sessions=2,
            shards=2,
            rounds=6,
            epc_budget_pages=8,
            touch_bytes=4096,
            working_set_bytes=8 * 4096,
        )
        assert result.epc_faults > 0
        assert any(key == "sgx.driver.page_fault" for key in result.ledger)


# ---------------------------------------------------------------------------
# Scaling ablation invariants
# ---------------------------------------------------------------------------


class TestScalingExperiment:
    def test_single_session_single_shard_prices_like_sequential(self):
        # The acceptance invariant: concurrency machinery present but
        # idle must not change a single priced nanosecond.
        assert scaling_exp.check_pricing_identity("bank")
        assert scaling_exp.check_pricing_identity("securekeeper")

    def test_pricing_identity_via_shared_helper(self):
        ledgers = {}
        for mode in ("sequential", "concurrent"):
            app = _bank_app("conc_price")
            with app.start() as session:
                if mode == "concurrent":
                    group = ShardedEnclaveGroup(session, 1)
                    accounts = [
                        group.create_pinned(f"a{i}", lambda i=i: Account(f"a{i}", 10))
                        for i in range(3)
                    ]
                else:
                    accounts = [Account(f"a{i}", 10) for i in range(3)]
                sched = SessionScheduler(session.platform, seed=5)

                def run_all():
                    if mode == "concurrent":
                        def body():
                            for account in accounts:
                                account.update_balance(5)
                                yield 0.0
                            return sum(a.get_balance() for a in accounts)

                        sched.spawn("only", body())
                        return sched.run()["only"]
                    return [
                        a.update_balance(5) for a in accounts
                    ] and sum(a.get_balance() for a in accounts)

                assert run_all() == 45
                ledgers[mode] = session_ledger(session)
        assert_ledgers_identical(ledgers["concurrent"], ledgers["sequential"])

    def test_epc_cliff_appears_when_shards_overcommit(self):
        rates = [
            scaling_exp.run_scale(
                "bank",
                sessions=2,
                shards=shards,
                rounds=6,
                epc_budget_pages=48,
                touch_bytes=4096,
                working_set_bytes=20 * 4096,
            ).epc_fault_rate
            for shards in (1, 4)
        ]
        assert rates[1] > 2 * rates[0]  # overcommit => the cliff

    def test_shard_loss_run_keeps_serving(self):
        loss = scaling_exp.run_shard_loss("bank", sessions=2, shards=2)
        assert loss.losses == 1
        assert loss.ok_ops > 0
        assert loss.restored_objects > 0
        assert loss.availability > 0.9
        assert loss.lost_updates >= 0

    def test_small_report_is_deterministic_and_valid(self):
        kwargs = dict(
            session_counts=(1, 2),
            shard_counts=(1, 2),
            rounds=4,
            entries=4,
        )
        report_a = scaling_exp.run_scaling(**kwargs)
        report_b = scaling_exp.run_scaling(**kwargs)
        assert report_a.fingerprint() == report_b.fingerprint()
        assert report_a.identical == {"bank": True, "securekeeper": True}
        validate_artifact(report_a.to_artifact())
        assert "sessions" in report_a.format()
