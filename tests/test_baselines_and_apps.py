"""Tests for the baseline runners, SPECjvm kernels, the Fig. 6 program
generator, the shim libc and serialization."""

import os

import pytest

from repro.apps.generator import generate_app
from repro.apps.specjvm import KERNELS, run_kernel
from repro.apps.specjvm.kernels import KERNEL_ORDER, charge_allocation_gc
from repro.baselines import (
    host_jvm_session,
    native_session,
    scone_jvm_session,
)
from repro.core import Partitioner, PartitionOptions, SerializationCodec
from repro.core.annotations import ambient_context, current_context
from repro.core.serialization import round_trip
from repro.core.shim import ShimLibc
from repro.costs import fresh_platform
from repro.errors import (
    AnnotationError,
    ConfigurationError,
    SerializationError,
    ShimError,
)
from repro.graal.jtypes import TrustLevel
from repro.runtime.context import ExecutionContext, Location, RuntimeKind


class TestBaselines:
    def test_native_session_is_host_native_image(self):
        with native_session() as session:
            ctx = current_context()
            assert ctx.location is Location.HOST
            assert ctx.runtime is RuntimeKind.NATIVE_IMAGE

    def test_host_jvm_charges_boot(self):
        with host_jvm_session() as session:
            assert session.platform.ledger.total_ns("jvm.startup") > 0
            assert session.platform.ledger.total_ns("jvm.class_loading") > 0

    def test_scone_session_is_enclave_jvm(self):
        with scone_jvm_session() as session:
            ctx = current_context()
            assert ctx.location is Location.ENCLAVE
            assert ctx.runtime is RuntimeKind.JVM

    def test_scone_boot_slower_than_host_jvm_boot(self):
        with host_jvm_session() as host:
            host_boot = host.platform.now_s
        with scone_jvm_session() as scone:
            scone_boot = scone.platform.now_s
        assert scone_boot > host_boot * 1.2

    def test_scone_syscalls_avoid_hardware_ocalls(self):
        with scone_jvm_session() as session:
            ShimLibc(session.ctx).fopen(os.devnull, "wb").close()
            assert session.platform.ledger.count("transition.ocall") == 0
            assert session.platform.ledger.count("scone.syscall") > 0

    def test_sessions_deactivate_on_exit(self):
        with native_session():
            assert current_context() is not None
        assert current_context() is None


class TestSpecjvmKernels:
    def test_all_kernels_run_and_checksum(self):
        with native_session():
            for name in KERNEL_ORDER:
                checksum = run_kernel(name)
                assert checksum == pytest.approx(KERNELS[name].compute())

    def test_unknown_kernel_rejected(self):
        with native_session():
            with pytest.raises(ConfigurationError):
                run_kernel("quantum_sort")

    def test_kernel_requires_session(self):
        with pytest.raises(AnnotationError):
            run_kernel("fft")

    def test_monte_carlo_estimates_pi(self):
        assert KERNELS["monte_carlo"].compute() == pytest.approx(3.14, abs=0.1)

    def test_fft_round_trip_error_tiny(self):
        assert KERNELS["fft"].compute() < 1e-9

    def test_ni_gc_pricier_than_jvm_gc(self):
        p_ni, p_jvm = fresh_platform(), fresh_platform()
        ni_ctx = ExecutionContext(p_ni, Location.HOST, RuntimeKind.NATIVE_IMAGE)
        jvm_ctx = ExecutionContext(p_jvm, Location.HOST, RuntimeKind.JVM)
        assert charge_allocation_gc(ni_ctx, 1e9) > 5 * charge_allocation_gc(jvm_ctx, 1e9)

    def test_enclave_gc_pricier_than_host_gc(self):
        p_in, p_out = fresh_platform(), fresh_platform()
        in_ctx = ExecutionContext(p_in, Location.ENCLAVE)
        out_ctx = ExecutionContext(p_out, Location.HOST)
        assert charge_allocation_gc(in_ctx, 1e8) > charge_allocation_gc(out_ctx, 1e8)

    def test_negative_alloc_rejected(self):
        ctx = ExecutionContext(fresh_platform(), Location.HOST)
        with pytest.raises(ConfigurationError):
            charge_allocation_gc(ctx, -1)


class TestGenerator:
    def test_trust_split(self):
        from repro.core import trust_of

        app = generate_app(n_classes=10, pct_untrusted=30, workload="cpu", tag="t1")
        trusts = [trust_of(cls) for cls in app.classes]
        assert trusts.count(TrustLevel.UNTRUSTED) == 3
        assert trusts.count(TrustLevel.TRUSTED) == 7

    def test_drive_runs_every_class(self, tmp_path):
        app = generate_app(n_classes=5, pct_untrusted=100, workload="io", tag="t2")
        with native_session():
            total = app.drive(str(tmp_path))
        assert total == 5 * 4096.0
        assert len(list(tmp_path.iterdir())) == 5

    def test_cpu_classes_return_fft_checksum(self, tmp_path):
        app = generate_app(n_classes=2, pct_untrusted=100, workload="cpu", tag="t3")
        with native_session():
            assert app.drive(str(tmp_path)) > 0

    def test_partitioned_generated_app(self, tmp_path):
        app = generate_app(n_classes=6, pct_untrusted=50, workload="io", tag="t4")
        partitioned = Partitioner(PartitionOptions(name="gen_t4")).partition(
            list(app.classes)
        )
        with partitioned.start() as session:
            app.drive(str(tmp_path))
            # Three trusted classes -> ecall relays happened.
            assert session.transition_stats.ecalls >= 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_app(workload="gpu")
        with pytest.raises(ConfigurationError):
            generate_app(pct_untrusted=120)
        with pytest.raises(ConfigurationError):
            generate_app(n_classes=0)


class TestShimLibc:
    def test_real_file_round_trip(self, tmp_path):
        path = str(tmp_path / "data.bin")
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            with libc.fopen(path, "wb") as handle:
                handle.write(b"hello ")
                handle.write(b"world")
            with libc.fopen(path, "rb") as handle:
                assert handle.read() == b"hello world"
            assert libc.stats.writes == 2
            assert libc.stats.bytes_written == 11

    def test_enclave_writes_are_ocalls(self, tmp_path):
        path = str(tmp_path / "data.bin")
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.ENCLAVE)
        libc = ShimLibc(ctx)
        with libc.fopen(path, "wb") as handle:
            handle.write(b"x" * 100)
        assert platform.ledger.count("transition.ocall.shim.write") == 1

    def test_mmap_read_bounds_checked(self, tmp_path):
        path = str(tmp_path / "data.bin")
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            with libc.fopen(path, "wb") as handle:
                handle.write(b"0123456789")
            mapped = libc.mmap_file(path)
            assert mapped.read(2, 3) == b"234"
            with pytest.raises(ShimError):
                mapped.read(8, 5)

    def test_mmap_missing_file_rejected(self, tmp_path):
        with native_session() as session:
            with pytest.raises(ShimError):
                ShimLibc(session.ctx).mmap_file(str(tmp_path / "nope"))

    def test_enclave_mmap_reads_trigger_page_ins(self, tmp_path):
        path = str(tmp_path / "big.bin")
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.ENCLAVE)
        libc = ShimLibc(ctx)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 65536)
        mapped = libc.mmap_file(path)
        for offset in range(0, 65536, 256):
            mapped.read(offset, 256)
        assert platform.ledger.count("transition.ocall.shim.page_in") >= 15

    def test_use_after_close_rejected(self, tmp_path):
        with native_session() as session:
            handle = ShimLibc(session.ctx).fopen(str(tmp_path / "f"), "wb")
            handle.close()
            with pytest.raises(ShimError):
                handle.write(b"late")

    def test_unlink(self, tmp_path):
        path = str(tmp_path / "gone.bin")
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            libc.fopen(path, "wb").close()
            assert os.path.exists(path)
            libc.unlink(path)
            assert not os.path.exists(path)


class TestSerialization:
    def test_round_trip(self):
        codec = SerializationCodec(fresh_platform())
        value, size = round_trip(codec, {"a": [1, 2, 3]}, Location.HOST)
        assert value == {"a": [1, 2, 3]}
        assert size > 0

    def test_unserialisable_rejected(self):
        codec = SerializationCodec(fresh_platform())
        with pytest.raises(SerializationError):
            codec.serialize(lambda: None, Location.HOST)

    def test_corrupt_buffer_rejected(self):
        codec = SerializationCodec(fresh_platform())
        with pytest.raises(SerializationError):
            codec.deserialize(b"garbage", Location.HOST)

    def test_enclave_serialization_costs_more(self):
        p_in, p_out = fresh_platform(), fresh_platform()
        payload = ["x" * 16] * 1000
        SerializationCodec(p_in).serialize(payload, Location.ENCLAVE)
        SerializationCodec(p_out).serialize(payload, Location.HOST)
        assert p_in.now_s > 3 * p_out.now_s

    def test_enclave_serialize_pricier_than_deserialize(self):
        """The Fig. 4b asymmetry at the codec level."""
        platform = fresh_platform()
        codec = SerializationCodec(platform)
        payload = ["x" * 16] * 2000
        buffer = codec.serialize(payload, Location.ENCLAVE)
        serialize_ns = platform.ledger.total_ns("rmi.serialize.enclave")
        codec.deserialize(buffer, Location.ENCLAVE)
        deserialize_ns = platform.ledger.total_ns("rmi.deserialize.enclave")
        assert serialize_ns > 2 * deserialize_ns

    def test_memoized_codec_still_charges(self):
        platform = fresh_platform()
        codec = SerializationCodec(platform, memoize=True)
        payload = ["y"] * 5000
        codec.serialize(payload, Location.HOST)
        first = platform.now_s
        codec.serialize(payload, Location.HOST)
        assert platform.now_s == pytest.approx(2 * first)

    def test_measure_matches_serialized_size(self):
        codec = SerializationCodec(fresh_platform())
        value = list(range(100))
        assert codec.measure(value) == len(codec.serialize(value, Location.HOST))
