"""Elastic autoscaling (repro.autoscale).

Covers the consistent-hash ring (deterministic routing, the ~1/N remap
bound on membership change, pricing identity with the crc32 router at
one shard), the sealed live-migration engine (state-preserving
scale-up/down, attestation + seal pricing, chaos-safe interruption
handling with rollback-or-complete semantics, retry-budget-bounded
retries) and the hysteresis controller (signal-driven decisions,
cooldown, down-stability, provisioning hooks).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.apps.bank import Account, BANK_CLASSES
from repro.autoscale import (
    AutoscalePolicy,
    ConsistentHashRing,
    HysteresisAutoscaler,
    ShardMigrator,
)
from repro.concurrency import ShardedEnclaveGroup
from repro.core import Partitioner, PartitionOptions
from repro.core.multi_isolate import DEFAULT_ISOLATE
from repro.costs.platform import fresh_platform
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultKind, FaultRule, RetryPolicy
from tests.helpers import assert_ledgers_identical, session_ledger


def _bank_app(name: str):
    return Partitioner(PartitionOptions(name=name)).partition(
        list(BANK_CLASSES)
    )


def _capture(account):
    return account.get_balance()


def _apply(account, snapshot):
    # Absorbing write: re-applying the same snapshot cannot double-count.
    account.update_balance(snapshot - account.get_balance())


def _manage_accounts(migrator, keys, initial=100):
    for key in keys:
        migrator.manage(
            key,
            factory=lambda k=key: Account(k, initial),
            capture=_capture,
            apply=_apply,
        )


#: One seeded mid-migration shard loss (the chaos window of ISSUE 8).
def _chaos_rule(max_fires=1):
    return FaultRule(
        FaultKind.ENCLAVE_CRASH,
        call_kind="shard",
        routine="migrate.*",
        at_call=1,
        max_fires=max_fires,
    )


# ---------------------------------------------------------------------------
# ConsistentHashRing
# ---------------------------------------------------------------------------


class TestConsistentHashRing:
    def test_routing_is_deterministic_and_order_independent(self):
        keys = [f"k{i}" for i in range(256)]
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]
        assert a.node_for("k7") == a.node_for("k7")
        assert len(a) == 3 and "s1" in a and "s9" not in a
        assert set(a.nodes) == set(b.nodes)

    def test_membership_change_remaps_about_one_over_n(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        keys = [f"key-{i}" for i in range(2000)]
        before = {k: ring.node_for(k) for k in keys}
        ring.add("s4")
        after = {k: ring.node_for(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        share = len(moved) / len(keys)
        assert 0.05 < share < 0.40  # ~1/5 of the keyspace, generous slack
        # Adding a node only ever steals keys *for itself*.
        assert all(after[k] == "s4" for k in moved)
        # Removing it restores the exact pre-change routing.
        ring.remove("s4")
        assert {k: ring.node_for(k) for k in keys} == before

    def test_validation(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigurationError):
            ring.add("a")
        with pytest.raises(ConfigurationError):
            ring.remove("b")
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(vnodes=0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().node_for("k")

    def test_ring_router_prices_like_crc32_at_one_shard(self):
        # The zero-cost bridge: a 1-shard group routes everything to the
        # root isolate under either router, so switching the router on
        # must not move a single priced nanosecond.
        ledgers = {}
        for router in ("crc32", "ring"):
            app = _bank_app("as_price")
            with app.start() as session:
                group = ShardedEnclaveGroup(session, 1, router=router)
                accounts = [
                    group.create_pinned(f"a{i}", lambda i=i: Account(f"a{i}", 10))
                    for i in range(4)
                ]
                for account in accounts:
                    account.update_balance(5)
                assert sum(a.get_balance() for a in accounts) == 60
                ledgers[router] = session_ledger(session)
        assert_ledgers_identical(ledgers["ring"], ledgers["crc32"])


# ---------------------------------------------------------------------------
# ShardMigrator
# ---------------------------------------------------------------------------


class TestShardMigrator:
    def test_scale_up_then_down_migrates_state_losslessly(self):
        app = _bank_app("as_updown")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(group)
            keys = [f"bank-{i}" for i in range(8)]
            _manage_accounts(migrator, keys)
            for i, key in enumerate(keys):
                migrator.lookup(key).update_balance(i + 1)

            outcome = migrator.scale_up()
            assert outcome["action"] == "up"
            assert group.n_shards == 2
            moved = outcome["keys_moved"]
            assert moved >= 1
            off_root = [
                k for k in keys if migrator.home_of(k) != DEFAULT_ISOLATE
            ]
            assert len(off_root) == moved
            # Every key serves its full history wherever it now lives.
            for i, key in enumerate(keys):
                assert migrator.lookup(key).get_balance() == 100 + i + 1
            assert migrator.stats.attestations == 1
            ledger = dict(session.platform.snapshot())
            assert "migration.attest" in ledger
            assert "migration.transfer" in ledger
            assert "sgx.seal" in ledger and "sgx.unseal" in ledger

            outcome = migrator.scale_down()
            assert outcome["action"] == "down"
            assert group.n_shards == 1
            assert all(migrator.home_of(k) == DEFAULT_ISOLATE for k in keys)
            for i, key in enumerate(keys):
                assert migrator.lookup(key).get_balance() == 100 + i + 1
            assert migrator.stats.rollbacks == 0

    def test_duplicate_key_and_missing_scale_down_rejected(self):
        app = _bank_app("as_valid")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(group)
            _manage_accounts(migrator, ["bank-0"])
            with pytest.raises(ConfigurationError):
                _manage_accounts(migrator, ["bank-0"])
            with pytest.raises(ConfigurationError):
                migrator.scale_down()  # no removable shard

    def test_mid_migration_loss_completes_from_sealed_blob(self):
        # The acceptance invariant: a seeded shard loss inside the chaos
        # window must complete the move from the sealed blob — zero
        # acked-state loss, at-most-once application.
        app = _bank_app("as_chaos")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(group)
            keys = [f"bank-{i}" for i in range(8)]
            _manage_accounts(migrator, keys)
            acked = {}
            for i, key in enumerate(keys):
                migrator.lookup(key).update_balance(i + 1)
                acked[key] = i + 1
            session.platform.enable_fault_injection(
                FaultInjector(seed=3, rules=[_chaos_rule(max_fires=1)])
            )
            migrator.scale_up()
            session.platform.disable_fault_injection()
            assert migrator.stats.interruptions == 1
            assert migrator.stats.retries >= 1
            assert migrator.stats.rollbacks == 0
            for key in keys:
                assert migrator.lookup(key).get_balance() == 100 + acked[key]
            record = next(r for r in migrator.records if r.interruptions)
            assert record.completed and not record.rolled_back
            # The victim shard's recovery was priced like any loss.
            ledger = dict(session.platform.snapshot())
            assert any(c.startswith("shard.reload.") for c in ledger)

    def test_retry_budget_exhaustion_rolls_back(self):
        # A persistent fault burns the budget: 100k then 200k backoff
        # against a 150k budget, so attempt 3 is never authorized and
        # the key stays (intact) on its source shard.
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff_ns=100_000.0,
            retry_budget_ns=150_000.0,
        )
        app = _bank_app("as_budget")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(group, policy=policy)
            keys = [f"bank-{i}" for i in range(8)]
            _manage_accounts(migrator, keys)
            for key in keys:
                migrator.lookup(key).update_balance(9)
            session.platform.enable_fault_injection(
                FaultInjector(
                    seed=5,
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            call_kind="shard",
                            routine="migrate.*",
                        )
                    ],
                )
            )
            outcome = migrator.scale_up()
            session.platform.disable_fault_injection()
            assert outcome["keys_moved"] == 0
            assert migrator.stats.rollbacks >= 1
            assert migrator.stats.rollbacks == migrator.stats.migrations
            assert all(migrator.home_of(k) == DEFAULT_ISOLATE for k in keys)
            for key in keys:
                assert migrator.lookup(key).get_balance() == 109
            ledger = dict(session.platform.snapshot())
            assert "migration.backoff" in ledger
            # Two attempts per key: one authorized backoff, then the
            # budget refuses the second retry.
            record = migrator.records[0]
            assert record.attempts == 2 and record.rolled_back

    def test_failed_scale_down_aborts_retirement(self):
        app = _bank_app("as_downfail")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(
                group, policy=RetryPolicy(max_attempts=1)
            )
            keys = [f"bank-{i}" for i in range(8)]
            _manage_accounts(migrator, keys)
            for key in keys:
                migrator.lookup(key).update_balance(3)
            migrator.scale_up()
            stranded_before = [
                k for k in keys if migrator.home_of(k) != DEFAULT_ISOLATE
            ]
            assert stranded_before  # the retirement has keys to move
            session.platform.enable_fault_injection(
                FaultInjector(
                    seed=7,
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            call_kind="shard",
                            routine="migrate.*",
                        )
                    ],
                )
            )
            outcome = migrator.scale_down()
            session.platform.disable_fault_injection()
            assert outcome["action"] == "down-rollback"
            assert outcome["stranded"] == sorted(stranded_before)
            # The shard routes again and still serves its keys.
            assert group.n_shards == 2
            assert outcome["shard"] in group.shard_names
            for key in keys:
                assert migrator.lookup(key).get_balance() == 103


# ---------------------------------------------------------------------------
# HysteresisAutoscaler (controller logic over stub signals)
# ---------------------------------------------------------------------------


class _FakeGroup:
    def __init__(self):
        self.n_shards = 1
        self.driver = None
        self.shard_names = (DEFAULT_ISOLATE,)


class _FakeMigrator:
    """Counts scale actions without touching any real isolate."""

    def __init__(self):
        self.group = _FakeGroup()
        self.platform = fresh_platform()

    def scale_up(self):
        self.group.n_shards += 1
        return {"shard": "sX", "keys_moved": 2, "action": "up"}

    def scale_down(self, shard=None):
        self.group.n_shards -= 1
        return {"shard": "sX", "keys_moved": 1, "action": "down"}


def _admission_stub(depth, caps):
    return SimpleNamespace(queue_depth=depth, set_capacity=caps.append)


class TestHysteresisAutoscaler:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=3, max_shards=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(cooldown_ns=-1.0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(down_stable_evals=0)

    def test_deep_queue_scales_up_and_provisions(self):
        caps = []
        admission = _admission_stub(depth=9, caps=caps)
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(
                queue_up_depth=6, cooldown_ns=1_000.0, slots_per_shard=3
            ),
            admission=admission,
        )
        event = auto.evaluate(now_ns=0.0)
        assert event is not None and event.action == "up"
        assert "queue depth 9" in event.reason
        assert auto.group.n_shards == 2
        assert caps == [6]  # slots_per_shard * new shard count
        assert event.to_dict()["shards_after"] == 2

    def test_cooldown_blocks_consecutive_events(self):
        caps = []
        admission = _admission_stub(depth=9, caps=caps)
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(queue_up_depth=6, cooldown_ns=1_000.0),
            admission=admission,
        )
        assert auto.evaluate(now_ns=0.0) is not None
        assert auto.evaluate(now_ns=500.0) is None  # in cooldown
        assert auto.evaluate(now_ns=1_500.0) is not None  # cooldown over

    def test_max_shards_caps_growth(self):
        caps = []
        admission = _admission_stub(depth=9, caps=caps)
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(
                max_shards=2, queue_up_depth=6, cooldown_ns=0.0
            ),
            admission=admission,
        )
        assert auto.evaluate(now_ns=0.0) is not None
        assert auto.evaluate(now_ns=10_000.0) is None  # at the cap
        assert auto.group.n_shards == 2

    def test_scale_down_requires_stability(self):
        caps = []
        admission = _admission_stub(depth=0, caps=caps)
        migrator = _FakeMigrator()
        migrator.group.n_shards = 2
        auto = HysteresisAutoscaler(
            migrator,
            policy=AutoscalePolicy(
                down_stable_evals=3, cooldown_ns=0.0, queue_down_depth=0
            ),
            admission=admission,
        )
        assert auto.evaluate(now_ns=1.0) is None
        assert auto.evaluate(now_ns=2.0) is None
        event = auto.evaluate(now_ns=3.0)
        assert event is not None and event.action == "down"
        assert auto.group.n_shards == 1
        assert "calm for 3 evaluations" in event.reason

    def test_busy_eval_resets_calm_streak(self):
        caps = []
        admission = _admission_stub(depth=0, caps=caps)
        migrator = _FakeMigrator()
        migrator.group.n_shards = 2
        auto = HysteresisAutoscaler(
            migrator,
            policy=AutoscalePolicy(
                down_stable_evals=3,
                cooldown_ns=0.0,
                queue_up_depth=6,
                queue_down_depth=0,
            ),
            admission=admission,
        )
        assert auto.evaluate(now_ns=1.0) is None
        assert auto.evaluate(now_ns=2.0) is None
        admission.queue_depth = 1  # not calm, not up-worthy either
        assert auto.evaluate(now_ns=3.0) is None
        admission.queue_depth = 0
        assert auto.evaluate(now_ns=4.0) is None  # streak restarted
        assert auto.evaluate(now_ns=5.0) is None
        assert auto.evaluate(now_ns=6.0) is not None

    def test_pool_fallback_share_is_windowed(self):
        resizes = []
        pool = SimpleNamespace(
            stats=SimpleNamespace(total_served=1, total_fallbacks=9),
            resize=lambda **kw: resizes.append(kw),
        )
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(
                fallback_up_share=0.5, cooldown_ns=0.0, workers_per_shard=2
            ),
            pool=pool,
        )
        event = auto.evaluate(now_ns=0.0)
        assert event is not None and "fallback share" in event.reason
        assert resizes == [{"trusted_workers": 4, "untrusted_workers": 4}]
        # No new pool traffic since the last window: the share reads 0,
        # not the all-time 0.9 — the signal is a delta, not a level.
        assert auto.evaluate(now_ns=10.0) is None
        assert auto._calm_evals == 1

    def test_critical_alert_delta_triggers_up_once(self):
        watchdog = SimpleNamespace(
            alerts=[SimpleNamespace(severity="critical")]
        )
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(cooldown_ns=0.0),
            watchdog=watchdog,
        )
        event = auto.evaluate(now_ns=0.0)
        assert event is not None and "critical SLO alert" in event.reason
        # The same alert list again is a zero delta: no second event.
        assert auto.evaluate(now_ns=10.0) is None

    def test_trace_lists_events_in_order(self):
        caps = []
        admission = _admission_stub(depth=9, caps=caps)
        auto = HysteresisAutoscaler(
            _FakeMigrator(),
            policy=AutoscalePolicy(queue_up_depth=6, cooldown_ns=0.0),
            admission=admission,
        )
        auto.evaluate(now_ns=0.0)
        auto.evaluate(now_ns=10.0)
        trace = auto.trace()
        assert [e["action"] for e in trace] == ["up", "up"]
        assert trace[0]["at_ns"] < trace[1]["at_ns"]
        assert auto.evaluations == 2


# ---------------------------------------------------------------------------
# Controller + migrator end to end (real shard group)
# ---------------------------------------------------------------------------


class TestAutoscaleEndToEnd:
    def test_queue_pressure_grows_a_real_group(self):
        app = _bank_app("as_e2e")
        with app.start() as session:
            group = ShardedEnclaveGroup(session, 1, router="ring")
            migrator = ShardMigrator(group)
            keys = [f"bank-{i}" for i in range(6)]
            _manage_accounts(migrator, keys)
            for key in keys:
                migrator.lookup(key).update_balance(4)
            caps = []
            admission = _admission_stub(depth=8, caps=caps)
            auto = HysteresisAutoscaler(
                migrator,
                policy=AutoscalePolicy(
                    queue_up_depth=4, cooldown_ns=0.0, max_shards=3
                ),
                admission=admission,
            )
            up = auto.evaluate()
            assert up is not None and up.action == "up"
            assert group.n_shards == 2
            admission.queue_depth = 0
            for now in (1e6, 2e6, 3e6):
                down = auto.evaluate(now_ns=now)
            assert down is not None and down.action == "down"
            assert group.n_shards == 1
            for key in keys:
                assert migrator.lookup(key).get_balance() == 104
