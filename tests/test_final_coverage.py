"""Final coverage pass: CLI extra commands, startup experiment
internals, switchless ocall paths, and small utility corners."""

import pytest

from repro.cli import main as cli_main
from repro.costs import fresh_platform
from repro.errors import ConfigurationError


class TestExtraCliCommands:
    def test_epc_command(self, capsys):
        assert cli_main(["epc"]) == 0
        out = capsys.readouterr().out
        assert "EPC paging cliff" in out

    def test_startup_command(self, capsys):
        assert cli_main(["startup"]) == 0
        out = capsys.readouterr().out
        assert "Startup" in out
        assert "Build-time initialisation" in out

    def test_securekeeper_command(self, capsys):
        assert cli_main(["securekeeper", "--scale", "small"]) == 0
        assert "switchless" in capsys.readouterr().out

    def test_mapreduce_command(self, capsys):
        assert cli_main(["mapreduce", "--scale", "small"]) == 0
        assert "MapReduce" in capsys.readouterr().out


class TestStartupExperimentInternals:
    def test_run_startup_shapes(self):
        from repro.experiments.startup import run_startup

        table = run_startup()
        # NI sessions start orders of magnitude faster than JVMs.
        assert table.get("Part-NI").y_at(0) < table.get("NoSGX+JVM").y_at(0) / 50
        # Footprints: native images carry megabytes, JVMs ~150 MB.
        assert table.get("NoPart-NI").y_at(1) < 5.0
        assert table.get("SCONE+JVM").y_at(1) > 100.0

    def test_run_build_time_init_effect(self):
        from repro.experiments.startup import run_build_time_init

        table = run_build_time_init()
        series = table.get("startup seconds")
        assert series.y_at(0) < series.y_at(1)


class TestSwitchlessOcallPath:
    def make_layer(self, untrusted_workers=1):
        from repro.sgx import SgxSdk, SwitchlessConfig, SwitchlessLayer

        platform = fresh_platform()
        sdk = SgxSdk(platform)
        enclave = sdk.create_enclave(sdk.sign("swo", b"swo"))
        return platform, SwitchlessLayer(
            platform,
            enclave,
            SwitchlessConfig(trusted_workers=1, untrusted_workers=untrusted_workers),
        )

    def test_switchless_ocall_fast_path(self):
        _, layer = self.make_layer()
        assert layer.ocall("o", lambda: "out") == "out"
        assert layer.stats.switchless_ocalls == 1

    def test_ocall_fallback_when_untrusted_workers_busy(self):
        _, layer = self.make_layer(untrusted_workers=1)

        def nested():
            return layer.ocall("inner", lambda: 3)

        assert layer.ocall("outer", nested) == 3
        assert layer.stats.fallback_ocalls == 1

    def test_negative_worker_config_rejected(self):
        from repro.sgx import SwitchlessConfig

        with pytest.raises(ConfigurationError):
            SwitchlessConfig(trusted_workers=-1)

    def test_negative_idle_duration_rejected(self):
        _, layer = self.make_layer()
        with pytest.raises(ConfigurationError):
            layer.idle_worker_cost(-1.0)


class TestUtilityCorners:
    def test_series_xs_and_mean(self):
        from repro.experiments.common import Series

        series = Series("s", [(1, 2.0), (2, 4.0)])
        assert series.xs() == [1, 2]
        assert series.mean() == 3.0
        assert Series("empty").mean() == 0.0

    def test_clock_span_start(self):
        platform = fresh_platform()
        platform.charge_ns("w", 100.0)
        span = platform.measure()
        assert span.start_ns == pytest.approx(100.0)

    def test_platform_snapshot_diff(self):
        platform = fresh_platform()
        platform.charge_ns("a", 1.0)
        snapshot = platform.snapshot()
        platform.charge_ns("a", 2.0)
        delta = platform.ledger.diff_since(snapshot)
        assert delta["a"] == (1, pytest.approx(2.0))

    def test_platform_repr(self):
        platform = fresh_platform()
        assert "Xeon" in repr(platform)

    def test_top_level_package_exports(self):
        import repro

        assert callable(repro.trusted)
        assert repro.__version__ == "1.0.0"

    def test_transition_stats_crossings(self):
        from repro.sgx.transitions import TransitionStats

        stats = TransitionStats(ecalls=2, ocalls=3, switchless_calls=1)
        assert stats.crossings == 6

    def test_wire_huge_integers(self):
        from repro.core import wire

        for value in (2**300, -(2**300), 2**64 - 1):
            assert wire.loads(wire.dumps(value)) == value
