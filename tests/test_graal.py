"""Unit tests for the GraalVM substrate: extraction, points-to analysis,
entry points, image heap, builder and isolates."""

import pytest

from repro.costs import fresh_platform
from repro.errors import BuildError, ConfigurationError, ReachabilityError
from repro.graal import (
    BuildOptions,
    CEntryPointSpec,
    Isolate,
    LinkMode,
    NativeImageBuilder,
    PointsToAnalysis,
    extract_classes,
    validate_entry_point,
)
from repro.graal.entrypoints import ParamKind
from repro.graal.image import ImageHeap, synthesize_code
from repro.graal.jtypes import (
    CallSite,
    ClassUniverse,
    JClass,
    JMethod,
    TrustLevel,
)
from repro.runtime.context import ExecutionContext, Location

from repro.apps.bank import BANK_CLASSES


def bank_universe():
    return ClassUniverse(extract_classes(BANK_CLASSES))


class TestExtraction:
    def test_extracts_annotated_trust(self):
        ir = extract_classes(BANK_CLASSES)
        assert ir["Account"].trust is TrustLevel.TRUSTED
        assert ir["Person"].trust is TrustLevel.UNTRUSTED

    def test_extracts_methods(self):
        ir = extract_classes(BANK_CLASSES)
        names = {m.name for m in ir["Account"].methods}
        assert {"__init__", "update_balance", "get_balance"} <= names

    def test_extracts_instantiation_sites(self):
        ir = extract_classes(BANK_CLASSES)
        ctor = ir["Person"].method("__init__")
        instantiations = {
            site.receiver_class for site in ctor.calls if site.is_instantiation
        }
        assert "Account" in instantiations

    def test_extracts_fields(self):
        ir = extract_classes(BANK_CLASSES)
        fields = {f.name for f in ir["Person"].fields}
        assert {"name", "account"} <= fields

    def test_constructor_flag(self):
        ir = extract_classes(BANK_CLASSES)
        assert ir["Account"].method("__init__").is_constructor
        assert not ir["Account"].method("get_balance").is_constructor

    def test_static_flag(self):
        ir = extract_classes(BANK_CLASSES)
        assert ir["Main"].method("main").is_static

    def test_explicit_calls_declaration(self):
        class Generated:
            __calls__ = {"run": [("Helper", None), (None, "step")]}

            def run(self):
                pass

        ir = extract_classes([Generated])
        sites = ir["Generated"].method("run").calls
        assert CallSite("__init__", "Helper", is_instantiation=True) in sites
        assert CallSite("step") in sites


class TestPointsTo:
    def test_bank_main_reaches_trusted_methods(self):
        result = PointsToAnalysis(bank_universe()).analyze(["Main.main"])
        assert result.includes_method("Person.transfer")
        assert result.includes_method("Account.update_balance")
        assert result.includes_class("AccountRegistry")

    def test_unreachable_method_excluded(self):
        classes = {
            "A": JClass(
                name="A",
                methods=(
                    JMethod("used", "A"),
                    JMethod("unused", "A"),
                    JMethod(
                        "main",
                        "A",
                        is_static=True,
                        calls=frozenset({CallSite("used", "A")}),
                    ),
                ),
            )
        }
        result = PointsToAnalysis(ClassUniverse(classes)).analyze(["A.main"])
        assert result.includes_method("A.used")
        assert not result.includes_method("A.unused")

    def test_virtual_call_resolved_after_instantiation(self):
        classes = {
            "Impl": JClass(name="Impl", methods=(JMethod("go", "Impl"), JMethod("__init__", "Impl", is_constructor=True))),
            "Main": JClass(
                name="Main",
                methods=(
                    JMethod(
                        "main",
                        "Main",
                        is_static=True,
                        calls=frozenset(
                            {
                                CallSite("go"),  # virtual, then
                                CallSite("__init__", "Impl", is_instantiation=True),
                            }
                        ),
                    ),
                ),
            ),
        }
        result = PointsToAnalysis(ClassUniverse(classes)).analyze(["Main.main"])
        assert result.includes_method("Impl.go")
        assert "Impl" in result.instantiated

    def test_virtual_call_without_instantiation_not_resolved(self):
        classes = {
            "Impl": JClass(name="Impl", methods=(JMethod("go", "Impl"),)),
            "Main": JClass(
                name="Main",
                methods=(
                    JMethod(
                        "main", "Main", is_static=True, calls=frozenset({CallSite("go")})
                    ),
                ),
            ),
        }
        result = PointsToAnalysis(ClassUniverse(classes)).analyze(["Main.main"])
        assert not result.includes_method("Impl.go")

    def test_constructor_marks_fields_reachable(self):
        result = PointsToAnalysis(bank_universe()).analyze(["Main.main"])
        assert "Account.balance" in result.fields

    def test_missing_entry_point_rejected(self):
        with pytest.raises(ReachabilityError):
            PointsToAnalysis(bank_universe()).analyze(["Account.no_such"])

    def test_unqualified_entry_point_rejected(self):
        with pytest.raises(ReachabilityError):
            PointsToAnalysis(bank_universe()).analyze(["main"])

    def test_empty_entry_points_rejected(self):
        with pytest.raises(ReachabilityError):
            PointsToAnalysis(bank_universe()).analyze([])

    def test_closed_world_violation(self):
        with pytest.raises(ConfigurationError):
            PointsToAnalysis(bank_universe()).analyze(["Unknown.main"])


class TestCEntryPoint:
    def good(self):
        return CEntryPointSpec(
            "relay", "Account", True, (ParamKind.ISOLATE, ParamKind.PRIMITIVE, ParamKind.WORD)
        )

    def test_valid_spec_passes(self):
        validate_entry_point(self.good())

    def test_non_static_rejected(self):
        spec = CEntryPointSpec("relay", "A", False, (ParamKind.ISOLATE,))
        with pytest.raises(BuildError):
            validate_entry_point(spec)

    def test_missing_isolate_rejected(self):
        spec = CEntryPointSpec("relay", "A", True, (ParamKind.PRIMITIVE,))
        with pytest.raises(BuildError):
            validate_entry_point(spec)

    def test_object_param_rejected(self):
        spec = CEntryPointSpec(
            "relay", "A", True, (ParamKind.ISOLATE, ParamKind.OBJECT)
        )
        with pytest.raises(BuildError):
            validate_entry_point(spec)

    def test_double_isolate_rejected(self):
        spec = CEntryPointSpec(
            "relay", "A", True, (ParamKind.ISOLATE, ParamKind.ISOLATE)
        )
        with pytest.raises(BuildError):
            validate_entry_point(spec)


class TestImageHeap:
    def test_snapshot_round_trip(self):
        heap = ImageHeap()
        heap.put("config", {"threads": 4})
        view = heap.startup_view()
        assert view["config"] == {"threads": 4}

    def test_put_after_snapshot_rejected(self):
        heap = ImageHeap()
        heap.snapshot()
        with pytest.raises(BuildError):
            heap.put("late", 1)

    def test_unpicklable_state_rejected(self):
        heap = ImageHeap()
        heap.put("socket", lambda: None)
        with pytest.raises(BuildError):
            heap.snapshot()

    def test_startup_view_is_a_copy(self):
        heap = ImageHeap()
        heap.put("data", [1, 2])
        view = heap.startup_view()
        view["data"].append(3)
        assert heap.startup_view()["data"] == [1, 2]


class TestBuilder:
    def test_build_executable(self):
        image = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        assert not image.relocatable
        assert image.artifact_name == "bank"
        assert image.contains_method("Account.update_balance")

    def test_relocatable_mode(self):
        builder = NativeImageBuilder(BuildOptions(link_mode=LinkMode.RELOCATABLE))
        image = builder.build("trusted", bank_universe(), ["Main.main"])
        assert image.artifact_name == "trusted.o"

    def test_no_entry_points_rejected(self):
        with pytest.raises(BuildError):
            NativeImageBuilder().build("bank", bank_universe(), [])

    def test_build_time_init_lands_in_image_heap(self):
        def init(heap):
            heap.put("parsed_config", {"mode": "fast"})

        image = NativeImageBuilder().build(
            "bank", bank_universe(), ["Main.main"], build_time_init=init
        )
        assert image.image_heap_bytes > 0

    def test_measurement_deterministic(self):
        a = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        b = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        assert a.measure() == b.measure()

    def test_measurement_changes_with_entry_points(self):
        a = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        b = NativeImageBuilder().build(
            "bank", bank_universe(), ["Main.main", "AccountRegistry.count"]
        )
        assert a.measure() != b.measure()

    def test_reflection_config_forces_class(self):
        plain = NativeImageBuilder().build(
            "bank", bank_universe(), ["Account.get_balance"]
        )
        assert not plain.contains_class("AccountRegistry")
        forced = NativeImageBuilder(
            BuildOptions(reflection_config=("AccountRegistry",))
        ).build("bank", bank_universe(), ["Account.get_balance"])
        assert forced.contains_class("AccountRegistry")

    def test_code_size_scales_with_reachability(self):
        small = NativeImageBuilder().build("bank", bank_universe(), ["Account.get_balance"])
        large = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        assert large.code_size_bytes > small.code_size_bytes

    def test_runtime_components_embedded(self):
        image = NativeImageBuilder().build("bank", bank_universe(), ["Main.main"])
        assert "serial-gc" in image.runtime_components


class TestIsolate:
    def make(self, name="iso"):
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.HOST)
        return platform, Isolate(name, ctx, max_heap_bytes=1 << 20)

    def test_independent_heaps(self):
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.HOST)
        a = Isolate("a", ctx, max_heap_bytes=1 << 20)
        b = Isolate("b", ctx, max_heap_bytes=1 << 20)
        a.heap.alloc(100)
        assert b.heap.stats.live_bytes == 0

    def test_collect_only_affects_own_heap(self):
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.HOST)
        a = Isolate("a", ctx, max_heap_bytes=1 << 20)
        b = Isolate("b", ctx, max_heap_bytes=1 << 20)
        a.heap.free(a.heap.alloc(500))
        a.collect()
        assert a.heap.stats.collections == 1
        assert b.heap.stats.collections == 0

    def test_attach_thread_charges(self):
        platform, isolate = self.make()
        before = platform.clock.now_ns
        isolate.attach_thread()
        assert platform.clock.now_ns > before

    def test_use_after_teardown_rejected(self):
        _, isolate = self.make()
        isolate.tear_down()
        with pytest.raises(ConfigurationError):
            isolate.collect()

    def test_unique_ids(self):
        _, a = self.make("a")
        _, b = self.make("b")
        assert a.isolate_id != b.isolate_id


class TestSynthesizeCode:
    def test_deterministic(self):
        result = PointsToAnalysis(bank_universe()).analyze(["Main.main"])
        assert synthesize_code("x", result, b"") == synthesize_code("x", result, b"")

    def test_name_changes_code(self):
        result = PointsToAnalysis(bank_universe()).analyze(["Main.main"])
        assert synthesize_code("x", result, b"") != synthesize_code("y", result, b"")
