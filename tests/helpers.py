"""Shared test helpers.

The pricing-identity pattern — "configuration X must charge the ledger
byte-identically to configuration Y" — recurs across the batching,
fault and concurrency suites. These helpers capture one canonical
fingerprint shape and one assertion with a readable diff, so every
suite compares the same things the same way.
"""

from __future__ import annotations

from typing import Any, Dict


def session_ledger(session: Any) -> Dict[str, Any]:
    """Full pricing fingerprint of a running session.

    Covers the cost ledger (per-category counts and totals), the
    virtual clock, and the transition-layer crossing count: two
    configurations with equal fingerprints were priced byte-identically
    and crossed the enclave boundary the same number of times.
    """
    return {
        "snapshot": dict(session.platform.snapshot()),
        "now": session.platform.now_s,
        "crossings": session.transition_stats.crossings,
    }


def platform_ledger(platform: Any) -> Dict[str, Any]:
    """Pricing fingerprint when only the platform survives the run
    (e.g. captured after ``app.start()`` tears the session down)."""
    return {
        "snapshot": dict(platform.snapshot()),
        "now": platform.now_s,
    }


def arena_charged_ns(platform: Any) -> float:
    """Total virtual time the ledger charged under the arena fast path
    (``sgx.arena.*``: staging writes plus per-crossing MAC)."""
    return sum(
        total_ns
        for category, (_count, total_ns) in platform.snapshot().items()
        if category.startswith("sgx.arena")
    )


def assert_arena_decomposition(
    classic_platform: Any, arena_platform: Any, arena: Any, rel: float = 1e-9
) -> None:
    """Assert the arena pricing identity, exactly.

    A run with the arena must decompose against the same run priced
    classically as::

        classic_total == arena_total + saved - charged

    where ``saved`` is the classic serialization/edge cost the fast
    path elided (tracked in :class:`~repro.core.arena.ArenaStats` with
    the classic formulas, at elision time) and ``charged`` is what the
    ledger actually billed under ``sgx.arena.*``. ``rel`` only absorbs
    float summation error — the identity itself is exact.
    """
    classic_ns = classic_platform.clock.now_ns
    arena_ns = arena_platform.clock.now_ns
    reconstructed = arena_ns + arena.stats.saved_ns - arena_charged_ns(arena_platform)
    if classic_ns == reconstructed:
        return
    error = abs(classic_ns - reconstructed)
    bound = rel * max(abs(classic_ns), abs(reconstructed), 1.0)
    if error > bound:
        raise AssertionError(
            "arena decomposition broken: classic "
            f"{classic_ns} != arena {arena_ns} + saved "
            f"{arena.stats.saved_ns} - charged "
            f"{arena_charged_ns(arena_platform)} (error {error} ns)"
        )


def assert_ledgers_identical(actual: Any, expected: Any) -> None:
    """Assert two pricing fingerprints are byte-identical, reporting
    the first differing ledger categories when they are not."""
    if actual == expected:
        return
    lines = ["pricing fingerprints differ:"]
    if isinstance(actual, dict) and isinstance(expected, dict):
        actual_snap = actual.get("snapshot", {})
        expected_snap = expected.get("snapshot", {})
        for key in sorted(set(actual_snap) | set(expected_snap)):
            left = actual_snap.get(key)
            right = expected_snap.get(key)
            if left != right:
                lines.append(f"  {key}: {left} != {right}")
        for field in ("now", "crossings"):
            if actual.get(field) != expected.get(field):
                lines.append(
                    f"  {field}: {actual.get(field)} != {expected.get(field)}"
                )
    raise AssertionError("\n".join(lines))
