"""Property/fuzz suite for the arena codec path (repro.core.arena).

Seeded, dependency-free fuzzing of the zero-copy encode path:

- ``dumps_into`` -> ``loads_inplace`` must agree with classic
  ``dumps`` -> ``loads`` on every wire-encodable payload, for every
  wire tag including SecureValue (0x0B);
- adversarial views — truncated, overlapping, fabricated, stale
  generation, released — must raise typed
  :class:`~repro.errors.SerializationError` subclasses, never crash
  and never hand out a window over reclaimed memory;
- decoded values must not alias the pinned buffer: scribbling over the
  arena after decode must not change a decoded value;
- nested zero-length containers round-trip through both decode paths
  (regression: the empty-container fast path must stay on the
  encode-once path).
"""

from __future__ import annotations

import random

import pytest

from repro.core import wire
from repro.core.arena import ArenaRegion, BorrowedView, SharedBufferArena
from repro.core.secure import SecureValue, secure
from repro.costs.platform import fresh_platform
from repro.errors import (
    ArenaCapacityError,
    ArenaError,
    SerializationError,
    StaleViewError,
)
from tests.test_wire_properties import random_payload

SEEDS = (7, 19, 1234)

#: One explicit value per wire tag (0x00-0x0B).
TAGGED_VALUES = (
    None,                                   # 0x00 NONE
    True,                                   # 0x01 TRUE
    False,                                  # 0x02 FALSE
    -(2**70) + 13,                          # 0x03 INT
    3.14159e300,                            # 0x04 FLOAT
    "héllo \U0001f600 wörld",               # 0x05 STR
    b"\x00\xff\x7f wire",                   # 0x06 BYTES
    [1, "two", [3.0, None]],                # 0x07 LIST
    (1, (2, ()), b"x"),                     # 0x08 TUPLE
    {"k": [1], 2: {"n": None}},             # 0x09 DICT
    {1, "a", b"b", False},                  # 0x0A SET
    secure({"pin": 1234}, label="vault"),   # 0x0B SECURE
)


def _arena(capacity: int = 1 << 16) -> SharedBufferArena:
    return SharedBufferArena(fresh_platform(), capacity=capacity)


class TestArenaRoundTripEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_payloads_decode_identically_to_classic(self, seed):
        rng = random.Random(seed)
        arena = _arena(1 << 20)
        for _ in range(150):
            value = random_payload(rng)
            classic = wire.loads(wire.dumps(value))
            view = wire.dumps_into(value, arena)
            try:
                assert wire.loads_inplace(view) == classic
            finally:
                view.release()

    @pytest.mark.parametrize("value", TAGGED_VALUES, ids=lambda v: type(v).__name__)
    def test_every_wire_tag_round_trips_through_the_arena(self, value):
        arena = _arena()
        view = wire.dumps_into(value, arena)
        decoded = wire.loads_inplace(view)
        assert decoded == wire.loads(wire.dumps(value))
        view.release()

    def test_staged_bytes_equal_classic_wire_bytes(self):
        arena = _arena()
        for value in TAGGED_VALUES:
            view = wire.dumps_into(value, arena)
            staged = bytes(view.acquire())
            assert staged == wire.dumps(value)
            view.release()

    def test_secure_value_keeps_label_and_provenance_in_place(self):
        arena = _arena()
        view = wire.dumps_into(secure("s3cret", label="api-key"), arena)
        decoded = wire.loads_inplace(view)
        assert isinstance(decoded, SecureValue)
        assert decoded.label == "api-key"
        assert decoded.provenance == ("secure:api-key",)
        view.release()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_two_runs_same_seed_stage_identical_bytes(self, seed):
        def staged_corpus():
            rng = random.Random(seed)
            arena = _arena(1 << 20)
            blobs = []
            for _ in range(60):
                view = wire.dumps_into(random_payload(rng), arena)
                blobs.append(bytes(view.acquire()))
                view.release()
            return blobs

        assert staged_corpus() == staged_corpus()


class TestNestedZeroLengthContainers:
    """Regression pins for the empty-container paths (satellite 4)."""

    EMPTIES = ([], (), {}, set(), [[], (), {}], {"a": [], "b": ({},)}, ((),))

    @pytest.mark.parametrize("value", EMPTIES, ids=repr)
    def test_round_trip_via_classic_loads(self, value):
        assert wire.loads(wire.dumps(value)) == value

    @pytest.mark.parametrize("value", EMPTIES, ids=repr)
    def test_round_trip_via_loads_inplace(self, value):
        arena = _arena()
        view = wire.dumps_into(value, arena)
        assert wire.loads_inplace(view) == value
        view.release()

    def test_empty_containers_encode_exactly_once(self):
        # The encoder appends tag + zero count in one pass; nested
        # empties must not grow the buffer beyond one header each.
        encoded = wire.dumps([[], (), {}])
        # header(3) + list tag+count(2) + 3 x (tag + varint 0)
        assert len(encoded) == 3 + 2 + 3 * 2


class TestAdversarialViews:
    def test_truncated_view_raises_before_decoding(self):
        arena = _arena()
        view = wire.dumps_into([1, 2, 3], arena)
        region = view.region
        truncated = BorrowedView(
            arena,
            ArenaRegion(region.region_id, region.offset,
                        region.length - 1, region.generation),
        )
        with pytest.raises(ArenaError):
            wire.loads_inplace(truncated)
        # The honest view is untouched by the failed probe.
        assert wire.loads_inplace(view) == [1, 2, 3]
        view.release()

    def test_overlapping_view_raises(self):
        arena = _arena()
        first = wire.dumps_into("abcdef", arena)
        second = wire.dumps_into("ghijkl", arena)
        overlap = BorrowedView(
            arena,
            ArenaRegion(
                first.region.region_id,
                first.region.offset,
                first.region.length + second.region.length,
                first.region.generation,
            ),
        )
        with pytest.raises(ArenaError):
            overlap.acquire()
        first.release()
        second.release()

    def test_fabricated_region_raises(self):
        arena = _arena()
        ghost = BorrowedView(arena, ArenaRegion(999, 0, 8, arena.generation))
        with pytest.raises(ArenaError):
            ghost.acquire()

    def test_stale_generation_raises_stale_view_error(self):
        arena = _arena()
        view = wire.dumps_into({"k": 1}, arena)
        arena.invalidate("test")
        with pytest.raises(StaleViewError):
            wire.loads_inplace(view)

    def test_released_view_cannot_be_acquired(self):
        arena = _arena()
        view = wire.dumps_into([1], arena)
        view.release()
        with pytest.raises(SerializationError):
            view.acquire()

    def test_all_arena_errors_are_typed_serialization_errors(self):
        assert issubclass(ArenaError, SerializationError)
        assert issubclass(StaleViewError, ArenaError)
        assert issubclass(ArenaCapacityError, ArenaError)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_region_mutations_never_crash(self, seed):
        rng = random.Random(seed)
        arena = _arena()
        view = wire.dumps_into(list(range(50)), arena)
        region = view.region
        for _ in range(100):
            mutated = ArenaRegion(
                region.region_id + rng.choice((0, 1, -1)),
                max(0, region.offset + rng.randint(-4, 4)),
                max(0, region.length + rng.randint(-4, 4)),
                region.generation + rng.choice((0, 1, -1)),
            )
            probe = BorrowedView(arena, mutated)
            if mutated == region:
                assert wire.loads_inplace(probe) == list(range(50))
            else:
                with pytest.raises(SerializationError):
                    probe.acquire()
        view.release()


class TestArenaLifecycle:
    def test_decoded_values_do_not_alias_the_buffer(self):
        arena = _arena()
        view = wire.dumps_into(b"precious payload", arena)
        decoded = wire.loads_inplace(view)
        view.release()
        # Scribble over the whole pinned buffer post-reclaim.
        next_view = wire.dumps_into(b"\xde\xad" * 40, arena)
        assert decoded == b"precious payload"
        next_view.release()

    def test_last_release_reclaims_and_bumps_generation(self):
        arena = _arena()
        generation = arena.generation
        first = wire.dumps_into([1], arena)
        second = wire.dumps_into([2], arena)
        first.release()
        assert arena.generation == generation  # one region still live
        assert arena.bytes_in_use > 0
        second.release()
        assert arena.generation == generation + 1
        assert arena.bytes_in_use == 0
        assert arena.live_regions == 0

    def test_capacity_exhaustion_is_typed_and_recoverable(self):
        arena = _arena(capacity=64)
        with pytest.raises(ArenaCapacityError):
            wire.dumps_into("x" * 200, arena)
        view = wire.dumps_into("fits", arena)
        assert wire.loads_inplace(view) == "fits"
        view.release()

    def test_release_from_old_generation_is_a_noop(self):
        arena = _arena()
        view = wire.dumps_into([1], arena)
        arena.invalidate("test")
        in_use = arena.bytes_in_use
        generation = arena.generation
        view.release()  # stale release must not reclaim again
        assert arena.bytes_in_use == in_use
        assert arena.generation == generation
