"""Tests for the Plinius-style secure ML training application."""

import numpy as np
import pytest

from repro.apps.plinius import (
    PLINIUS_CLASSES,
    DataLoader,
    TrainingError,
    TrustedModel,
    train,
    write_dataset,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.core.proxy import is_proxy

TRUE_WEIGHTS = [1.5, -2.0, 0.75]


@pytest.fixture()
def dataset(tmp_path):
    path = str(tmp_path / "train.bin")
    write_dataset(path, TRUE_WEIGHTS, n_samples=640, noise=0.01, seed=3)
    return path


class TestDataset:
    def test_header(self, dataset):
        with native_session():
            n_samples, n_features = DataLoader(dataset).read_header()
        assert (n_samples, n_features) == (640, 3)

    def test_batches_cover_rows(self, dataset):
        with native_session():
            loader = DataLoader(dataset)
            first = loader.load_batch(0, 32)
            last = loader.load_batch(19, 32)
        assert len(first) == len(last) == 32
        assert len(first[0]) == 4  # 3 features + label

    def test_batch_beyond_dataset_rejected(self, dataset):
        with native_session():
            with pytest.raises(TrainingError):
                DataLoader(dataset).load_batch(100, 32)

    def test_truncated_dataset_rejected(self, tmp_path):
        path = str(tmp_path / "bad.bin")
        with open(path, "wb") as handle:
            handle.write(b"\x01")
        with native_session():
            with pytest.raises(TrainingError):
                DataLoader(path).read_header()


class TestTraining:
    def test_recovers_true_weights(self, dataset):
        with native_session():
            weights, mse = train(dataset, n_features=3, epochs=8)
        assert np.allclose(weights, TRUE_WEIGHTS, atol=0.05)
        assert mse < 0.01

    def test_loss_decreases(self, dataset):
        with native_session():
            _, early = train(dataset, n_features=3, epochs=1)
            _, late = train(dataset, n_features=3, epochs=8)
        assert late < early

    def test_feature_mismatch_rejected(self, dataset):
        with native_session():
            with pytest.raises(TrainingError):
                train(dataset, n_features=5)

    def test_invalid_model_parameters(self):
        with native_session():
            with pytest.raises(TrainingError):
                TrustedModel(0)
            with pytest.raises(TrainingError):
                TrustedModel(3, learning_rate=0)
            with pytest.raises(TrainingError):
                TrustedModel(3).train_batch([])

    def test_predict_uses_weights(self):
        with native_session():
            model = TrustedModel(2)
            model.weights = [2.0, -1.0]
            assert model.predict([3.0, 1.0]) == pytest.approx(5.0)


class TestPartitionedTraining:
    def test_model_in_enclave_loader_outside(self, dataset):
        app = Partitioner(PartitionOptions(name="plinius")).partition(
            list(PLINIUS_CLASSES)
        )
        with app.start() as session:
            model = TrustedModel(3)
            loader = DataLoader(dataset)
            assert is_proxy(model)
            assert not is_proxy(loader)

    def test_partitioned_training_converges(self, dataset):
        app = Partitioner(PartitionOptions(name="plinius_run")).partition(
            list(PLINIUS_CLASSES)
        )
        with app.start() as session:
            weights, mse = train(dataset, n_features=3, epochs=6)
            assert np.allclose(weights, TRUE_WEIGHTS, atol=0.08)
            # Every batch crossed into the enclave once.
            assert session.transition_stats.ecalls >= 6 * (640 // 32)

    def test_same_result_partitioned_and_native(self, dataset):
        app = Partitioner(PartitionOptions(name="plinius_eq")).partition(
            list(PLINIUS_CLASSES)
        )
        with app.start():
            part_weights, _ = train(dataset, n_features=3, epochs=4)
        with native_session():
            native_weights, _ = train(dataset, n_features=3, epochs=4)
        assert np.allclose(part_weights, native_weights, atol=1e-12)
