"""Tests for the PalDB-like store: format, writer, reader, workload."""

import os

import pytest

from repro.apps.paldb import KvWorkload, StoreReader, StoreWriter, hash_key
from repro.apps.paldb import format as fmt
from repro.apps.paldb.workload import (
    PALDB_RTWU_CLASSES,
    PALDB_RUWT_CLASSES,
    TrustedDBReader,
    TrustedDBWriter,
    UntrustedDBReader,
    UntrustedDBWriter,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.proxy import is_proxy
from repro.core.shim import ShimLibc
from repro.errors import StoreError


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "store.paldb")


def write_store(path, pairs, libc):
    with StoreWriter(path, libc) as writer:
        for key, value in pairs:
            writer.put(key, value)


class TestFormat:
    def test_header_round_trip(self):
        header = fmt.StoreHeader(
            n_keys=10, n_buckets=16, index_offset=1000, data_offset=40
        )
        assert fmt.StoreHeader.unpack(header.pack()) == header

    def test_bad_magic_rejected(self):
        with pytest.raises(StoreError):
            fmt.StoreHeader.unpack(b"NOTMAGIC" + b"\x00" * 32)

    def test_truncated_header_rejected(self):
        with pytest.raises(StoreError):
            fmt.StoreHeader.unpack(b"\x00" * 10)

    def test_hash_key_deterministic_and_nonzero(self):
        assert hash_key(b"abc") == hash_key(b"abc")
        assert hash_key(b"") != 0
        assert hash_key(b"abc") != hash_key(b"abd")

    def test_bucket_count_load_factor(self):
        for n in (1, 10, 100, 5000):
            buckets = fmt.bucket_count(n)
            assert buckets & (buckets - 1) == 0  # power of two
            assert n / buckets <= fmt.LOAD_FACTOR

    def test_record_round_trip(self):
        key, value = b"key", b"some value bytes"
        assert fmt.unpack_record(fmt.pack_record(key, value)) == (key, value)

    def test_record_with_empty_value(self):
        assert fmt.unpack_record(fmt.pack_record(b"k", b"")) == (b"k", b"")

    def test_truncated_record_rejected(self):
        with pytest.raises(StoreError):
            fmt.unpack_record(b"\x01")


class TestStoreRoundTrip:
    def test_write_then_read(self, store_path):
        pairs = [(f"key{i}".encode(), f"value{i}".encode()) for i in range(200)]
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, pairs, libc)
            reader = StoreReader(store_path, libc)
            assert reader.n_keys == 200
            for key, value in pairs:
                assert reader.get(key) == value

    def test_missing_key_returns_none(self, store_path):
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, [(b"present", b"x")], libc)
            reader = StoreReader(store_path, libc)
            assert reader.get(b"absent") is None
            assert b"present" in reader
            assert b"absent" not in reader

    def test_duplicate_key_rejected(self, store_path):
        with native_session() as session:
            writer = StoreWriter(store_path, ShimLibc(session.ctx))
            writer.put(b"k", b"v1")
            with pytest.raises(StoreError):
                writer.put(b"k", b"v2")
            writer.close()

    def test_write_after_close_rejected(self, store_path):
        with native_session() as session:
            writer = StoreWriter(store_path, ShimLibc(session.ctx))
            writer.put(b"k", b"v")
            writer.close()
            with pytest.raises(StoreError):
                writer.put(b"k2", b"v2")

    def test_close_idempotent(self, store_path):
        with native_session() as session:
            writer = StoreWriter(store_path, ShimLibc(session.ctx))
            writer.close()
            writer.close()

    def test_non_bytes_rejected(self, store_path):
        with native_session() as session:
            writer = StoreWriter(store_path, ShimLibc(session.ctx))
            with pytest.raises(StoreError):
                writer.put("str", b"v")

    def test_items_iterates_all(self, store_path):
        pairs = {f"k{i}".encode(): f"v{i}".encode() for i in range(50)}
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, pairs.items(), libc)
            reader = StoreReader(store_path, libc)
            assert dict(reader.items()) == pairs

    def test_empty_store(self, store_path):
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, [], libc)
            reader = StoreReader(store_path, libc)
            assert reader.n_keys == 0
            assert reader.get(b"anything") is None

    def test_colliding_bucket_probe(self, store_path):
        """Linear probing: many keys that share buckets still resolve."""
        pairs = [(f"{i}".encode(), f"{i * 7}".encode()) for i in range(500)]
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, pairs, libc)
            reader = StoreReader(store_path, libc)
            for key, value in pairs:
                assert reader.get(key) == value

    def test_writes_are_counted_as_syscalls(self, store_path):
        with native_session() as session:
            libc = ShimLibc(session.ctx)
            write_store(store_path, [(b"a", b"1"), (b"b", b"2")], libc)
            # One write per record plus index + header writes.
            assert libc.stats.writes >= 4


class TestWorkload:
    def test_generate_unique_keys(self):
        keys, values = KvWorkload(n_keys=500).generate()
        assert len(keys) == len(set(keys)) == 500
        assert all(len(v) == 128 for v in values)

    def test_generate_deterministic_by_seed(self):
        a = KvWorkload(n_keys=50, seed=1).generate()
        b = KvWorkload(n_keys=50, seed=1).generate()
        c = KvWorkload(n_keys=50, seed=2).generate()
        assert a == b
        assert a != c

    def test_keys_are_integer_strings(self):
        keys, _ = KvWorkload(n_keys=20).generate()
        for key in keys:
            assert 0 <= int(key) < 2**31


class TestPartitionedSchemes:
    def test_rtwu_reader_is_trusted_proxy(self, store_path):
        app = Partitioner(PartitionOptions(name="t_rtwu")).partition(
            list(PALDB_RTWU_CLASSES)
        )
        keys, values = KvWorkload(n_keys=100).generate()
        with app.start() as session:
            writer = UntrustedDBWriter(store_path)
            assert not is_proxy(writer)
            writer.write_all(keys, values)
            reader = TrustedDBReader(store_path)
            assert is_proxy(reader)
            found, _ = reader.read_all(keys)
            assert found == 100

    def test_ruwt_writer_ocalls_dominate(self, store_path):
        app = Partitioner(PartitionOptions(name="t_ruwt")).partition(
            list(PALDB_RUWT_CLASSES)
        )
        keys, values = KvWorkload(n_keys=200).generate()
        with app.start() as session:
            TrustedDBWriter(store_path).write_all(keys, values)
            ocalls = session.platform.ledger.count("transition.ocall")
            # At least one write ocall per record relayed out.
            assert ocalls >= 200
            found, _ = UntrustedDBReader(store_path).read_all(keys)
            assert found == 200

    def test_read_all_checksum_counts_lengths(self, store_path):
        keys, values = KvWorkload(n_keys=10).generate()
        with native_session():
            UntrustedDBWriter(store_path).write_all(keys, values)
            found, checksum = UntrustedDBReader(store_path).read_all(keys)
        assert found == 10
        assert checksum == (10 * 128) & 0xFFFFFFFF
