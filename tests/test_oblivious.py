"""Tests for the Opaque-style oblivious operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.oblivious import (
    OBLIVIOUS_CLASSES,
    ObliviousError,
    ObliviousTable,
    bitonic_sort,
    oblivious_filter,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.core.proxy import is_proxy


class TestBitonicSort:
    def test_sorts(self):
        assert bitonic_sort([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_empty_and_singleton(self):
        assert bitonic_sort([]) == []
        assert bitonic_sort([5.0]) == [5.0]

    def test_non_power_of_two_lengths(self):
        for n in (3, 5, 6, 7, 9, 100):
            values = list(np.random.RandomState(n).standard_normal(n))
            assert bitonic_sort(values) == sorted(values)

    def test_duplicates(self):
        values = [2.0, 1.0, 2.0, 1.0, 2.0]
        assert bitonic_sort(values) == sorted(values)

    @settings(max_examples=60)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32)))
    def test_property_matches_sorted(self, values):
        assert bitonic_sort(values) == sorted(values)

    def test_access_pattern_is_data_independent(self):
        """Opaque's defining property: the compare-exchange trace is a
        function of the input size only."""
        rng = np.random.RandomState(0)
        trace_a, trace_b, trace_c = [], [], []
        bitonic_sort(list(rng.standard_normal(37)), trace=trace_a)
        bitonic_sort(list(rng.uniform(1e6, 2e6, 37)), trace=trace_b)
        bitonic_sort(sorted(rng.standard_normal(37)), trace=trace_c)
        assert trace_a == trace_b == trace_c
        assert len(trace_a) > 0

    def test_access_pattern_changes_with_size_only(self):
        trace_small, trace_large = [], []
        bitonic_sort([1.0] * 8, trace=trace_small)
        bitonic_sort([1.0] * 16, trace=trace_large)
        assert trace_small != trace_large


class TestObliviousFilter:
    def test_filters_correctly(self):
        values = [5.0, 1.0, 7.0, 3.0, 9.0]
        matches, count = oblivious_filter(values, lambda v: v > 4)
        assert count == 3
        assert sorted(matches) == [5.0, 7.0, 9.0]

    def test_empty_selectivity(self):
        matches, count = oblivious_filter([1.0, 2.0], lambda v: v > 10)
        assert (matches, count) == ([], 0)

    def test_full_selectivity(self):
        matches, count = oblivious_filter([2.0, 1.0], lambda v: True)
        assert count == 2
        assert sorted(matches) == [1.0, 2.0]


class TestObliviousTable:
    def test_partitioned_sort_and_filter(self):
        app = Partitioner(PartitionOptions(name="opaque")).partition(
            list(OBLIVIOUS_CLASSES)
        )
        with app.start() as session:
            table = ObliviousTable([4.0, 1.0, 3.0, 2.0])
            assert is_proxy(table)
            assert table.sort() == [1.0, 2.0, 3.0, 4.0]
            assert table.filter_greater_than(2.0) == [3.0, 4.0]

    def test_sort_cost_superlinear(self):
        """The price of obliviousness: n log^2 n, not n log n."""
        def sort_cost(n):
            with native_session() as session:
                table = ObliviousTable(list(np.random.RandomState(1).standard_normal(n)))
                before = session.platform.now_s
                table.sort()
                return session.platform.now_s - before

        small, large = sort_cost(1024), sort_cost(4096)
        # 4x the rows cost more than 4x the time (log^2 growth).
        assert large > small * 4.5

    def test_invalid_input_rejected(self):
        with native_session():
            with pytest.raises(ObliviousError):
                ObliviousTable("not-a-list")

    def test_filter_cost_independent_of_selectivity(self):
        """Same size, wildly different selectivity, same virtual cost."""
        def filter_cost(threshold):
            with native_session() as session:
                table = ObliviousTable([float(i) for i in range(512)])
                before = session.platform.now_s
                table.filter_greater_than(threshold)
                return session.platform.now_s - before

        assert filter_cost(-1.0) == pytest.approx(filter_cost(510.0), rel=1e-9)
