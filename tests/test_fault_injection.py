"""Failure-injection tests: what happens when parts of the system die
or misbehave mid-run."""

import gc

import pytest

from repro.apps.bank import BANK_CLASSES, Account, Person
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.proxy import is_proxy, proxy_hash
from repro.core.shim import ShimLibc
from repro.costs import fresh_platform
from repro.errors import (
    EnclaveError,
    HeapError,
    RegistryError,
    RmiError,
    SerializationError,
    ShimError,
    StoreError,
)
from repro.runtime.context import ExecutionContext, Location
from repro.runtime.heap import SimHeap
from repro.sgx.enclave import EnclaveState


@pytest.fixture()
def app():
    return Partitioner(PartitionOptions(name="fault")).partition(
        BANK_CLASSES, main="Main.main"
    )


class TestEnclaveDeath:
    def test_rmi_after_enclave_destroyed(self, app):
        with app.start() as session:
            account = Account("x", 1)
            session.enclave.destroy()
            with pytest.raises(EnclaveError):
                account.get_balance()
            # Re-destroying at session exit must not mask the state.
            session.enclave.state = EnclaveState.INITIALIZED  # allow teardown

    def test_proxy_creation_after_enclave_destroyed(self, app):
        with app.start() as session:
            session.enclave.destroy()
            with pytest.raises(EnclaveError):
                Account("too-late", 1)
            session.enclave.state = EnclaveState.INITIALIZED


class TestRegistryFaults:
    def test_stale_proxy_after_forced_release(self, app):
        """A mirror force-released while its proxy lives: the next RMI
        fails loudly instead of acting on a ghost object."""
        with app.start() as session:
            account = Account("x", 5)
            registry = session.runtime.state_of(Side.TRUSTED).registry
            registry.remove(proxy_hash(account))
            with pytest.raises(RegistryError):
                account.get_balance()

    def test_hash_collision_detected(self, app):
        with app.start() as session:
            account = Account("x", 5)
            registry = session.runtime.state_of(Side.TRUSTED).registry
            with pytest.raises(RegistryError):
                registry.add(proxy_hash(account), object())

    def test_gc_release_survives_cleared_registry(self, app):
        """Scan racing an explicit clear: discard semantics keep the
        helper from crashing on already-gone mirrors."""
        with app.start() as session:
            account = Account("x", 5)
            session.runtime.state_of(Side.TRUSTED).registry.clear()
            del account
            gc.collect()
            released = session.gc_helpers[Side.UNTRUSTED].scan_once()
            assert released == 0  # nothing left to release; no crash


class TestSerializationFaults:
    def test_unpicklable_argument_fails_cleanly(self, app):
        with app.start() as session:
            registry_before = session.runtime.state_of(Side.TRUSTED).registry.live_count()
            with pytest.raises(SerializationError):
                Account(lambda: None, 1)  # closure as owner: not serialisable

    def test_error_inside_relay_propagates(self, app):
        with app.start():
            account = Account("x", 5)
            with pytest.raises(TypeError):
                account.update_balance("not-a-number")
            # The mirror is still usable afterwards.
            account.update_balance(1)
            assert account.get_balance() == 6


class TestHeapFaults:
    def test_enclave_heap_exhaustion(self):
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.ENCLAVE)
        heap = SimHeap(ctx, max_bytes=1024)
        heap.alloc(900)
        with pytest.raises(HeapError):
            heap.alloc(900)

    def test_gc_makes_room_again(self):
        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.HOST)
        heap = SimHeap(ctx, max_bytes=1000, gc_threshold=1.0)
        ref = heap.alloc(800)
        heap.free(ref)
        heap.collect()
        heap.alloc(800)  # fits after collection


class TestShimFaults:
    def test_open_missing_directory_fails(self):
        platform = fresh_platform()
        libc = ShimLibc(ExecutionContext(platform, Location.HOST))
        with pytest.raises(OSError):
            libc.fopen("/nonexistent-dir-xyz/file.bin", "wb")

    def test_corrupt_store_header(self, tmp_path):
        from repro.apps.paldb.reader import StoreReader
        from repro.baselines import native_session

        path = str(tmp_path / "corrupt.paldb")
        with open(path, "wb") as handle:
            handle.write(b"JUNKJUNK" + b"\x00" * 64)
        with native_session() as session:
            with pytest.raises(StoreError):
                StoreReader(path, ShimLibc(session.ctx))

    def test_truncated_store_index(self, tmp_path):
        from repro.apps.paldb import format as fmt
        from repro.apps.paldb.reader import StoreReader
        from repro.baselines import native_session

        path = str(tmp_path / "trunc.paldb")
        header = fmt.StoreHeader(
            n_keys=100, n_buckets=1 << 20, index_offset=40, data_offset=40
        )
        with open(path, "wb") as handle:
            handle.write(header.pack())
        with native_session() as session:
            with pytest.raises(StoreError):
                StoreReader(path, ShimLibc(session.ctx))


class TestProxyMisuse:
    def test_direct_proxy_instantiation_rejected(self, app):
        from repro.core.proxy import make_proxy_class

        with app.start():
            proxy_cls = make_proxy_class(Account)
            with pytest.raises(Exception):
                proxy_cls("x", 1)

    def test_proxy_hash_on_non_proxy_rejected(self):
        with pytest.raises(RmiError):
            proxy_hash(object())

    def test_static_on_proxy_rejected(self, app):
        from repro.core.proxy import construct_proxy

        class WithStatic:
            @staticmethod
            def helper():
                return 1

        with app.start() as session:
            proxy = construct_proxy(
                WithStatic, session.runtime, Side.TRUSTED, 123
            )
            with pytest.raises(RmiError):
                proxy.helper()
