"""Chaos regression tests for the arena fast path (satellite 3).

The arena must not weaken any fault-tolerance contract the classic
path honours:

- a seeded enclave crash mid-arena-batch refuses or replays exactly
  like the same crash on the classic path (same coordinator stats,
  same surviving state), and the staged views are released either way;
- shard loss bumps the arena generation, so a borrowed view staged
  before the loss fails with :class:`~repro.errors.StaleViewError`
  instead of silently reading reused untrusted memory;
- the open arena batch drains against live mirrors *before* shard
  teardown, exactly like the classic drain barrier.
"""

from __future__ import annotations

import pytest

from repro.batching import BatchPolicy, attach_batching
from repro.concurrency import ShardedEnclaveGroup
from repro.core import Partitioner, PartitionOptions, Side, wire
from repro.core.arena import attach_arena
from repro.errors import NonIdempotentReplayError, StaleViewError
from repro.experiments.micro import ARENA_MICRO_CLASSES, TrustedSink
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    RetryPolicy,
    attach_recovery,
)
from tests.helpers import assert_ledgers_identical, platform_ledger

_CRASH_PLAN = dict(
    seed=5,
    rules=[
        FaultRule(
            FaultKind.ENCLAVE_CRASH,
            routine="batch_TrustedSink_push",
            at_call=1,
            phase="mid",
            max_fires=1,
        )
    ],
)


def _crash_mid_batch(with_arena: bool, idempotent: bool):
    """One seeded run: 6 staged pushes, enclave crash mid-flush.

    Returns ``(platform, arena, coordinator, pushed, raised)`` where
    ``raised`` records whether the flush surfaced a typed refusal.
    """
    app = Partitioner(PartitionOptions(name="arena_chaos")).partition(
        list(ARENA_MICRO_CLASSES)
    )
    with app.start() as session:
        patterns = ("batch_*",) if idempotent else ()
        coordinator = attach_recovery(
            session,
            policy=RetryPolicy(max_attempts=4, idempotent_patterns=patterns),
        )
        attach_batching(
            session,
            BatchPolicy(
                routines=("relay_TrustedSink_push",),
                max_batch=64,
                window_ns=1e15,
            ),
        )
        arena = attach_arena(session) if with_arena else None
        with session.on_side(Side.UNTRUSTED):
            sink = TrustedSink()
            for index in range(6):
                sink.push([f"payload-{index}"])
            session.platform.enable_fault_injection(FaultInjector(**_CRASH_PLAN))
            raised = False
            try:
                session.runtime.batcher.flush()
            except NonIdempotentReplayError:
                raised = True
            session.platform.disable_fault_injection()
            pushed = sink.total_pushed()
    return app.platform, arena, coordinator, pushed, raised


class TestMidBatchCrashParity:
    def test_idempotent_crash_replays_like_classic(self):
        _cp, _none, classic_coord, classic_pushed, classic_raised = (
            _crash_mid_batch(False, idempotent=True)
        )
        _ap, arena, arena_coord, arena_pushed, arena_raised = (
            _crash_mid_batch(True, idempotent=True)
        )
        assert not classic_raised and not arena_raised
        assert arena_coord.stats.recoveries == classic_coord.stats.recoveries >= 1
        assert arena_coord.stats.calls_refused == classic_coord.stats.calls_refused == 0
        # Replay-by-contract: both paths land the same call-effects.
        assert arena_pushed == classic_pushed
        # The replay re-read live staged regions; the flush's release
        # barrier then reclaimed every view despite the mid-crash.
        assert arena.stats.staged_values == 6
        assert arena.live_regions == 0
        assert arena.bytes_in_use == 0

    def test_non_idempotent_crash_refuses_like_classic(self):
        _cp, _none, classic_coord, classic_pushed, classic_raised = (
            _crash_mid_batch(False, idempotent=False)
        )
        _ap, arena, arena_coord, arena_pushed, arena_raised = (
            _crash_mid_batch(True, idempotent=False)
        )
        assert classic_raised and arena_raised
        assert (
            arena_coord.stats.calls_refused
            == classic_coord.stats.calls_refused
            == 6
        )
        assert arena_pushed == classic_pushed
        # Typed refusal must not leak staged regions either.
        assert arena.live_regions == 0
        assert arena.bytes_in_use == 0

    @pytest.mark.parametrize("idempotent", (True, False), ids=("replay", "refuse"))
    def test_seeded_chaos_run_is_deterministic(self, idempotent):
        first = _crash_mid_batch(True, idempotent)
        second = _crash_mid_batch(True, idempotent)
        assert_ledgers_identical(
            platform_ledger(first[0]), platform_ledger(second[0])
        )
        assert first[1].stats.to_dict() == second[1].stats.to_dict()
        assert first[2].stats.to_dict() == second[2].stats.to_dict()
        assert first[3] == second[3] and first[4] == second[4]


class TestShardLossInvalidation:
    def _group_session(self, name: str):
        app = Partitioner(PartitionOptions(name=name)).partition(
            list(ARENA_MICRO_CLASSES)
        )
        return app, app.start()

    def test_lose_shard_bumps_generation_and_stales_held_views(self):
        app, session_cm = self._group_session("arena_chaos_stale")
        with session_cm as session:
            group = ShardedEnclaveGroup(session, 2)
            arena = attach_arena(session)
            view = wire.dumps_into(["in-flight"], arena)
            generation = arena.generation
            group.lose_shard(group.shard_names[1])
            assert arena.generation > generation
            with pytest.raises(StaleViewError):
                wire.loads_inplace(view)
            with pytest.raises(StaleViewError):
                view.acquire()
            # Invalidation reclaimed the pinned pages wholesale.
            assert arena.live_regions == 0
            assert arena.bytes_in_use == 0

    def test_arena_batch_drains_before_shard_teardown(self):
        app, session_cm = self._group_session("arena_chaos_drain")
        with session_cm as session:
            group = ShardedEnclaveGroup(session, 2)
            lost = group.shard_names[1]
            lost_sink = group.create_pinned("lost", TrustedSink)
            root_sink = None
            with group.pinned(group.shard_names[0]):
                root_sink = TrustedSink()
            group.register_restore(
                "lost", lambda: group.create_pinned("lost", TrustedSink)
            )
            coalescer = attach_batching(
                session,
                BatchPolicy(
                    routines=("relay_TrustedSink_push",),
                    max_batch=64,
                    window_ns=1e15,
                ),
            )
            arena = attach_arena(session)
            with session.on_side(Side.UNTRUSTED):
                for index in range(3):
                    lost_sink.push([f"lost-{index}"])
                for index in range(2):
                    root_sink.push([f"root-{index}"])
                assert coalescer.pending == 5
                assert arena.live_regions == 5  # staged, not yet crossed
                group.lose_shard(lost)
                # Drain barrier fired once, landed everything against
                # live mirrors, released every staged view, and only
                # then invalidated the arena.
                assert coalescer.pending == 0
                assert coalescer.stats.flushes.get("barrier:shard-loss") == 1
                assert arena.live_regions == 0
                assert root_sink.total_pushed() == 2
            coalescer.detach()

    def test_shard_loss_without_arena_batches_is_a_generation_noop_for_state(self):
        # Losing a shard with nothing staged must still leave the
        # arena usable for the survivors' next batch.
        app, session_cm = self._group_session("arena_chaos_reuse")
        with session_cm as session:
            group = ShardedEnclaveGroup(session, 2)
            attach_batching(
                session,
                BatchPolicy(
                    routines=("relay_TrustedSink_push",),
                    max_batch=8,
                    window_ns=1e15,
                ),
            )
            arena = attach_arena(session)
            group.lose_shard(group.shard_names[1])
            with session.on_side(Side.UNTRUSTED):
                with group.pinned(group.shard_names[0]):
                    sink = TrustedSink()
                sink.push(["after-loss"])
                session.runtime.batcher.flush()
                assert sink.total_pushed() == 1
            assert arena.stats.staged_values == 1
            assert arena.live_regions == 0
