"""Observability layer: tracer, metrics, exporters, recorder, artifacts."""

import json

import pytest

from repro.costs.ledger import CostLedger, LedgerEntryView
from repro.costs.platform import Platform, fresh_platform
from repro.obs import artifacts as obs_artifacts
from repro.obs import export as obs_export
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.recorder import RunRecorder, recording
from repro.obs.tracer import NULL_TRACER, SpanTracer


# -- span tracer ----------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_virtual_timestamps(self):
        platform = Platform()
        obs = platform.enable_observability()
        tracer = obs.tracer

        with tracer.span("outer", attrs={"who": "test"}) as outer:
            platform.charge_ns("work.a", 100.0)
            with tracer.span("inner") as inner:
                platform.charge_ns("work.b", 50.0)
            platform.charge_ns("work.c", 25.0)

        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        # Timestamps are virtual nanoseconds from the platform clock.
        assert spans["outer"].start_ns == 0.0
        assert spans["outer"].end_ns == 175.0
        assert spans["inner"].start_ns == 100.0
        assert spans["inner"].end_ns == 150.0
        assert spans["inner"].duration_ns == 50.0
        # Completion order: inner closes before outer.
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["inner", "outer"]

    def test_instant_events_carry_parent(self):
        platform = Platform()
        tracer = platform.enable_observability().tracer
        with tracer.span("parent") as parent:
            marker = tracer.instant("tick", attrs={"n": 1})
        assert marker.parent_id == parent.span_id
        assert marker.kind == "instant"
        assert marker.duration_ns == 0.0

    def test_ring_buffer_drops_oldest_and_counts(self):
        platform = Platform()
        tracer = SpanTracer(platform.clock, capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [e.name for e in tracer.events()] == ["e6", "e7", "e8", "e9"]
        assert tracer.sequence == 10

    def test_ring_wrap_with_mixed_spans_and_instants(self):
        """Satellite audit: wrap drops oldest regardless of kind, the
        sequence counter keeps counting, and nothing drops before the
        ring is actually full."""
        platform = Platform()
        tracer = SpanTracer(platform.clock, capacity=3)
        with tracer.span("a"):
            platform.charge_ns("w", 1.0)
        tracer.instant("m1")
        tracer.instant("m2")
        assert tracer.dropped == 0  # exactly full, nothing dropped yet
        with tracer.span("b"):
            platform.charge_ns("w", 1.0)
        assert tracer.dropped == 1  # the oldest ("a") fell off
        assert [e.name for e in tracer.events()] == ["m1", "m2", "b"]
        assert tracer.sequence == 4
        # finished_spans filters instants from the surviving window.
        assert [s.name for s in tracer.finished_spans()] == ["b"]

    def test_listener_sees_all_events_despite_ring(self):
        platform = Platform()
        tracer = SpanTracer(platform.clock, capacity=2)
        seen = []
        tracer.add_listener(lambda s: seen.append(s.name))
        for i in range(5):
            tracer.instant(f"e{i}")
        assert seen == [f"e{i}" for i in range(5)]

    def test_null_tracer_is_default_and_inert(self):
        platform = Platform()
        assert platform.obs is None
        assert platform.tracer is NULL_TRACER
        with platform.tracer.span("anything", attrs={"x": 1}) as span:
            span.set_attr("y", 2)
        assert platform.tracer.events() == []

    def test_span_records_exception_attr(self):
        platform = Platform()
        tracer = platform.enable_observability().tracer
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert span.attrs["error"] == "ValueError"
        assert span.closed


# -- metrics ---------------------------------------------------------------------


class TestMetrics:
    def test_histogram_percentiles_uniform(self):
        hist = Histogram("t")
        for v in range(1, 1001):
            hist.observe(v)
        assert hist.count == 1000
        assert hist.sum == 500500
        assert hist.min == 1 and hist.max == 1000
        # Linear interpolation within power-of-two buckets keeps the
        # estimate well inside the bucket-width error bound.
        assert abs(hist.percentile(50) - 500) / 500 < 0.10
        assert abs(hist.percentile(95) - 950) / 950 < 0.10
        assert abs(hist.percentile(99) - 990) / 990 < 0.10
        # Extremes are exact (clamped to observed min/max).
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 1000

    def test_histogram_bucket_bounds(self):
        assert Histogram.bucket_index(1) == 0
        assert Histogram.bucket_index(2.0) == 1
        assert Histogram.bucket_index(1023.9) == 9
        assert Histogram.bucket_bounds(3) == (8.0, 16.0)

    def test_histogram_boundary_at_exact_powers_of_two(self):
        """Satellite audit: values just *below* an exact power of two.

        ``floor(log2(v))`` computed through ``math.log2`` rounds
        ``nextafter(2**k, 0)`` up to ``k`` for large ``k``, landing the
        value one bucket too high; the frexp-based index must not.
        """
        import math

        for k in (1, 10, 30, 52, 60):
            exact = 2.0 ** k
            below = math.nextafter(exact, 0.0)
            assert Histogram.bucket_index(exact) == k
            assert Histogram.bucket_index(below) == k - 1, (
                f"nextafter(2**{k}, 0) must land in bucket {k - 1}"
            )
            lo, hi = Histogram.bucket_bounds(Histogram.bucket_index(below))
            assert lo <= below < hi
        # Fractional values (the underflow region handles < 1 in
        # observe(), but the index itself must still be exact).
        assert Histogram.bucket_index(0.5) == -1
        assert Histogram.bucket_index(0.75) == -1

    def test_histogram_observe_boundary_counts(self):
        import math

        hist = Histogram("edge")
        hist.observe(2.0 ** 30)
        hist.observe(math.nextafter(2.0 ** 30, 0.0))
        snap = hist.to_dict()
        assert snap["buckets"] == {"29": 1, "30": 1}
        assert hist.percentile(100) == 2.0 ** 30

    def test_histogram_underflow_and_merge(self):
        a, b = Histogram("a"), Histogram("b")
        a.observe(0.25)
        a.observe(8)
        b.observe(64)
        a.merge(b)
        assert a.count == 3
        assert a.max == 64
        assert a.percentile(100) == 64
        snap = a.to_dict()
        assert snap["underflow"] == 1

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        b.gauge("g").set(7)
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.gauge("g").value == 7

    def test_charge_mirror_matches_ledger(self):
        platform = Platform()
        obs = platform.enable_observability()
        platform.charge_ns("a.b.c", 10.0)
        platform.charge_ns("a.b.c", 5.0)
        platform.charge_ns("d", 1.0)
        assert obs.crosscheck(platform.ledger.snapshot()) == []
        assert obs.metrics.counter("charge.count.a.b.c").value == 2
        assert obs.metrics.counter("charge.ns.a.b.c").value == 15.0


# -- exporters -------------------------------------------------------------------


class TestExporters:
    def _traced_platform(self):
        platform = Platform()
        obs = platform.enable_observability(label="t")
        with obs.tracer.span("outer"):
            platform.charge_ns("x.y", 2000.0)
            with obs.tracer.span("inner", attrs={"k": "v"}):
                platform.charge_ns("x.z", 1000.0)
            obs.tracer.instant("mark")
        return platform, obs

    def test_chrome_trace_round_trip(self, tmp_path):
        platform, obs = self._traced_platform()
        doc = obs_export.chrome_trace([("t", obs)])
        path = tmp_path / "trace.json"
        obs_export.write_chrome_trace(str(path), doc)
        loaded = obs_export.load_chrome_trace(str(path))
        events = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        # ns -> µs conversion.
        assert by_name["inner"]["ts"] == pytest.approx(2.0)
        assert by_name["inner"]["dur"] == pytest.approx(1.0)
        assert by_name["outer"]["dur"] == pytest.approx(3.0)
        # Parent containment (what makes the Perfetto stacks correct).
        inner, outer = by_name["inner"], by_name["outer"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        instants = [e for e in loaded["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["mark"]

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            obs_export.validate_chrome_trace([])
        with pytest.raises(ValueError):
            obs_export.validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            obs_export.validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 1, "ts": 0, "dur": -1}]}
            )

    def test_jsonl_dump_parses(self, tmp_path):
        _, obs = self._traced_platform()
        path = tmp_path / "events.jsonl"
        lines = obs_export.write_jsonl(str(path), [("t", obs)])
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == lines == 3
        assert {p["name"] for p in parsed} == {"outer", "inner", "mark"}
        assert all(p["session"] == "t" for p in parsed)

    def test_summary_table_renders(self):
        _, obs = self._traced_platform()
        text = obs_export.summary_table([("t", obs)])
        assert "outer" in text and "inner" in text
        assert "instant events: 1" in text


# -- ledger entry view (satellite fix) -------------------------------------------


class TestLedgerEntryView:
    def test_unknown_category_returns_zero_view(self):
        ledger = CostLedger()
        view = ledger.entry("never.charged")
        assert view == LedgerEntryView()
        assert view.count == 0 and view.total_ns == 0.0

    def test_view_is_immutable(self):
        ledger = CostLedger()
        ledger.charge("a", 5.0)
        view = ledger.entry("a")
        with pytest.raises(AttributeError):
            view.count = 99
        # Mutation attempts cannot corrupt the ledger.
        assert ledger.entry("a").count == 1

    def test_view_is_a_copy_not_a_live_reference(self):
        ledger = CostLedger()
        ledger.charge("a", 5.0)
        view = ledger.entry("a")
        ledger.charge("a", 5.0)
        assert view.total_ns == 5.0
        assert ledger.entry("a").total_ns == 10.0
        assert ledger.entry("a").mean_ns == 5.0


# -- recorder + experiment integration -------------------------------------------


class TestRecorderIntegration:
    def test_fig4_tracer_ledger_and_stats_agree(self):
        from repro.experiments.fig4_rmi import run_fig4a

        with recording() as recorder:
            run_fig4a(counts=(100,), payload_size=20)
        assert recorder.sessions  # platforms were attached automatically
        # Metrics mirror the ledger exactly, per session and merged.
        assert recorder.crosscheck() == []
        metrics = recorder.merged_metrics()
        ledger = recorder.merged_ledger_snapshot()
        ecalls_by_ledger = sum(
            entry[0]
            for category, entry in ledger.items()
            if category.startswith("transition.ecall.")
        )
        assert metrics.counter("sgx.ecalls").value == ecalls_by_ledger
        # Tracer span totals equal the ledger's transition time.
        span_ns = 0.0
        ledger_ns = sum(
            entry[1]
            for category, entry in ledger.items()
            if category.startswith("transition.ecall.")
            or category.startswith("transition.ocall.")
        )
        for _, platform, obs in recorder.sessions:
            for span in obs.tracer.finished_spans():
                if span.name in ("sgx.ecall", "sgx.ocall"):
                    # Transition spans also cover the relayed body; the
                    # charge alone is what the ledger sees, so compare
                    # via the charge mirror instead for exactness.
                    span_ns += span.duration_ns
        assert span_ns >= ledger_ns > 0.0
        mirrored_ns = sum(
            metrics.counter(f"charge.ns.{category}").value
            for category in ledger
            if category.startswith("transition.")
        )
        ledger_transition_ns = sum(
            entry[1] for category, entry in ledger.items()
            if category.startswith("transition.")
        )
        assert mirrored_ns == pytest.approx(ledger_transition_ns, abs=1e-6)

    def test_transition_stats_match_metrics(self):
        from repro.core import Partitioner, PartitionOptions
        from repro.experiments.micro import MICRO_CLASSES, TrustedCell

        with recording() as recorder:
            options = PartitionOptions(name="obs_stats")
            app = Partitioner(options).partition(list(MICRO_CLASSES))
            with app.start() as session:
                cell = TrustedCell(1)
                for i in range(20):
                    cell.set_value(i)
                stats = session.transition_stats
                metrics = recorder.merged_metrics()
                assert metrics.counter("sgx.ecalls").value == stats.ecalls
                assert metrics.counter("sgx.ocalls").value == stats.ocalls

    def test_default_output_unchanged_by_observability(self):
        from repro.experiments.fig3_proxy_creation import run_fig3

        plain = run_fig3(counts=(300, 600)).format()
        with recording():
            recorded = run_fig3(counts=(300, 600)).format()
        plain_again = run_fig3(counts=(300, 600)).format()
        assert plain == plain_again  # determinism baseline
        assert recorded == plain  # observability never shifts virtual time

    def test_recorder_exclusive_activation(self):
        with recording():
            with pytest.raises(RuntimeError):
                with recording():
                    pass  # pragma: no cover

    def test_no_platform_attachment_without_recorder(self):
        platform = fresh_platform()
        assert platform.obs is None


# -- profiler on the span stream --------------------------------------------------


class TestProfilerSpanStream:
    def _layer(self):
        from repro.sgx.enclave import EnclaveConfig
        from repro.sgx.sdk import SgxSdk
        from repro.sgx.transitions import TransitionLayer

        platform = fresh_platform()
        sdk = SgxSdk(platform)
        signed = sdk.sign("obs-prof", b"code", config=EnclaveConfig())
        enclave = sdk.create_enclave(signed)
        return platform, TransitionLayer(platform, enclave)

    def test_direct_layer_calls_are_profiled(self):
        from repro.sgx.profiler import TransitionProfiler

        platform, layer = self._layer()
        profiler = TransitionProfiler(layer)
        layer.ecall("direct_routine", lambda: None, payload_bytes=32)
        profiler.ecall("wrapped_routine", lambda: None, payload_bytes=8)
        profiles = {(p.kind, p.name): p for p in profiler.profiles()}
        assert profiles[("ecall", "direct_routine")].calls == 1
        assert profiles[("ecall", "wrapped_routine")].payload_bytes == 8

    def test_profiles_survive_ring_buffer_wrap(self):
        from repro.sgx.profiler import TransitionProfiler

        platform, layer = self._layer()
        platform.enable_observability(ring_capacity=4)
        profiler = TransitionProfiler(layer)
        for i in range(50):
            profiler.ecall("hot", lambda: None)
        assert profiler.profiles()[0].calls == 50
        assert platform.obs.tracer.dropped > 0

    def test_other_enclaves_are_ignored(self):
        from repro.sgx.enclave import EnclaveConfig
        from repro.sgx.profiler import TransitionProfiler
        from repro.sgx.sdk import SgxSdk
        from repro.sgx.transitions import TransitionLayer

        platform, layer = self._layer()
        profiler = TransitionProfiler(layer)
        sdk = SgxSdk(platform)
        other = sdk.create_enclave(sdk.sign("other", b"x", config=EnclaveConfig()))
        other_layer = TransitionLayer(platform, other)
        other_layer.ecall("foreign", lambda: None)
        assert profiler.profiles() == []

    def test_close_stops_consuming(self):
        from repro.sgx.profiler import TransitionProfiler

        platform, layer = self._layer()
        profiler = TransitionProfiler(layer)
        profiler.ecall("before", lambda: None)
        profiler.close()
        layer.ecall("after", lambda: None)
        names = {p.name for p in profiler.profiles()}
        assert names == {"before"}


# -- epc page observer -------------------------------------------------------------


class TestEpcObserver:
    def test_page_events_stream_into_obs(self):
        from repro.obs.hooks import install_epc_observer
        from repro.sgx.epc import EpcPageCache

        platform = Platform()
        obs = platform.enable_observability()
        cache = EpcPageCache(capacity_bytes=2 * 4096)
        install_epc_observer(cache, obs)
        cache.touch(1, 0)
        cache.touch(1, 1)
        cache.touch(1, 2)  # evicts page 0
        assert obs.metrics.counter("epc.cache.faults").value == 3
        assert obs.metrics.counter("epc.cache.evicts").value == 1
        kinds = [e.name for e in obs.tracer.events()]
        assert kinds.count("epc.fault") == 3
        assert kinds.count("epc.evict") == 1

    def test_driver_metrics_on_fault(self):
        from repro.sgx.driver import SgxDriver

        platform = fresh_platform()
        obs = platform.enable_observability()
        driver = SgxDriver(platform)
        driver.access(1, 0, 10 * platform.spec.page_bytes)
        assert obs.metrics.counter("epc.faults").value == 10
        assert any(e.name == "epc.page_fault" for e in obs.tracer.events())


# -- occupancy gauges -------------------------------------------------------------


class TestOccupancyGauges:
    """Heap and EPC residency sampled into gauges (ROADMAP item)."""

    def test_heap_gauges_track_live_and_used_bytes(self):
        from repro.runtime.context import ExecutionContext, Location
        from repro.runtime.heap import SimHeap

        platform = fresh_platform()
        obs = platform.enable_observability()
        ctx = ExecutionContext(platform, Location.ENCLAVE)
        heap = SimHeap(ctx, max_bytes=1 << 20, name="enclave")
        a = heap.alloc(1000)
        heap.alloc(2000)
        live = obs.metrics.gauge("heap.enclave.live_bytes")
        used = obs.metrics.gauge("heap.enclave.used_bytes")
        assert live.value == 3000
        heap.free(a)
        assert live.value == 2000
        assert used.value == 3000  # dead bytes linger until collection
        heap.collect()
        assert used.value == 2000
        assert live.max_seen == 3000  # watermark: peak occupancy
        assert used.max_seen == 3000

    def test_epc_gauges_track_residency(self):
        from repro.sgx.driver import SgxDriver

        platform = fresh_platform()
        obs = platform.enable_observability()
        driver = SgxDriver(platform)
        driver.access(1, 0, 5 * platform.spec.page_bytes)
        pages = obs.metrics.gauge("epc.resident_pages")
        assert pages.value == 5
        assert (
            obs.metrics.gauge("epc.resident_bytes").value
            == 5 * platform.spec.page_bytes
        )
        released = driver.release_enclave(1)
        assert released == 5
        assert pages.value == 0
        assert pages.max_seen == 5  # peak EPC residency survives release

    def test_gauges_absent_without_observability(self):
        from repro.runtime.context import ExecutionContext, Location
        from repro.runtime.heap import SimHeap
        from repro.sgx.driver import SgxDriver

        platform = fresh_platform()
        ctx = ExecutionContext(platform, Location.HOST)
        SimHeap(ctx, max_bytes=1 << 20, name="plain").alloc(64)
        SgxDriver(platform).access(1, 0, platform.spec.page_bytes)
        assert platform.obs is None  # no registry was ever created


# -- artifacts --------------------------------------------------------------------


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        from repro.experiments.common import ExperimentTable

        table = ExperimentTable(title="t", x_label="x", y_label="y")
        series = table.new_series("s1")
        series.add(1, 2.0)
        series.add(2, 4.0)
        ledger = CostLedger()
        ledger.charge("cat.a", 7.0)
        doc = obs_artifacts.run_artifact(
            "unit",
            tables=[table],
            ledger=ledger.snapshot(),
            metrics=MetricsRegistry().snapshot(),
        )
        path = tmp_path / "unit.json"
        obs_artifacts.write_artifact(str(path), doc)
        loaded = obs_artifacts.load_artifact(str(path))
        assert loaded["tables"][0]["series"][0]["points"] == [[1, 2.0], [2, 4.0]]
        assert loaded["ledger"]["cat.a"] == {"count": 1, "total_ns": 7.0}

    def test_validation_rejects_bad_docs(self):
        with pytest.raises(ValueError):
            obs_artifacts.validate_artifact({"schema": "nope", "name": "x"})
        with pytest.raises(ValueError):
            obs_artifacts.validate_artifact(
                {
                    "schema": obs_artifacts.SCHEMA,
                    "name": "x",
                    "tables": [{"series": [{"name": "s", "points": [[1, 2, 3]]}]}],
                }
            )


# -- CLI --------------------------------------------------------------------------


class TestCliObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro import cli

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"

        assert cli.main(["fig4a", "--scale", "small"]) == 0
        plain = capsys.readouterr().out

        assert (
            cli.main(
                [
                    "fig4a",
                    "--scale",
                    "small",
                    "--trace",
                    str(trace_path),
                    "--metrics",
                    str(metrics_path),
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        # The experiment table on stdout is byte-identical with tracing on.
        assert captured.out == plain

        doc = obs_export.load_chrome_trace(str(trace_path))
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"rmi.invoke", "sgx.ecall", "sgx.ocall", "proxy.call"} <= names
        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["crosscheck_mismatches"] == []
        ecalls = metrics_doc["metrics"]["sgx.ecalls"]["value"]
        ledger_ecalls = sum(
            entry["count"]
            for category, entry in metrics_doc["ledger"].items()
            if category.startswith("transition.ecall.")
        )
        assert ecalls == ledger_ecalls > 0
        assert events_path.stat().st_size > 0

    def test_obs_summary_flag(self, capsys):
        from repro import cli

        assert cli.main(["fig3", "--scale", "small", "--obs-summary"]) == 0
        out = capsys.readouterr().out
        assert "rmi.new" in out
        assert "span" in out
        # The default SLO rulebook watches every --obs-summary run.
        assert "SLO verdicts" in out
        assert "pool-fallback-burn" in out

    def test_scale_and_chaos_obs_flag_parity(self, tmp_path, capsys):
        """Satellite: --trace/--obs-summary work on scale and chaos the
        same way they do on the figure experiments, verdicts included."""
        from repro import cli

        trace_path = tmp_path / "scale_trace.json"
        assert (
            cli.main(
                [
                    "scale",
                    "--scale",
                    "small",
                    "--trace",
                    str(trace_path),
                    "--obs-summary",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SLO verdicts" in out
        # The saturated-pool sweep points drive the burn-rate rule.
        assert "pool-fallback-burn" in out
        doc = obs_export.load_chrome_trace(str(trace_path))
        names = {e["name"] for e in doc["traceEvents"]}
        assert "sgx.ecall" in names
        # The alert is visible in the span stream, not only the summary.
        assert "slo.alert" in names

        assert cli.main(["chaos", "--scale", "small", "--obs-summary"]) == 0
        out = capsys.readouterr().out
        assert "SLO verdicts" in out
        # The chaos runs charge recovery time, so the budget rule is live
        # (watching, even if within budget).
        assert "recovery-budget" in out
