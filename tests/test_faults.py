"""Fault injection + enclave-loss recovery (repro.faults).

Covers the chaos substrate end to end: injector determinism and rule
matching, the enclave lifecycle state machine (every transition),
fault semantics at the transition layer, error-path observability,
retry/recovery through the RMI runtime, sealed checkpoints across
rebuilds, switchless stalls, EPC pressure, zero-cost-when-off, and the
chaos ablation's determinism.
"""

from __future__ import annotations

import pytest

from repro.apps.bank import Account, BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import Side
from repro.costs.platform import fresh_platform
from repro.errors import (
    AttestationError,
    ConfigurationError,
    EnclaveError,
    EnclaveLostError,
    NonIdempotentReplayError,
    RetryBudgetExhaustedError,
    RetryExhaustedError,
)
from repro.experiments import fault_recovery
from repro.faults import (
    CheckpointManager,
    FaultInjector,
    FaultKind,
    FaultRule,
    RecoveryCoordinator,
    RetryBudget,
    RetryPolicy,
    attach_recovery,
    idempotent,
)
from repro.obs.artifacts import validate_artifact
from repro.sgx.driver import SgxDriver
from repro.sgx.enclave import Enclave, EnclaveContents, EnclaveState
from repro.sgx.sealing import SealingService
from repro.sgx.switchless import SwitchlessLayer
from repro.sgx.transitions import TransitionLayer
from tests.helpers import assert_ledgers_identical, platform_ledger


from repro.core.annotations import trusted


@trusted
class Sensor:
    """Module-level so checkpoint sealing can pickle its mirrors."""

    def __init__(self) -> None:
        self.reads = 0

    @idempotent
    def read(self) -> int:
        self.reads += 1
        return 7

    def arm(self) -> None:
        self.reads += 100


def _enclave(platform, name="img", code=b"x" * 4_000):
    enclave = Enclave(platform, EnclaveContents(name, code))
    enclave.initialize()
    return enclave


# ---------------------------------------------------------------------------
# FaultInjector: rule matching + determinism
# ---------------------------------------------------------------------------


class TestInjector:
    def test_at_call_fires_exactly_once(self):
        inj = FaultInjector(
            rules=[FaultRule(FaultKind.TRANSIENT_ABORT, at_call=3)]
        )
        decisions = [
            inj.transition_fault("ecall", "r", float(i)) for i in range(6)
        ]
        assert [d is not None for d in decisions] == [
            False, False, True, False, False, False
        ]
        assert inj.faults_injected == 1

    def test_every_nth_matching_call(self):
        inj = FaultInjector(rules=[FaultRule(FaultKind.TRANSIENT_ABORT, every=2)])
        fired = [
            inj.transition_fault("ecall", "r", 0.0) is not None for _ in range(6)
        ]
        assert fired == [False, True, False, True, False, True]

    def test_routine_pattern_and_call_kind_filter(self):
        inj = FaultInjector(
            rules=[
                FaultRule(
                    FaultKind.TRANSIENT_ABORT,
                    routine="relay_Account_*",
                    call_kind="ecall",
                )
            ]
        )
        assert inj.transition_fault("ocall", "relay_Account_get", 0.0) is None
        assert inj.transition_fault("ecall", "relay_Person_get", 0.0) is None
        assert inj.transition_fault("ecall", "relay_Account_get", 0.0) is not None

    def test_window_ns_gates_on_virtual_time(self):
        inj = FaultInjector(
            rules=[
                FaultRule(FaultKind.TRANSIENT_ABORT, window_ns=(100.0, 200.0))
            ]
        )
        assert inj.transition_fault("ecall", "r", 50.0) is None
        assert inj.transition_fault("ecall", "r", 150.0) is not None
        assert inj.transition_fault("ecall", "r", 250.0) is None

    def test_max_fires_caps_firings(self):
        inj = FaultInjector(
            rules=[FaultRule(FaultKind.TRANSIENT_ABORT, max_fires=2)]
        )
        fired = [
            inj.transition_fault("ecall", "r", 0.0) is not None for _ in range(5)
        ]
        assert fired == [True, True, False, False, False]

    def test_probabilistic_rules_replay_identically(self):
        rules = lambda: [  # noqa: E731 - local factory
            FaultRule(FaultKind.TRANSIENT_ABORT, probability=0.3)
        ]
        a = FaultInjector(seed=7, rules=rules())
        b = FaultInjector(seed=7, rules=rules())
        seq_a = [a.transition_fault("ecall", "r", float(i)) is not None for i in range(50)]
        seq_b = [b.transition_fault("ecall", "r", float(i)) is not None for i in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert a.event_schedule() == b.event_schedule()

    def test_different_seeds_differ(self):
        seqs = []
        for seed in (1, 2):
            inj = FaultInjector(
                seed=seed,
                rules=[FaultRule(FaultKind.TRANSIENT_ABORT, probability=0.5)],
            )
            seqs.append(
                tuple(
                    inj.transition_fault("ecall", "r", 0.0) is not None
                    for _ in range(64)
                )
            )
        assert seqs[0] != seqs[1]

    def test_crash_decision_carries_phase(self):
        inj = FaultInjector(
            rules=[FaultRule(FaultKind.ENCLAVE_CRASH, phase="mid")]
        )
        decision = inj.transition_fault("ecall", "r", 0.0)
        assert decision.crash and decision.phase == "mid"

    def test_worker_stall_budget(self):
        inj = FaultInjector(
            rules=[
                FaultRule(FaultKind.WORKER_STALL, at_call=1, stall_calls=3)
            ]
        )
        stalls = [inj.worker_stall("ecall", "r", 0.0) for _ in range(5)]
        assert stalls == [True, True, True, False, False]
        # One rule firing produced the whole stall window.
        assert inj.faults_injected == 1

    def test_epc_pressure_returns_pages(self):
        inj = FaultInjector(
            rules=[FaultRule(FaultKind.EPC_PRESSURE, at_call=2, spike_pages=32)]
        )
        assert inj.epc_pressure(0.0) == 0
        assert inj.epc_pressure(1.0) == 32

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.TRANSIENT_ABORT, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.TRANSIENT_ABORT, phase="mid")
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.ENCLAVE_CRASH, phase="sideways")
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.ENCLAVE_CRASH, at_call=0)


# ---------------------------------------------------------------------------
# Enclave lifecycle state machine
# ---------------------------------------------------------------------------


class TestEnclaveLifecycle:
    def test_created_to_initialized(self):
        platform = fresh_platform()
        enclave = Enclave(platform, EnclaveContents("img", b"abc"))
        assert enclave.state is EnclaveState.CREATED
        with pytest.raises(EnclaveError):
            enclave.require_usable()
        enclave.initialize()
        assert enclave.state is EnclaveState.INITIALIZED
        enclave.require_usable()

    def test_created_cannot_be_lost_or_reinitialized(self):
        platform = fresh_platform()
        enclave = Enclave(platform, EnclaveContents("img", b"abc"))
        with pytest.raises(EnclaveError):
            enclave.mark_lost()
        with pytest.raises(EnclaveError):
            enclave.reinitialize()

    def test_double_initialize_rejected(self):
        enclave = _enclave(fresh_platform())
        with pytest.raises(EnclaveError):
            enclave.initialize()

    def test_initialized_to_lost_and_back(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        measurement = enclave.measurement
        enclave.mark_lost()
        assert enclave.state is EnclaveState.LOST
        assert enclave.heap is None
        with pytest.raises(EnclaveLostError) as excinfo:
            enclave.require_usable()
        assert excinfo.value.phase == "pre"
        assert not excinfo.value.transient
        # LOST -> LOST is idempotent (concurrent loss notifications).
        enclave.mark_lost()
        before = platform.ledger.total_ns("sgx.enclave.reload")
        enclave.reinitialize()
        assert enclave.state is EnclaveState.INITIALIZED
        assert enclave.rebuilds == 1
        assert enclave.measurement == measurement
        assert enclave.heap is not None
        assert platform.ledger.total_ns("sgx.enclave.reload") > before

    def test_reinitialize_only_from_lost(self):
        enclave = _enclave(fresh_platform())
        with pytest.raises(EnclaveError):
            enclave.reinitialize()

    def test_destroy_from_each_live_state(self):
        platform = fresh_platform()
        created = Enclave(platform, EnclaveContents("a", b"x"))
        created.destroy()
        assert created.state is EnclaveState.DESTROYED

        initialized = _enclave(platform, "b")
        initialized.destroy()
        assert initialized.state is EnclaveState.DESTROYED

        lost = _enclave(platform, "c")
        lost.mark_lost()
        lost.destroy()
        assert lost.state is EnclaveState.DESTROYED

    def test_destroyed_is_terminal(self):
        enclave = _enclave(fresh_platform())
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.mark_lost()
        with pytest.raises(EnclaveError):
            enclave.reinitialize()
        with pytest.raises(EnclaveError):
            enclave.initialize()
        with pytest.raises(EnclaveError):
            enclave.require_usable()

    def test_destroy_during_active_ecall_rejected(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)

        def body():
            with pytest.raises(EnclaveError, match="active"):
                enclave.destroy()
            return "ran"

        assert transitions.ecall("probe", body) == "ran"
        # Once the ecall returned, destroy succeeds.
        enclave.destroy()
        assert enclave.state is EnclaveState.DESTROYED


# ---------------------------------------------------------------------------
# Transition-layer fault semantics + error-path observability
# ---------------------------------------------------------------------------


class TestTransitionFaults:
    def test_transient_abort_leaves_enclave_usable(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(rules=[FaultRule(FaultKind.TRANSIENT_ABORT, at_call=1)])
        )
        ran = []
        with pytest.raises(EnclaveLostError) as excinfo:
            transitions.ecall("r", lambda: ran.append(1))
        assert excinfo.value.transient and excinfo.value.phase == "pre"
        assert ran == []  # pre-dispatch: the body never executed
        assert enclave.usable
        assert transitions.stats.faulted_calls == 1
        # Next call goes through.
        assert transitions.ecall("r", lambda: 42) == 42

    def test_pre_crash_marks_enclave_lost_without_running_body(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[FaultRule(FaultKind.ENCLAVE_CRASH, at_call=1, phase="pre")]
            )
        )
        ran = []
        with pytest.raises(EnclaveLostError) as excinfo:
            transitions.ecall("r", lambda: ran.append(1))
        assert not excinfo.value.transient
        assert ran == []
        assert enclave.state is EnclaveState.LOST

    def test_mid_crash_runs_body_then_loses_reply(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[FaultRule(FaultKind.ENCLAVE_CRASH, at_call=1, phase="mid")]
            )
        )
        ran = []
        with pytest.raises(EnclaveLostError) as excinfo:
            transitions.ecall("r", lambda: ran.append(1))
        assert excinfo.value.phase == "mid"
        assert ran == [1]  # side effects happened; the reply vanished
        assert enclave.state is EnclaveState.LOST

    def test_ocall_faults_too(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[
                    FaultRule(
                        FaultKind.TRANSIENT_ABORT, call_kind="ocall", at_call=1
                    )
                ]
            )
        )
        assert transitions.ecall("in", lambda: 1) == 1  # ecalls unaffected
        with pytest.raises(EnclaveLostError):
            transitions.ocall("out", lambda: 2)

    def test_error_path_observability_on_app_exception(self):
        platform = fresh_platform()
        obs = platform.enable_observability()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)

        def boom():
            raise ValueError("app bug")

        with pytest.raises(ValueError):
            transitions.ecall("r", boom)
        assert obs.metrics.counter("sgx.ecall_errors").value == 1
        span = [s for s in obs.tracer.finished_spans() if s.name == "sgx.ecall"][-1]
        assert span.attrs["status"] == "error"
        assert span.attrs["error"] == "ValueError"

        with pytest.raises(ValueError):
            transitions.ocall("r", boom)
        assert obs.metrics.counter("sgx.ocall_errors").value == 1
        span = [s for s in obs.tracer.finished_spans() if s.name == "sgx.ocall"][-1]
        assert span.attrs["status"] == "error"

    def test_successful_calls_have_no_error_status(self):
        platform = fresh_platform()
        obs = platform.enable_observability()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        transitions.ecall("r", lambda: 1)
        span = [s for s in obs.tracer.finished_spans() if s.name == "sgx.ecall"][-1]
        assert "status" not in span.attrs
        assert obs.metrics.counter("sgx.ecall_errors").value == 0

    def test_injected_faults_counted_in_metrics(self):
        platform = fresh_platform()
        obs = platform.enable_observability()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(rules=[FaultRule(FaultKind.TRANSIENT_ABORT, at_call=1)])
        )
        with pytest.raises(EnclaveLostError):
            transitions.ecall("r", lambda: 1)
        assert obs.metrics.counter("sgx.faults_injected").value == 1
        assert obs.metrics.counter("sgx.ecall_errors").value == 1


# ---------------------------------------------------------------------------
# Switchless stalls
# ---------------------------------------------------------------------------


class TestSwitchlessStalls:
    def test_switchless_transition_layer_falls_back_on_stall(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave, switchless=True)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[
                    FaultRule(FaultKind.WORKER_STALL, at_call=1, stall_calls=2)
                ]
            )
        )
        transitions.ecall("r", lambda: 1)
        transitions.ecall("r", lambda: 2)
        transitions.ecall("r", lambda: 3)
        assert transitions.stats.stall_fallbacks == 2
        assert transitions.stats.switchless_calls == 1
        # Stalled calls were priced as hardware transitions.
        assert platform.ledger.count("transition.ecall.r") == 2
        assert platform.ledger.count("transition.switchless.r") == 1

    def test_switchless_layer_falls_back_on_stall(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        layer = SwitchlessLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[
                    FaultRule(FaultKind.WORKER_STALL, at_call=1, stall_calls=1)
                ]
            )
        )
        assert layer.ecall("r", lambda: 1) == 1
        assert layer.ecall("r", lambda: 2) == 2
        assert layer.stats.stalled_ecalls == 1
        assert layer.stats.fallback_ecalls == 1
        assert layer.stats.switchless_ecalls == 1
        assert layer.fallback_stats.ecalls == 1

    def test_stall_costs_more_than_fast_path(self):
        def run(with_stall: bool) -> float:
            platform = fresh_platform()
            enclave = _enclave(platform)
            layer = SwitchlessLayer(platform, enclave)
            if with_stall:
                platform.enable_fault_injection(
                    FaultInjector(
                        rules=[
                            FaultRule(
                                FaultKind.WORKER_STALL, at_call=1, stall_calls=1
                            )
                        ]
                    )
                )
            start = platform.clock.now_ns
            layer.ecall("r", lambda: 1)
            return platform.clock.now_ns - start

        assert run(with_stall=True) > run(with_stall=False)


# ---------------------------------------------------------------------------
# EPC pressure
# ---------------------------------------------------------------------------


class TestEpcPressure:
    def test_pressure_spike_evicts_and_charges(self):
        platform = fresh_platform()
        driver = SgxDriver(platform)
        epc_pages = platform.spec.epc_usable_bytes // platform.spec.page_bytes
        # Fill most of the EPC with the victim enclave.
        driver.access(1, 0, (epc_pages - 8) * platform.spec.page_bytes)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[
                    FaultRule(
                        FaultKind.EPC_PRESSURE, at_call=1, spike_pages=64
                    )
                ]
            )
        )
        before = platform.ledger.total_ns("sgx.driver.pressure_spike")
        driver.access(1, 0, platform.spec.page_bytes)
        assert driver.stats.pressure_spikes == 1
        assert driver.stats.pressure_faults == 64
        assert platform.ledger.total_ns("sgx.driver.pressure_spike") > before
        # The hostile tenant evicted victim pages: re-touching faults.
        faults_before = driver.stats.faults_serviced
        driver.access(1, 0, (epc_pages - 8) * platform.spec.page_bytes)
        assert driver.stats.faults_serviced > faults_before


# ---------------------------------------------------------------------------
# Sealing across rebuild
# ---------------------------------------------------------------------------


class TestSealingAcrossRebuild:
    def test_round_trip_survives_reinitialize(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        sealing = SealingService(enclave, platform_secret=b"fuse")
        blob = sealing.seal({"balance": 125})
        enclave.mark_lost()
        enclave.reinitialize()
        assert sealing.unseal(blob) == {"balance": 125}

    def test_unseal_fails_across_different_measurement(self):
        platform = fresh_platform()
        enclave = _enclave(platform, "one", b"code-one" * 100)
        other = _enclave(platform, "two", b"code-two" * 100)
        blob = SealingService(enclave, platform_secret=b"fuse").seal("secret")
        foreign = SealingService(other, platform_secret=b"fuse")
        with pytest.raises(AttestationError):
            foreign.unseal(blob)

    def test_unseal_rejected_while_lost(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        sealing = SealingService(enclave)
        blob = sealing.seal("x")
        enclave.mark_lost()
        with pytest.raises(EnclaveLostError):
            sealing.unseal(blob)


# ---------------------------------------------------------------------------
# Checkpoints + recovery coordinator
# ---------------------------------------------------------------------------


class TestCheckpointManager:
    def test_interval_gates_checkpoints(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        manager = CheckpointManager(
            SealingService(enclave), interval_ns=1_000_000.0
        )
        store = {"v": 1}
        manager.register(
            "store", capture=lambda: dict(store), restore=store.update
        )
        assert manager.maybe_checkpoint()  # first one always happens
        assert not manager.maybe_checkpoint()  # too soon
        platform.charge_ns("test.wait", 2_000_000.0)
        assert manager.maybe_checkpoint()
        assert manager.stats.checkpoints == 2

    def test_restore_wipes_then_applies_latest_snapshot(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        manager = CheckpointManager(SealingService(enclave))
        store = {"v": 1}
        manager.register(
            "store",
            capture=lambda: dict(store),
            restore=store.update,
            wipe=store.clear,
        )
        manager.checkpoint()
        store["v"] = 99
        store["junk"] = True
        assert manager.restore_all() == 1
        assert store == {"v": 1}

    def test_duplicate_entry_rejected(self):
        platform = fresh_platform()
        manager = CheckpointManager(SealingService(_enclave(platform)))
        manager.register("a", capture=dict, restore=lambda s: None)
        with pytest.raises(ConfigurationError):
            manager.register("a", capture=dict, restore=lambda s: None)

    def test_never_checkpointed_entry_only_wiped(self):
        platform = fresh_platform()
        manager = CheckpointManager(SealingService(_enclave(platform)))
        store = {"v": 1}
        manager.register(
            "store",
            capture=lambda: dict(store),
            restore=store.update,
            wipe=store.clear,
        )
        assert manager.restore_all() == 0
        assert store == {}


class TestRecoveryCoordinator:
    def _coordinator(self, platform, enclave, **kwargs):
        return RecoveryCoordinator(enclave, **kwargs)

    def test_recovers_lost_enclave_and_retries(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[FaultRule(FaultKind.ENCLAVE_CRASH, at_call=1, phase="pre")]
            )
        )
        coordinator = self._coordinator(platform, enclave)
        result = coordinator.run_with_retry(
            lambda: transitions.ecall("r", lambda: "ok"),
            routine="r",
            invocation_id=1,
        )
        assert result == "ok"
        assert coordinator.stats.recoveries == 1
        assert coordinator.stats.retries == 1
        assert enclave.rebuilds == 1
        assert platform.ledger.count("rmi.retry.backoff") == 1
        assert platform.ledger.count("recovery.reattest") == 1

    def test_retry_exhausted_raises_typed_error(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(rules=[FaultRule(FaultKind.TRANSIENT_ABORT)])
        )
        coordinator = self._coordinator(
            platform, enclave, policy=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(RetryExhaustedError):
            coordinator.run_with_retry(
                lambda: transitions.ecall("r", lambda: 1),
                routine="r",
                invocation_id=1,
            )
        assert coordinator.stats.retries == 2  # 3 attempts, 2 backoffs
        assert platform.ledger.count("rmi.retry.backoff") == 2

    def test_mid_loss_on_non_idempotent_routine_refuses_replay(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[FaultRule(FaultKind.ENCLAVE_CRASH, at_call=1, phase="mid")]
            )
        )
        coordinator = self._coordinator(platform, enclave)
        executed = []
        with pytest.raises(NonIdempotentReplayError):
            coordinator.run_with_retry(
                lambda: transitions.ecall("r", lambda: executed.append(1)),
                routine="r",
                invocation_id=9,
            )
        assert executed == [1]  # ran once, never replayed
        assert enclave.usable  # recovery still rebuilt the enclave

    def test_mid_loss_on_idempotent_routine_replays(self):
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[
                    FaultRule(
                        FaultKind.ENCLAVE_CRASH,
                        at_call=1,
                        phase="mid",
                        max_fires=1,
                    )
                ]
            )
        )
        coordinator = self._coordinator(
            platform,
            enclave,
            policy=RetryPolicy(idempotent_patterns=("relay_*_get_*",)),
        )
        executed = []

        def body():
            executed.append(1)
            return len(executed)

        result = coordinator.run_with_retry(
            lambda: transitions.ecall("relay_Account_get_balance", body),
            routine="relay_Account_get_balance",
            invocation_id=3,
        )
        assert result == 2  # executed twice: at-most-once waived by contract
        assert executed == [1, 1]

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_backoff_ns=100.0, backoff_multiplier=2.0, max_backoff_ns=350.0
        )
        assert policy.backoff_ns(1) == 100.0
        assert policy.backoff_ns(2) == 200.0
        assert policy.backoff_ns(3) == 350.0  # capped
        assert policy.backoff_ns(4) == 350.0


# ---------------------------------------------------------------------------
# RetryBudget: per-call deadline + total virtual-time retry budget
# ---------------------------------------------------------------------------


class TestRetryBudget:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(call_deadline_ns=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retry_budget_ns=-1.0)
        assert not RetryPolicy().budgeted
        assert RetryPolicy(call_deadline_ns=1.0).budgeted
        assert RetryPolicy(retry_budget_ns=1.0).budgeted

    def test_unbudgeted_policy_never_refuses(self):
        budget = RetryBudget(RetryPolicy())
        budget.start_call(0.0)
        for _ in range(100):
            assert budget.authorize(1e12, 1e9, "r") == 1e9
        assert budget.remaining_ns is None

    def test_call_deadline_counts_elapsed_virtual_time(self):
        budget = RetryBudget(RetryPolicy(call_deadline_ns=1_000.0))
        budget.start_call(500.0)
        # 900ns elapsed + 50ns backoff fits the 1000ns deadline.
        assert budget.authorize(1_400.0, 50.0, "r") == 50.0
        # 900ns elapsed + 200ns backoff does not.
        with pytest.raises(RetryBudgetExhaustedError):
            budget.authorize(1_400.0, 200.0, "r")
        # A fresh call re-stamps the deadline window.
        budget.start_call(2_000.0)
        assert budget.authorize(2_100.0, 200.0, "r") == 200.0

    def test_total_budget_spends_down_and_exhausts(self):
        budget = RetryBudget(RetryPolicy(retry_budget_ns=300.0))
        budget.start_call(0.0)
        assert budget.remaining_ns == 300.0
        for expected in (200.0, 100.0, 0.0):
            budget.authorize(0.0, 100.0, "r")
            assert budget.remaining_ns == expected
        with pytest.raises(RetryBudgetExhaustedError) as exc:
            budget.authorize(0.0, 100.0, "r")
        # The typed error still matches the broader retry family.
        assert isinstance(exc.value, RetryExhaustedError)
        assert budget.spent_ns == 300.0  # a refused retry debits nothing

    def test_coordinator_exhausts_budget_with_attempts_left(self):
        # Exhaustion: max_attempts alone would allow 10 tries, but the
        # virtual-time budget cuts the storm off after two backoffs.
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(rules=[FaultRule(FaultKind.TRANSIENT_ABORT)])
        )
        coordinator = RecoveryCoordinator(
            enclave,
            policy=RetryPolicy(
                max_attempts=10,
                base_backoff_ns=100.0,
                backoff_multiplier=1.0,
                retry_budget_ns=250.0,
            ),
        )
        with pytest.raises(RetryBudgetExhaustedError):
            coordinator.run_with_retry(
                lambda: transitions.ecall("r", lambda: 1),
                routine="r",
                invocation_id=1,
            )
        assert platform.ledger.count("rmi.retry.backoff") == 2
        assert coordinator.budget.spent_ns == 200.0

    def test_coordinator_succeeds_under_budget(self):
        # Success-under-budget: the same policy rides out a bounded
        # fault episode and the call lands with budget to spare.
        platform = fresh_platform()
        enclave = _enclave(platform)
        transitions = TransitionLayer(platform, enclave)
        platform.enable_fault_injection(
            FaultInjector(
                rules=[FaultRule(FaultKind.TRANSIENT_ABORT, max_fires=2)]
            )
        )
        coordinator = RecoveryCoordinator(
            enclave,
            policy=RetryPolicy(
                max_attempts=10,
                base_backoff_ns=100.0,
                backoff_multiplier=1.0,
                retry_budget_ns=250.0,
            ),
        )
        result = coordinator.run_with_retry(
            lambda: transitions.ecall("r", lambda: "ok"),
            routine="r",
            invocation_id=1,
        )
        assert result == "ok"
        assert coordinator.budget.spent_ns == 200.0
        assert coordinator.budget.remaining_ns == 50.0

    def test_default_policy_ledger_is_unchanged_by_budget_plumbing(self):
        # Attaching the budget accounting to an unbudgeted (default)
        # policy must not move a single priced nanosecond.
        def run(policy):
            platform = fresh_platform()
            enclave = _enclave(platform)
            transitions = TransitionLayer(platform, enclave)
            platform.enable_fault_injection(
                FaultInjector(
                    rules=[
                        FaultRule(FaultKind.TRANSIENT_ABORT, max_fires=2)
                    ]
                )
            )
            coordinator = RecoveryCoordinator(enclave, policy=policy)
            coordinator.run_with_retry(
                lambda: transitions.ecall("r", lambda: 1),
                routine="r",
                invocation_id=1,
            )
            return platform_ledger(platform)

        generous = RetryPolicy(retry_budget_ns=1e12, call_deadline_ns=1e12)
        assert_ledgers_identical(run(generous), run(RetryPolicy()))


# ---------------------------------------------------------------------------
# End-to-end: partitioned apps under chaos
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_bank_survives_enclave_loss_with_correct_state(self):
        app = Partitioner(PartitionOptions(name="e2e_bank")).partition(
            list(BANK_CLASSES)
        )
        platform = app.platform
        with app.start() as session:
            coordinator = attach_recovery(
                session,
                checkpoint_interval_ns=0.0,
                policy=RetryPolicy(
                    max_attempts=6, idempotent_patterns=("relay_*_get_*",)
                ),
            )
            accounts = [Account(f"a{i}", 0) for i in range(3)]
            coordinator.checkpoints.checkpoint()
            platform.enable_fault_injection(
                FaultInjector(
                    seed=5,
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            routine="relay_*",
                            at_call=4,
                            phase="pre",
                            max_fires=1,
                        )
                    ],
                )
            )
            for _ in range(5):
                for account in accounts:
                    account.update_balance(1)
            balances = [account.get_balance() for account in accounts]
            platform.disable_fault_injection()
            session.runtime.recovery = None
            assert balances == [5, 5, 5]
            assert coordinator.stats.recoveries == 1
            assert session.enclave.rebuilds == 1
            assert coordinator.stats.reinit_ns > 0
            assert coordinator.stats.reattest_ns > 0
            assert coordinator.stats.restore_ns > 0

    def test_idempotent_decorator_is_honoured_by_invoke(self):
        app = Partitioner(PartitionOptions(name="e2e_idem")).partition(
            [Sensor]
        )
        platform = app.platform
        with app.start() as session:
            attach_recovery(session, checkpoint_interval_ns=0.0)
            sensor = Sensor()
            platform.enable_fault_injection(
                FaultInjector(
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            routine="relay_Sensor_read",
                            at_call=1,
                            phase="mid",
                            max_fires=1,
                        ),
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            routine="relay_Sensor_arm",
                            at_call=1,
                            phase="mid",
                            max_fires=1,
                        ),
                    ]
                )
            )
            assert sensor.read() == 7  # mid-loss + replay: decorator allows
            with pytest.raises(NonIdempotentReplayError):
                sensor.arm()  # undeclared mutation: replay refused
            platform.disable_fault_injection()
            session.runtime.recovery = None

    def test_unrecovered_loss_still_tears_down_cleanly(self):
        app = Partitioner(PartitionOptions(name="e2e_teardown")).partition(
            list(BANK_CLASSES)
        )
        platform = app.platform
        with app.start() as session:
            account = Account("a", 1)
            platform.enable_fault_injection(
                FaultInjector(
                    rules=[
                        FaultRule(
                            FaultKind.ENCLAVE_CRASH,
                            routine="relay_*",
                            at_call=1,
                            phase="pre",
                            max_fires=1,
                        )
                    ]
                )
            )
            # No recovery attached: the loss surfaces to the caller and
            # the enclave stays LOST through session teardown.
            with pytest.raises(EnclaveLostError):
                account.update_balance(1)
            platform.disable_fault_injection()
            assert session.enclave.state is EnclaveState.LOST
        assert session.enclave.state is EnclaveState.DESTROYED


# ---------------------------------------------------------------------------
# Zero cost when off + determinism
# ---------------------------------------------------------------------------


def _bank_ledger(inject: bool):
    app = Partitioner(PartitionOptions(name="zc_bank")).partition(
        list(BANK_CLASSES)
    )
    platform = app.platform
    if inject:
        platform.enable_fault_injection(FaultInjector(seed=0, rules=[]))
    with app.start():
        accounts = [Account(f"a{i}", 10) for i in range(3)]
        for account in accounts:
            account.update_balance(5)
        total = sum(account.get_balance() for account in accounts)
        assert total == 45
    return platform_ledger(platform)


class TestZeroCostAndDeterminism:
    def test_ruleless_injector_changes_nothing(self):
        assert_ledgers_identical(
            _bank_ledger(inject=True), _bank_ledger(inject=False)
        )

    def test_chaos_runs_are_byte_identical(self):
        kwargs = dict(
            fault_rates=(0.05,),
            checkpoint_intervals_ns=(0.0,),
            n_accounts=3,
            rounds=8,
            n_entries=6,
        )
        a = fault_recovery.run_chaos(**kwargs)
        b = fault_recovery.run_chaos(**kwargs)
        assert a.fingerprint() == b.fingerprint()
        for ra, rb in zip(a.results, b.results):
            assert ra.ledger == rb.ledger
            assert ra.events == rb.events
        assert a.keeper.events == b.keeper.events

    def test_chaos_report_smoke(self):
        report = fault_recovery.run_chaos(
            fault_rates=(0.0, 0.05),
            checkpoint_intervals_ns=(0.0,),
            n_accounts=3,
            rounds=8,
            n_entries=6,
        )
        assert report.total_recoveries >= 1
        # Eager checkpointing: correct results despite enclave losses.
        for result in report.results:
            assert result.observed_total == result.expected_total
            assert result.aborted_ops == 0
        assert report.keeper.all_correct
        assert report.keeper.enclave_losses >= 1
        # The artifact validates and carries the cost breakdown.
        doc = report.to_artifact()
        validate_artifact(doc)
        chaotic = [
            c for c in doc["chaos"]["configs"] if c["enclave_losses"] > 0
        ]
        assert chaotic
        for config in chaotic:
            recovery = config["recovery"]
            assert recovery["reinit_ns"] > 0
            assert recovery["reattest_ns"] > 0
            assert recovery["restore_ns"] > 0

    def test_faulted_run_differs_from_clean_run(self):
        clean = fault_recovery.run_bank_chaos(0.0, 0.0, n_accounts=3, rounds=8)
        faulted = fault_recovery.run_bank_chaos(
            0.08, 0.0, n_accounts=3, rounds=8
        )
        assert faulted.faults_injected > 0
        assert faulted.throughput_ops_s < clean.throughput_ops_s
