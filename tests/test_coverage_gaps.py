"""Coverage for remaining corners: proxy internals, annotation edge
cases, application lifecycle, build stats, profiler rendering, CLI."""

import pytest

from repro.apps.bank import BANK_CLASSES, Account, AccountRegistry, Person
from repro.cli import main as cli_main
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.annotations import (
    current_context,
    current_runtime,
    neutral,
    side_for,
    trusted,
)
from repro.core.proxy import (
    construct_proxy,
    is_proxy,
    make_proxy_class,
    proxy_hash,
)
from repro.costs import fresh_platform
from repro.errors import AnnotationError, ConfigurationError, PartitionError
from repro.graal.buildstats import analyze_image, partitioned_build_stats
from repro.graal.jtypes import JClass, JMethod, TrustLevel


@pytest.fixture()
def app():
    return Partitioner(PartitionOptions(name="gaps")).partition(
        BANK_CLASSES, main="Main.main"
    )


class TestProxyInternals:
    def test_proxy_class_cached(self):
        assert make_proxy_class(Account) is make_proxy_class(Account)

    def test_proxy_class_name_and_doc(self):
        proxy_cls = make_proxy_class(Account)
        assert proxy_cls.__name__ == "AccountProxy"
        assert "generated" in proxy_cls.__doc__

    def test_proxy_inherits_for_isinstance(self):
        proxy_cls = make_proxy_class(Account)
        assert issubclass(proxy_cls, Account)

    def test_inherited_public_methods_forwarded(self, app):
        """Methods inherited from a base class are proxied too."""

        class BaseLogic:
            def shared(self):
                return self.value

        @trusted
        class Derived(BaseLogic):
            def __init__(self, value):
                self.value = value

        inner = Partitioner(PartitionOptions(name="mro")).partition(
            [Derived], main=None
        )
        with inner.start():
            obj = Derived(7)
            assert is_proxy(obj)
            assert obj.shared() == 7

    def test_proxy_repr_mentions_hash_and_side(self, app):
        with app.start():
            account = Account("x", 1)
            text = repr(account)
            assert "AccountProxy" in text
            assert "trusted" in text

    def test_get_hash_matches_proxy_hash(self, app):
        with app.start():
            account = Account("x", 1)
            assert account.get_hash() == proxy_hash(account)


class TestAnnotationEdgeCases:
    def test_reannotation_same_trust_is_idempotent(self):
        @trusted
        @trusted
        class Twice:
            pass

        from repro.core import trust_of

        assert trust_of(Twice) is TrustLevel.TRUSTED

    def test_neutral_decorator_marks_explicitly(self):
        @neutral
        class Util:
            pass

        from repro.core import trust_of

        assert trust_of(Util) is TrustLevel.NEUTRAL

    def test_neutral_has_no_home_side(self):
        with pytest.raises(AnnotationError):
            side_for(TrustLevel.NEUTRAL)

    def test_side_opposites(self):
        assert Side.TRUSTED.opposite is Side.UNTRUSTED
        assert Side.UNTRUSTED.opposite is Side.TRUSTED

    def test_no_runtime_outside_sessions(self):
        assert current_runtime() is None
        assert current_context() is None


class TestApplicationLifecycle:
    def test_sequential_sessions_from_one_app(self, app):
        for _ in range(2):
            with app.start():
                person = Person("x", 10)
                assert person.get_account().get_balance() == 10

    def test_session_cleans_registries_on_exit(self, app):
        import gc

        with app.start() as session:
            Account("x", 1)
            trusted_registry = session.runtime.state_of(Side.TRUSTED).registry
        gc.collect()
        # The exit hook ran a forced GC scan; at most the final state
        # remains, and the enclave was destroyed either way.
        assert not session.enclave.usable

    def test_nested_sessions_are_isolated(self, app):
        other = Partitioner(PartitionOptions(name="gaps2")).partition(
            BANK_CLASSES, main="Main.main"
        )
        with app.start() as outer:
            with other.start() as inner:
                account = Account("inner", 5)
                # The innermost active runtime owns instantiation.
                assert inner.runtime.state_of(Side.TRUSTED).registry.live_count() == 1
                assert outer.runtime.state_of(Side.TRUSTED).registry.live_count() == 0
            # After the inner session exits, the outer one is active again.
            account2 = Account("outer", 6)
            assert outer.runtime.state_of(Side.TRUSTED).registry.live_count() == 1

    def test_unpartitioned_runs_annotated_classes_concretely(self):
        partitioner = Partitioner(PartitionOptions(name="gaps3"))
        app = partitioner.unpartitioned(list(BANK_CLASSES), main="Main.main")
        with app.start():
            account = Account("plain", 3)
            assert not is_proxy(account)
            account.update_balance(2)
            assert account.balance == 5


class TestBuildStats:
    def test_partitioned_stats(self, app):
        trusted_stats, untrusted_stats = partitioned_build_stats(app)
        assert trusted_stats.reachable_methods <= trusted_stats.total_methods
        assert 0.0 <= trusted_stats.method_pruning_ratio <= 1.0
        assert "Person" in trusted_stats.pruned_proxy_classes
        assert "build stats" in trusted_stats.format()

    def test_analyze_image_direct(self):
        from repro.graal import NativeImageBuilder, extract_classes
        from repro.graal.jtypes import ClassUniverse

        universe = ClassUniverse(extract_classes(BANK_CLASSES))
        image = NativeImageBuilder().build("x", universe, ["Main.main"])
        stats = analyze_image(image, universe)
        assert stats.total_classes == 4
        assert stats.reachable_classes >= 3


class TestCliCommands:
    @pytest.mark.parametrize("command", ["fig3", "fig4a", "fig12", "table1"])
    def test_quick_commands_run(self, command, capsys):
        assert cli_main([command, "--scale", "small"]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig6_small(self, capsys):
        assert cli_main(["fig6", "--scale", "small"]) == 0
        assert "untrusted (%)" in capsys.readouterr().out

    def test_ablations_command(self, capsys):
        assert cli_main(["ablations"]) == 0
        assert "switchless" in capsys.readouterr().out


class TestLedgerRendering:
    def test_format_table_top_limit(self):
        platform = fresh_platform()
        for index in range(10):
            platform.charge_ns(f"cat{index}", float(index + 1))
        table = platform.ledger.format_table(top=3)
        assert "cat9" in table
        assert "cat0" not in table

    def test_profiler_report_renders(self):
        from repro.sgx import SgxSdk, TransitionLayer
        from repro.sgx.profiler import TransitionProfiler

        platform = fresh_platform()
        sdk = SgxSdk(platform)
        layer = TransitionLayer(platform, sdk.create_enclave(sdk.sign("p", b"p")))
        profiler = TransitionProfiler(layer)
        profiler.ecall("relay_x", lambda: None, payload_bytes=64)
        report = profiler.report()
        assert "relay_x" in report
        assert "mean_us" in report
