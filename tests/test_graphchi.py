"""Tests for the GraphChi-like engine: sharder, engine, PageRank, RMAT."""

import numpy as np
import networkx as nx
import pytest

from repro.apps.graphchi import (
    GRAPHCHI_CLASSES,
    FastSharder,
    GraphChiEngine,
    pagerank_reference,
    run_pagerank_in_memory,
)
from repro.apps.graphchi.sharder import EDGE_BYTES, unpack_edges
from repro.apps.rmat import RmatParams, generate_rmat
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.errors import GraphError


@pytest.fixture()
def small_graph():
    return generate_rmat(256, 1024, seed=5)


class TestRmat:
    def test_dimensions(self):
        src, dst = generate_rmat(1000, 5000, seed=1)
        assert len(src) == len(dst) == 5000
        assert src.max() < 1000 and dst.max() < 1000
        assert src.min() >= 0 and dst.min() >= 0

    def test_deterministic_by_seed(self):
        a = generate_rmat(100, 400, seed=9)
        b = generate_rmat(100, 400, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_no_self_loops(self):
        src, dst = generate_rmat(64, 2000, seed=2)
        assert not np.any(src == dst)

    def test_skewed_degree_distribution(self):
        """RMAT's defining property: heavy-tailed degrees."""
        src, _ = generate_rmat(1024, 20_000, seed=3)
        degrees = np.bincount(src, minlength=1024)
        assert degrees.max() > 4 * degrees.mean()

    def test_invalid_params_rejected(self):
        with pytest.raises(GraphError):
            RmatParams(a=0.5, b=0.5, c=0.5, d=0.5)
        with pytest.raises(GraphError):
            RmatParams(a=1.2, b=-0.2, c=0.0, d=0.0)
        with pytest.raises(GraphError):
            generate_rmat(0, 10)


class TestPageRankReference:
    def test_matches_networkx(self, small_graph):
        src, dst = small_graph
        ours = pagerank_reference(src, dst, 256, iterations=80)
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(256))
        graph.add_edges_from(zip(src.tolist(), dst.tolist()))
        theirs = nx.pagerank(graph, alpha=0.85, max_iter=300, tol=1e-12)
        reference = np.array([theirs[i] for i in range(256)])
        assert np.abs(ours - reference).max() < 1e-4

    def test_uniform_on_cycle(self):
        n = 10
        src = np.arange(n)
        dst = (src + 1) % n
        ranks = run_pagerank_in_memory(src, dst, n, iterations=50)
        assert np.allclose(ranks, ranks[0])

    def test_rank_mass_conserved(self, small_graph):
        src, dst = small_graph
        ranks = run_pagerank_in_memory(src, dst, 256, iterations=30)
        # With dangling redistribution the total mass stays at n.
        assert ranks.sum() == pytest.approx(256, rel=1e-6)

    def test_sink_attracts_rank(self):
        # Star: everyone points to vertex 0.
        src = np.arange(1, 20)
        dst = np.zeros(19, dtype=np.int64)
        ranks = run_pagerank_in_memory(src, dst, 20, iterations=40)
        assert ranks[0] == max(ranks)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(GraphError):
            run_pagerank_in_memory(np.array([0]), np.array([1]), 0)


class TestSharder:
    def test_shards_cover_all_edges(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 4
            )
        assert sharded.n_shards == 4
        assert sum(s.n_edges for s in sharded.shards) == len(src)

    def test_shards_partition_by_destination(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 4
            )
        for shard in sharded.shards:
            with open(shard.path, "rb") as handle:
                shard_src, shard_dst = unpack_edges(handle.read())
            assert len(shard_src) == shard.n_edges
            assert np.all(shard_dst >= shard.interval_start)
            assert np.all(shard_dst < shard.interval_end)
            # The PSW invariant: sorted by source.
            assert np.all(np.diff(shard_src) >= 0)

    def test_intervals_cover_vertex_space(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 3
            )
        assert sharded.shards[0].interval_start == 0
        assert sharded.shards[-1].interval_end == 256
        for left, right in zip(sharded.shards, sharded.shards[1:]):
            assert left.interval_end == right.interval_start

    def test_degree_file_written(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 2
            )
        degrees = np.fromfile(sharded.degree_path, dtype=np.uint32)
        assert len(degrees) == 256
        assert degrees.sum() == len(src)

    def test_single_shard(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 1
            )
        assert sharded.n_shards == 1
        assert sharded.shards[0].n_edges == len(src)

    def test_invalid_inputs_rejected(self, tmp_path):
        with native_session():
            sharder = FastSharder(str(tmp_path))
            with pytest.raises(GraphError):
                sharder.shard([0], [1], 2, 0)
            with pytest.raises(GraphError):
                sharder.shard([0, 1], [1], 2, 1)
            with pytest.raises(GraphError):
                sharder.shard([5], [1], 2, 1)  # vertex out of range


class TestEngine:
    def _run(self, src, dst, n, shards, iterations, session_factory):
        with session_factory():
            import tempfile

            workdir = tempfile.mkdtemp()
            sharded = FastSharder(workdir).shard(src.tolist(), dst.tolist(), n, shards)
            return GraphChiEngine().run_pagerank(sharded, iterations=iterations)

    def test_engine_matches_in_memory_reference(self, small_graph):
        src, dst = small_graph
        out_of_core = self._run(src, dst, 256, 4, 10, native_session)
        reference = run_pagerank_in_memory(src, dst, 256, iterations=10)
        assert np.abs(np.array(out_of_core) - reference).max() < 1e-9

    def test_shard_count_does_not_change_result(self, small_graph):
        src, dst = small_graph
        one = self._run(src, dst, 256, 1, 5, native_session)
        six = self._run(src, dst, 256, 6, 5, native_session)
        assert np.allclose(one, six)

    def test_partitioned_run_matches_reference(self, small_graph):
        src, dst = small_graph

        def factory():
            app = Partitioner(PartitionOptions(name="t_graphchi")).partition(
                list(GRAPHCHI_CLASSES)
            )
            return app.start()

        ranks = self._run(src, dst, 256, 3, 5, factory)
        reference = run_pagerank_in_memory(src, dst, 256, iterations=5)
        assert np.abs(np.array(ranks) - reference).max() < 1e-9

    def test_invalid_iterations_rejected(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 2
            )
            with pytest.raises(GraphError):
                GraphChiEngine().run_pagerank(sharded, iterations=0)

    def test_corrupt_shard_rejected(self, small_graph, tmp_path):
        src, dst = small_graph
        with native_session():
            sharded = FastSharder(str(tmp_path)).shard(
                src.tolist(), dst.tolist(), 256, 2
            )
            with open(sharded.shards[0].path, "ab") as handle:
                handle.write(b"xyz")  # not a whole edge record
            with pytest.raises(GraphError):
                GraphChiEngine().run_pagerank(sharded, iterations=1)
