"""Tests for the SecureKeeper-style coordination service."""

import pytest

from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    KeeperError,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
    validate_path,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.proxy import is_proxy


@pytest.fixture()
def session():
    with native_session() as live:
        yield live


@pytest.fixture()
def store(session):
    return ZNodeStore()


@pytest.fixture()
def vault(session):
    return PayloadVault("master-secret")


class TestPathValidation:
    def test_valid_paths(self):
        assert validate_path("/") == ()
        assert validate_path("/a") == ("a",)
        assert validate_path("/a/b/c") == ("a", "b", "c")

    @pytest.mark.parametrize("bad", ["relative", "/trailing/", "/a/../b", "/a/./b", ""])
    def test_invalid_paths_rejected(self, bad):
        with pytest.raises(KeeperError):
            validate_path(bad)


class TestZNodeStore:
    def test_create_and_get(self, store):
        store.create("/app", b"blob")
        data, version = store.get("/app")
        assert data == b"blob"
        assert version == 0

    def test_nested_creation_requires_parent(self, store):
        with pytest.raises(KeeperError):
            store.create("/a/b", b"x")
        store.create("/a", b"")
        store.create("/a/b", b"x")
        assert store.get_children("/a") == ["b"]

    def test_duplicate_create_rejected(self, store):
        store.create("/a", b"")
        with pytest.raises(KeeperError):
            store.create("/a", b"")

    def test_cas_set_increments_version(self, store):
        store.create("/a", b"v0")
        assert store.set("/a", b"v1", expected_version=0) == 1
        assert store.set("/a", b"v2", expected_version=1) == 2

    def test_cas_conflict_rejected(self, store):
        store.create("/a", b"v0")
        store.set("/a", b"v1", expected_version=0)
        with pytest.raises(KeeperError):
            store.set("/a", b"v1-again", expected_version=0)

    def test_delete_with_cas(self, store):
        store.create("/a", b"")
        store.delete("/a", expected_version=0)
        assert not store.exists("/a")

    def test_delete_version_conflict(self, store):
        store.create("/a", b"")
        store.set("/a", b"x", 0)
        with pytest.raises(KeeperError):
            store.delete("/a", expected_version=0)

    def test_delete_with_children_rejected(self, store):
        store.create("/a", b"")
        store.create("/a/b", b"")
        with pytest.raises(KeeperError):
            store.delete("/a", expected_version=0)

    def test_children_sorted(self, store):
        store.create("/a", b"")
        for name in ("z", "m", "a"):
            store.create(f"/a/{name}", b"")
        assert store.get_children("/a") == ["a", "m", "z"]

    def test_get_missing_rejected(self, store):
        with pytest.raises(KeeperError):
            store.get("/ghost")


class TestWatches:
    def test_data_watch_fires_once(self, store):
        store.create("/a", b"")
        store.watch("/a")
        store.set("/a", b"x", 0)
        store.set("/a", b"y", 1)  # watch already consumed
        assert store.drain_events() == [("/a", "data")]

    def test_child_watch_on_parent(self, store):
        store.create("/a", b"")
        store.watch("/a")
        store.create("/a/kid", b"")
        assert ("/a", "child") in store.drain_events()

    def test_delete_fires_watch(self, store):
        store.create("/a", b"")
        store.watch("/a")
        store.delete("/a", 0)
        assert ("/a", "deleted") in store.drain_events()

    def test_multiple_watch_registrations(self, store):
        store.create("/a", b"")
        store.watch("/a")
        store.watch("/a")
        store.set("/a", b"x", 0)
        store.set("/a", b"y", 1)
        assert store.drain_events() == [("/a", "data"), ("/a", "data")]


class TestPayloadVault:
    def test_round_trip(self, vault):
        blob = vault.encrypt("secret config")
        assert vault.decrypt(blob) == "secret config"

    def test_ciphertext_hides_plaintext(self, vault):
        blob = vault.encrypt("super-secret-payload")
        assert b"super-secret-payload" not in blob

    def test_tamper_detected(self, vault):
        blob = bytearray(vault.encrypt("data"))
        blob[-1] ^= 0x01
        with pytest.raises(KeeperError):
            vault.decrypt(bytes(blob))

    def test_nonces_unique(self, vault):
        a = vault.encrypt("same")
        b = vault.encrypt("same")
        assert a != b

    def test_truncated_blob_rejected(self, vault):
        with pytest.raises(KeeperError):
            vault.decrypt(b"short")

    def test_unicode_payloads(self, vault):
        assert vault.decrypt(vault.encrypt("géhëimnis ☃")) == "géhëimnis ☃"


class TestPartitionedSecureKeeper:
    @pytest.fixture()
    def partitioned(self):
        app = Partitioner(PartitionOptions(name="sk")).partition(
            list(SECUREKEEPER_CLASSES)
        )
        with app.start() as live:
            yield live

    def test_vault_is_in_enclave_store_outside(self, partitioned):
        vault = PayloadVault("s")
        store = ZNodeStore()
        assert is_proxy(vault)
        assert not is_proxy(store)

    def test_end_to_end_confidentiality(self, partitioned):
        """The untrusted store only ever holds ciphertext."""
        vault = PayloadVault("master")
        store = ZNodeStore()
        client = SecureKeeperClient(vault, store)
        client.put("/secrets", "the launch codes")
        raw, _ = store.get("/secrets")
        assert b"launch codes" not in raw
        assert client.read("/secrets") == "the launch codes"

    def test_update_via_cas(self, partitioned):
        client = SecureKeeperClient(PayloadVault("m"), ZNodeStore())
        client.put("/cfg", "v1")
        client.put("/cfg", "v2")
        assert client.read("/cfg") == "v2"

    def test_encrypt_crossings_counted(self, partitioned):
        vault = PayloadVault("m")
        before = partitioned.transition_stats.ecalls
        vault.encrypt("x")
        assert partitioned.transition_stats.ecalls == before + 1
