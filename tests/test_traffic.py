"""Open-loop traffic (repro.traffic) and the traffic ablation.

Covers seeded arrival stamping (replay, independent streams, diurnal
rate curve, realised offered load), the admission controller (bounded
run set + queue, deadline shedding, token-bucket backpressure, typed
:class:`~repro.errors.OverloadError` reasons), the open-loop harness
(queueing delay in measured latency, zero-cost identity with upfront
spawning) and the experiment-level invariants (zero-cost check, chaos
run with zero acked-state loss).
"""

from __future__ import annotations

import pytest

from repro.concurrency import SessionScheduler
from repro.costs.platform import fresh_platform
from repro.errors import ConfigurationError, OverloadError, ReproError
from repro.experiments import traffic_exp
from repro.traffic import (
    AdmissionController,
    DiurnalProcess,
    OpenLoopHarness,
    PoissonProcess,
    Request,
    TokenBucket,
    WorkloadGenerator,
    mix_counts,
    offered_rate_per_s,
)


def _request(rid, arrival_ns, app="bank", ops=1, key="bank-0"):
    return Request(rid=rid, app=app, arrival_ns=arrival_ns, ops=ops, key=key)


# ---------------------------------------------------------------------------
# Arrival processes + workload generator
# ---------------------------------------------------------------------------


class TestArrivals:
    def test_same_seed_replays_identically(self):
        a = WorkloadGenerator(10_000.0, seed=7).generate(200)
        b = WorkloadGenerator(10_000.0, seed=7).generate(200)
        assert a == b
        c = WorkloadGenerator(10_000.0, seed=8).generate(200)
        assert a != c

    def test_schedule_shape(self):
        requests = WorkloadGenerator(
            10_000.0, seed=3, ops_cap=8, keys_per_app=4
        ).generate(300)
        assert [r.rid for r in requests] == list(range(300))
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(r.arrival_ns > 0 for r in requests)
        assert all(1 <= r.ops <= 8 for r in requests)
        assert all(r.key.startswith(f"{r.app}-") for r in requests)
        assert all(int(r.key.split("-")[1]) < 4 for r in requests)

    def test_mix_follows_weights(self):
        requests = WorkloadGenerator(10_000.0, seed=11).generate(2_000)
        counts = mix_counts(requests)
        assert counts["bank"] > counts["keeper"] > counts["paldb"]
        assert 0.5 < counts["bank"] / len(requests) < 0.7

    def test_mix_change_keeps_arrival_instants(self):
        # Independent seeded streams: reshaping the app mix must not
        # reshuffle when requests arrive.
        base = WorkloadGenerator(10_000.0, seed=7).generate(100)
        skewed = WorkloadGenerator(
            10_000.0, seed=7, app_mix=(("keeper", 1.0),)
        ).generate(100)
        assert [r.arrival_ns for r in base] == [r.arrival_ns for r in skewed]
        assert all(r.app == "keeper" for r in skewed)

    def test_offered_rate_matches_target(self):
        requests = WorkloadGenerator(50_000.0, seed=2).generate(4_000)
        rate = offered_rate_per_s(requests)
        assert 0.85 * 50_000 < rate < 1.15 * 50_000
        assert offered_rate_per_s(requests[:1]) == 0.0

    def test_flat_diurnal_matches_poisson(self):
        poisson = PoissonProcess(5_000.0, seed=3).gaps_ns()
        flat = DiurnalProcess(5_000.0, amplitude=0.0, seed=3).gaps_ns()
        for _ in range(50):
            assert next(poisson) == next(flat)

    def test_diurnal_peak_runs_hotter_than_trough(self):
        process = DiurnalProcess(
            10_000.0, amplitude=0.9, period_s=0.001, seed=1
        )
        assert process._rate_at(0.00025) > 1.5 * process.base_rate_per_s
        assert process._rate_at(0.00075) < 0.5 * process.base_rate_per_s

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0)
        with pytest.raises(ConfigurationError):
            DiurnalProcess(1_000.0, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalProcess(1_000.0, period_s=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(1_000.0, app_mix=())
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(1_000.0, ops_cap=0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(1_000.0).generate(-1)


# ---------------------------------------------------------------------------
# Token bucket + admission controller
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_refill_and_cap(self):
        bucket = TokenBucket(rate_per_s=1e9, capacity=2.0)  # 1 token/ns
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # drained
        assert bucket.try_take(1.0)  # 1ns refilled one token
        assert bucket.try_take(100.0)  # refill caps at capacity...
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)  # ...not at 100 tokens

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(1.0, 0.0)


class TestAdmissionController:
    def test_run_queue_shed_progression(self):
        admission = AdmissionController(capacity=2, queue_limit=2)
        assert admission.offer(_request(0, 0.0), 0.0) == "run"
        assert admission.offer(_request(1, 0.0), 0.0) == "run"
        assert admission.offer(_request(2, 0.0), 0.0) == "queued"
        assert admission.offer(_request(3, 0.0), 0.0) == "queued"
        with pytest.raises(OverloadError) as exc:
            admission.offer(_request(4, 0.0), 0.0)
        assert exc.value.reason == "queue-full"
        assert isinstance(exc.value, ReproError)
        stats = admission.stats
        assert stats.offered == 5 and stats.admitted == 2
        assert stats.queued == 2 and stats.shed["queue-full"] == 1
        assert stats.max_queue_depth == 2 and stats.max_in_flight == 2
        assert stats.shed_share() == pytest.approx(0.2)

    def test_release_promotes_fifo(self):
        admission = AdmissionController(capacity=1, queue_limit=4)
        admission.offer(_request(0, 0.0), 0.0)
        admission.offer(_request(1, 0.0), 0.0)
        admission.offer(_request(2, 0.0), 0.0)
        ready, expired = admission.release(10.0)
        assert [r.rid for r in ready] == [1] and expired == []
        ready, _ = admission.release(20.0)
        assert [r.rid for r in ready] == [2]

    def test_deadline_sheds_at_dequeue(self):
        admission = AdmissionController(
            capacity=1, queue_limit=4, deadline_ns=100.0
        )
        admission.offer(_request(0, 0.0), 0.0)
        admission.offer(_request(1, 0.0), 0.0)  # queued at t=0
        admission.offer(_request(2, 450.0), 450.0)  # queued at t=450
        ready, expired = admission.release(500.0)
        # rid 1 out-waited its deadline; rid 2 is still live and starts.
        assert [r.rid for r in expired] == [1]
        assert [r.rid for r in ready] == [2]
        assert admission.stats.shed["deadline"] == 1

    def test_backpressure_bucket_is_per_app(self):
        admission = AdmissionController(
            capacity=8,
            buckets={"paldb": TokenBucket(rate_per_s=1.0, capacity=1.0)},
        )
        assert admission.offer(_request(0, 0.0, app="paldb"), 0.0) == "run"
        with pytest.raises(OverloadError) as exc:
            admission.offer(_request(1, 0.0, app="paldb"), 0.0)
        assert exc.value.reason == "backpressure"
        # Other apps have no bucket and sail through.
        assert admission.offer(_request(2, 0.0, app="bank"), 0.0) == "run"
        assert admission.stats.shed["backpressure"] == 1

    def test_capacity_raise_and_drain(self):
        admission = AdmissionController(capacity=1, queue_limit=4)
        admission.offer(_request(0, 0.0), 0.0)
        admission.offer(_request(1, 0.0), 0.0)
        admission.offer(_request(2, 0.0), 0.0)
        assert admission.drain(1.0) == ([], [])  # no free slot yet
        admission.set_capacity(3)
        ready, expired = admission.drain(1.0)
        assert [r.rid for r in ready] == [1, 2] and expired == []
        assert admission.in_flight == 3
        assert admission.queue_depth == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1, queue_limit=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1, deadline_ns=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1).set_capacity(0)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1).release(0.0)


# ---------------------------------------------------------------------------
# OpenLoopHarness
# ---------------------------------------------------------------------------


def _charging_factory(platform, service_ns=1_000.0):
    """Bodies that charge one fixed-cost segment per op."""

    def factory(request):
        def body():
            for _ in range(request.ops):
                platform.charge_ns("traffic.test_work", service_ns)
                yield 0.0
            return request.rid

        return body()

    return factory


class TestOpenLoopHarness:
    def test_latency_includes_queueing_delay(self):
        platform = fresh_platform()
        scheduler = SessionScheduler(platform, seed=1)
        admission = AdmissionController(capacity=1, queue_limit=4)
        harness = OpenLoopHarness(
            scheduler, _charging_factory(platform), admission=admission
        )
        result = harness.run([_request(0, 0.0), _request(1, 10.0)])
        assert len(result.completions) == 2
        first, second = sorted(result.completions, key=lambda c: c.rid)
        assert first.queue_ns == 0.0
        # rid 1 arrived at 10 but only started when rid 0 finished.
        assert second.started_ns == first.finished_ns
        assert second.queue_ns > 0.0
        assert second.latency_ns > first.latency_ns

    def test_shed_requests_never_run(self):
        platform = fresh_platform()
        scheduler = SessionScheduler(platform, seed=1)
        admission = AdmissionController(capacity=1, queue_limit=0)
        harness = OpenLoopHarness(
            scheduler, _charging_factory(platform), admission=admission
        )
        requests = [_request(i, 0.0) for i in range(4)]
        result = harness.run(requests)
        assert len(result.completions) == 1
        assert result.shed_counts() == {"queue-full": 3}
        assert len(result.completions) + len(result.shed) == len(requests)

    def test_harness_off_prices_like_upfront_spawning(self):
        # The zero-cost invariant at harness level: with admission and
        # autoscaling off, the merge loop replays the exact step
        # sequence of spawning every session up front.
        requests = WorkloadGenerator(5_000.0, seed=9).generate(20)

        def run_harness():
            platform = fresh_platform()
            scheduler = SessionScheduler(platform, seed=4)
            harness = OpenLoopHarness(scheduler, _charging_factory(platform))
            harness.run(list(requests))
            return platform, scheduler

        def run_upfront():
            platform = fresh_platform()
            scheduler = SessionScheduler(platform, seed=4)
            factory = _charging_factory(platform)
            for request in requests:
                scheduler.spawn(
                    f"r{request.rid}",
                    factory(request),
                    start_ns=request.arrival_ns,
                )
            scheduler.run()
            return platform, scheduler

        harness_platform, harness_sched = run_harness()
        upfront_platform, upfront_sched = run_upfront()
        assert dict(harness_platform.snapshot()) == dict(
            upfront_platform.snapshot()
        )
        assert harness_platform.now_s == upfront_platform.now_s
        assert harness_sched.trace_digest() == upfront_sched.trace_digest()

    def test_percentile_is_nearest_rank(self):
        from repro.traffic.harness import Completion, TrafficResult

        result = TrafficResult(
            completions=[
                Completion(
                    rid=i,
                    app="bank",
                    arrival_ns=0.0,
                    started_ns=0.0,
                    finished_ns=float(i + 1),
                )
                for i in range(10)
            ]
        )
        assert result.latency_percentile(50) == 5.0
        assert result.latency_percentile(95) == 10.0
        assert result.latency_percentile(100) == 10.0
        with pytest.raises(ConfigurationError):
            result.latency_percentile(0.0)
        with pytest.raises(ConfigurationError):
            result.latency_percentile(101.0)
        assert TrafficResult().latency_percentile(99) == 0.0

    def test_validation(self):
        platform = fresh_platform()
        scheduler = SessionScheduler(platform, seed=1)
        with pytest.raises(ConfigurationError):
            OpenLoopHarness(
                scheduler, _charging_factory(platform), autoscale_every_ns=0.0
            )


# ---------------------------------------------------------------------------
# The traffic ablation's invariants (small parameters)
# ---------------------------------------------------------------------------


class TestTrafficExperiment:
    def test_zero_cost_check_holds(self):
        assert traffic_exp.check_zero_cost(
            rate_per_s=2_000.0, n_requests=12, seed=5
        )

    def test_plain_run_replays_identically(self):
        kwargs = dict(mode="plain", rate_per_s=2_000.0, n_requests=12, seed=5)
        a = traffic_exp.run_traffic(**kwargs)
        b = traffic_exp.run_traffic(**kwargs)
        assert a.ledger == b.ledger
        assert a.trace_digest == b.trace_digest
        assert a.checksum == b.checksum

    def test_overload_sheds_but_serves(self):
        run = traffic_exp.run_traffic(
            "fixed", rate_per_s=100_000.0, n_requests=60, seed=5
        )
        assert run.shed_total > 0
        assert run.completed > 0
        assert run.completed + run.shed_total == run.requests
        assert run.final_shards == 1

    def test_chaos_never_loses_acked_state(self):
        run = traffic_exp.run_traffic(
            "autoscaled",
            rate_per_s=100_000.0,
            n_requests=40,
            seed=traffic_exp.DEFAULT_SEED + 2,
            chaos=True,
        )
        assert run.migration["interruptions"] >= 1
        assert run.lost_acked == 0
        assert run.dup_applied == 0
