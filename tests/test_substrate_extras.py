"""Tests for the deeper substrate features: TCS accounting, enclave
config XML, local attestation, encapsulation validation and TCB
accounting."""

import pytest

from repro.apps.bank import BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import trusted, untrusted
from repro.core.tcb import compare, partitioned_tcb, scone_tcb, unpartitioned_tcb
from repro.core.validation import EncapsulationValidator
from repro.costs import fresh_platform
from repro.errors import (
    AttestationError,
    ConfigurationError,
    PartitionError,
    TransitionError,
)
from repro.sgx import AttestationService, SgxSdk, TransitionLayer
from repro.sgx.config_xml import parse_config_xml, render_config_xml
from repro.sgx.enclave import EnclaveConfig


def make_enclave(platform, name="img", code=b"code", tcs=2):
    sdk = SgxSdk(platform)
    return sdk.create_enclave(
        sdk.sign(name, code, config=EnclaveConfig(tcs_count=tcs))
    )


class TestTcsAccounting:
    def test_nested_ecalls_consume_tcs(self):
        platform = fresh_platform()
        enclave = make_enclave(platform, tcs=2)
        layer = TransitionLayer(platform, enclave)

        def depth_three():
            return layer.ecall(
                "level2", lambda: layer.ecall("level3", lambda: 42)
            )

        with pytest.raises(TransitionError):
            layer.ecall("level1", depth_three)

    def test_within_tcs_budget_succeeds(self):
        platform = fresh_platform()
        enclave = make_enclave(platform, tcs=3)
        layer = TransitionLayer(platform, enclave)
        result = layer.ecall(
            "l1", lambda: layer.ecall("l2", lambda: layer.ecall("l3", lambda: 7))
        )
        assert result == 7

    def test_tcs_released_after_return(self):
        platform = fresh_platform()
        enclave = make_enclave(platform, tcs=1)
        layer = TransitionLayer(platform, enclave)
        for _ in range(5):  # sequential ecalls reuse the slot
            layer.ecall("seq", lambda: None)
        assert layer.stats.ecalls == 5

    def test_tcs_released_after_exception(self):
        platform = fresh_platform()
        enclave = make_enclave(platform, tcs=1)
        layer = TransitionLayer(platform, enclave)

        def boom():
            raise ValueError("inside enclave")

        with pytest.raises(ValueError):
            layer.ecall("boom", boom)
        assert layer.ecall("after", lambda: "ok") == "ok"

    def test_ocall_does_not_consume_tcs(self):
        platform = fresh_platform()
        enclave = make_enclave(platform, tcs=1)
        layer = TransitionLayer(platform, enclave)
        # ecall -> ocall -> (no re-entry) stays within one TCS.
        result = layer.ecall("in", lambda: layer.ocall("out", lambda: 5))
        assert result == 5


class TestConfigXml:
    def test_round_trip(self):
        config = EnclaveConfig(
            heap_max_bytes=4 << 30, stack_max_bytes=8 << 20, tcs_count=8, debug=False
        )
        parsed = parse_config_xml(render_config_xml(config))
        assert parsed == config

    def test_paper_defaults_render(self):
        text = render_config_xml(EnclaveConfig())
        assert "<HeapMaxSize>0x100000000</HeapMaxSize>" in text  # 4 GB
        assert "<StackMaxSize>0x800000</StackMaxSize>" in text  # 8 MB

    def test_debug_flag(self):
        text = render_config_xml(EnclaveConfig(debug=True))
        assert "<DisableDebug>0</DisableDebug>" in text
        assert parse_config_xml(text).debug

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_config_xml("<EnclaveConfiguration></EnclaveConfiguration>")

    def test_bad_integer_rejected(self):
        text = render_config_xml(EnclaveConfig()).replace("0x800000", "huge")
        with pytest.raises(ConfigurationError):
            parse_config_xml(text)

    def test_negative_prod_id_rejected(self):
        with pytest.raises(ConfigurationError):
            render_config_xml(EnclaveConfig(), prod_id=-1)


class TestLocalAttestation:
    def test_enclave_to_enclave(self):
        platform = fresh_platform()
        alpha = make_enclave(platform, "alpha", b"alpha-code")
        beta = make_enclave(platform, "beta", b"beta-code")
        service = AttestationService()
        report = service.create_targeted_report(alpha, beta, b"hello")
        service.verify_local(report, verifier=beta)

    def test_wrong_target_rejected(self):
        platform = fresh_platform()
        alpha = make_enclave(platform, "alpha", b"alpha-code")
        beta = make_enclave(platform, "beta", b"beta-code")
        gamma = make_enclave(platform, "gamma", b"gamma-code")
        service = AttestationService()
        report = service.create_targeted_report(alpha, beta)
        with pytest.raises(AttestationError):
            service.verify_local(report, verifier=gamma)

    def test_forged_mac_rejected(self):
        from dataclasses import replace

        platform = fresh_platform()
        alpha = make_enclave(platform, "alpha", b"alpha-code")
        beta = make_enclave(platform, "beta", b"beta-code")
        service = AttestationService()
        report = service.create_targeted_report(alpha, beta)
        with pytest.raises(AttestationError):
            service.verify_local(replace(report, mac=b"\x00" * 32), verifier=beta)

    def test_report_carries_sender_measurement(self):
        platform = fresh_platform()
        alpha = make_enclave(platform, "alpha", b"alpha-code")
        beta = make_enclave(platform, "beta", b"beta-code")
        report = AttestationService().create_targeted_report(alpha, beta)
        assert report.report.measurement == alpha.measurement


class TestEncapsulationValidator:
    def test_clean_application_passes(self):
        assert EncapsulationValidator().validate(list(BANK_CLASSES)) == ()

    def test_foreign_field_access_detected(self):
        @trusted
        class Wallet:
            def __init__(self):
                self.secret_key = "k"

            def use(self):
                return self.secret_key

        @untrusted
        class Snooper:
            def peek(self):
                wallet = Wallet()
                return wallet.secret_key  # encapsulation violation

        violations = EncapsulationValidator().validate([Wallet, Snooper])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.accessing_class == "Snooper"
        assert violation.target_class == "Wallet"
        assert violation.field == "secret_key"
        assert "§5.1" in violation.describe()

    def test_strict_mode_raises(self):
        @trusted
        class Vault:
            def __init__(self):
                self.pin = 1234

        @untrusted
        class Thief:
            def rob(self):
                vault = Vault()
                return vault.pin

        with pytest.raises(PartitionError):
            EncapsulationValidator().validate([Vault, Thief], strict=True)

    def test_own_field_access_allowed(self):
        @trusted
        class SelfUser:
            def __init__(self):
                self.state = 0

            def bump(self):
                self.state += 1

        assert EncapsulationValidator().validate([SelfUser]) == ()

    def test_getattr_string_access_detected(self):
        @trusted
        class Locker:
            def __init__(self):
                self.combo = "0000"

        @untrusted
        class Lockpick:
            def read(self):
                locker = Locker()
                return getattr(locker, "combo")  # string-based access

            def write(self):
                locker = Locker()
                setattr(locker, "combo", "1234")

        violations = EncapsulationValidator().validate([Locker, Lockpick])
        assert len(violations) == 2
        assert {v.accessing_method for v in violations} == {"read", "write"}
        assert all(v.field == "combo" for v in violations)

    def test_getattr_with_dynamic_name_ignored(self):
        @trusted
        class Cabinet:
            def __init__(self):
                self.files = []

        @untrusted
        class Browser:
            def lookup(self, which):
                cabinet = Cabinet()
                return getattr(cabinet, which, None)  # not a literal

        assert EncapsulationValidator().validate([Cabinet, Browser]) == ()

    def test_method_calls_are_not_violations(self):
        @trusted
        class Service:
            def __init__(self):
                self.data = []

            def add(self, x):
                self.data.append(x)

        @untrusted
        class Caller:
            def use(self):
                service = Service()
                service.add(1)  # method call: fine

        assert EncapsulationValidator().validate([Service, Caller]) == ()


class TestTcbReports:
    def test_partitioned_smaller_than_scone(self):
        app = Partitioner(PartitionOptions(name="tcb")).partition(
            BANK_CLASSES, main="Main.main"
        )
        part = partitioned_tcb(app)
        scone = scone_tcb(app_code_bytes=app.images.trusted.code_size_bytes)
        assert part.total_bytes < scone.total_bytes / 10

    def test_partitioned_smaller_than_unpartitioned(self):
        from repro.apps.paldb.workload import ReaderLogic, WriterLogic

        partitioner = Partitioner(PartitionOptions(name="tcb2"))
        part_app = partitioner.partition(BANK_CLASSES, main="Main.main")
        unpart_app = partitioner.unpartitioned(list(BANK_CLASSES))
        part = partitioned_tcb(part_app)
        unpart = unpartitioned_tcb(unpart_app)
        assert part.total_bytes <= unpart.total_bytes * 1.2

    def test_reports_format(self):
        app = Partitioner(PartitionOptions(name="tcb3")).partition(
            BANK_CLASSES, main="Main.main"
        )
        text = partitioned_tcb(app).format()
        assert "shim libc" in text
        assert "TOTAL" in text
        comparison = compare([partitioned_tcb(app), scone_tcb(100_000)])
        assert "SCONE + JVM" in comparison
