"""Tests for the multi-isolate proxy-mirror extension (§7 future work)."""

import gc

import pytest

from repro.apps.bank import BANK_CLASSES, Account, Person
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.multi_isolate import (
    DEFAULT_ISOLATE,
    MultiIsolateRuntime,
    upgrade_session,
)
from repro.core.proxy import is_proxy, proxy_hash
from repro.errors import RmiError


@pytest.fixture()
def session():
    app = Partitioner(PartitionOptions(name="multi_iso")).partition(
        BANK_CLASSES, main="Main.main"
    )
    with app.start() as live_session:
        upgrade_session(live_session)
        yield live_session


class TestIsolateManagement:
    def test_default_isolates_exist(self, session):
        runtime = session.runtime
        assert runtime.isolate_names(Side.TRUSTED) == (DEFAULT_ISOLATE,)
        assert runtime.isolate_names(Side.UNTRUSTED) == (DEFAULT_ISOLATE,)

    def test_spawn_and_list(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.TRUSTED, "crypto")
        assert runtime.isolate_names(Side.TRUSTED) == ("crypto", DEFAULT_ISOLATE)

    def test_duplicate_spawn_rejected(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.TRUSTED, "crypto")
        with pytest.raises(RmiError):
            runtime.spawn_isolate(Side.TRUSTED, "crypto")

    def test_unknown_isolate_rejected(self, session):
        with pytest.raises(RmiError):
            with session.runtime.in_isolate(Side.TRUSTED, "ghost"):
                pass

    def test_default_cannot_be_torn_down(self, session):
        with pytest.raises(RmiError):
            session.runtime.tear_down_isolate(Side.TRUSTED, DEFAULT_ISOLATE)


class TestPinnedMirrors:
    def test_mirror_lands_in_active_isolate(self, session):
        runtime = session.runtime
        crypto = runtime.spawn_isolate(Side.TRUSTED, "crypto")
        default = runtime.state_of(Side.TRUSTED)
        with runtime.in_isolate(Side.TRUSTED, "crypto"):
            account = Account("pinned", 1)
        assert is_proxy(account)
        assert crypto.registry.live_count() == 1
        assert default.registry.live_count() == 0

    def test_invocation_routes_to_pinned_isolate(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.TRUSTED, "crypto")
        with runtime.in_isolate(Side.TRUSTED, "crypto"):
            account = Account("pinned", 10)
        # Invoked *outside* the pinning block: routing is by hash.
        account.update_balance(5)
        assert account.get_balance() == 15

    def test_mirrors_in_different_isolates_coexist(self, session):
        runtime = session.runtime
        vault = runtime.spawn_isolate(Side.TRUSTED, "vault")
        account_default = Account("default", 1)
        with runtime.in_isolate(Side.TRUSTED, "vault"):
            account_vault = Account("vault", 2)
        assert account_default.get_balance() == 1
        assert account_vault.get_balance() == 2
        assert vault.registry.live_count() == 1
        assert runtime._isolates[Side.TRUSTED][DEFAULT_ISOLATE].registry.live_count() == 1

    def test_untrusted_side_isolates_too(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.UNTRUSTED, "net")
        with session.on_side(Side.TRUSTED):
            with runtime.in_isolate(Side.UNTRUSTED, "net"):
                person = Person("outside", 7)
            assert is_proxy(person)
        net_state = runtime._isolates[Side.UNTRUSTED]["net"]
        # Person mirror pinned to the 'net' untrusted isolate; its
        # nested trusted Account lives on the trusted side.
        assert net_state.registry.live_count() == 1

    def test_teardown_releases_mirrors(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.TRUSTED, "tmp")
        with runtime.in_isolate(Side.TRUSTED, "tmp"):
            account = Account("doomed", 3)
        dropped = runtime.tear_down_isolate(Side.TRUSTED, "tmp")
        assert dropped == 1
        with pytest.raises(RmiError):
            account.get_balance()

    def test_gc_scan_per_isolate(self, session):
        runtime = session.runtime
        crypto = runtime.spawn_isolate(Side.TRUSTED, "crypto")
        with runtime.in_isolate(Side.TRUSTED, "crypto"):
            account = Account("short-lived", 4)
        assert crypto.registry.live_count() == 1
        del account
        gc.collect()
        released = runtime.scan_all()
        assert released == 1
        assert crypto.registry.live_count() == 0

    def test_independent_heaps(self, session):
        runtime = session.runtime
        crypto = runtime.spawn_isolate(Side.TRUSTED, "crypto")
        default = runtime._isolates[Side.TRUSTED][DEFAULT_ISOLATE]
        assert crypto.isolate.heap is not default.isolate.heap
        crypto.isolate.heap.alloc(128)
        assert default.isolate.heap.stats.live_bytes == 0

    def test_describe_lists_all_isolates(self, session):
        runtime = session.runtime
        runtime.spawn_isolate(Side.TRUSTED, "crypto")
        text = runtime.describe_isolates()
        assert "trusted/crypto" in text
        assert "untrusted/default" in text
