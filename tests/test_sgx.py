"""Unit tests for the SGX substrate: EPC, driver, enclave, transitions,
EDL, Edger8r, attestation and the SDK facade."""

import pytest

from repro.costs import fresh_platform
from repro.errors import (
    AttestationError,
    ConfigurationError,
    EnclaveError,
    EpcError,
)
from repro.sgx import (
    AttestationService,
    Edger8r,
    EdlFile,
    EdlFunction,
    EdlParam,
    EpcPageCache,
    SgxDriver,
    SgxSdk,
    TransitionLayer,
)
from repro.sgx.enclave import EnclaveConfig, EnclaveContents, EnclaveState


def make_enclave(platform=None, code=b"enclave-code"):
    platform = platform or fresh_platform()
    sdk = SgxSdk(platform)
    return platform, sdk, sdk.create_enclave(sdk.sign("img", code))


class TestEpcPageCache:
    def test_hit_after_touch(self):
        epc = EpcPageCache(capacity_bytes=8 * 4096)
        faulted, _ = epc.touch(1, 0)
        assert faulted
        faulted, _ = epc.touch(1, 0)
        assert not faulted
        assert epc.stats.hits == 1
        assert epc.stats.faults == 1

    def test_lru_eviction(self):
        epc = EpcPageCache(capacity_bytes=2 * 4096)
        epc.touch(1, 0)
        epc.touch(1, 1)
        faulted, evicted = epc.touch(1, 2)
        assert faulted
        assert evicted == (1, 0)

    def test_touch_refreshes_lru_position(self):
        epc = EpcPageCache(capacity_bytes=2 * 4096)
        epc.touch(1, 0)
        epc.touch(1, 1)
        epc.touch(1, 0)  # page 0 becomes most-recent
        _, evicted = epc.touch(1, 2)
        assert evicted == (1, 1)

    def test_touch_range_counts_faults(self):
        epc = EpcPageCache(capacity_bytes=100 * 4096)
        faults = epc.touch_range(1, 0, 10 * 4096)
        assert faults == 10
        assert epc.touch_range(1, 0, 10 * 4096) == 0

    def test_touch_range_zero_bytes(self):
        epc = EpcPageCache(capacity_bytes=4096)
        assert epc.touch_range(1, 0, 0) == 0

    def test_evict_enclave_drops_all_pages(self):
        epc = EpcPageCache(capacity_bytes=100 * 4096)
        epc.touch_range(1, 0, 5 * 4096)
        epc.touch_range(2, 0, 3 * 4096)
        assert epc.evict_enclave(1) == 5
        assert epc.resident_pages(1) == 0
        assert epc.resident_pages(2) == 3

    def test_fault_rate(self):
        epc = EpcPageCache(capacity_bytes=100 * 4096)
        epc.touch(1, 0)
        epc.touch(1, 0)
        assert epc.stats.fault_rate() == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(EpcError):
            EpcPageCache(capacity_bytes=0)
        with pytest.raises(EpcError):
            EpcPageCache(capacity_bytes=100, page_bytes=4096)

    def test_negative_range_rejected(self):
        with pytest.raises(EpcError):
            EpcPageCache(capacity_bytes=4096).touch_range(1, -1, 10)


class TestSgxDriver:
    def test_faults_charge_time(self):
        platform = fresh_platform()
        driver = SgxDriver(platform)
        ns = driver.access(1, 0, 10 * 4096)
        assert ns > 0
        assert driver.stats.faults_serviced == 10

    def test_warm_access_is_free(self):
        driver = SgxDriver(fresh_platform())
        driver.access(1, 0, 4096)
        assert driver.access(1, 0, 4096) == 0.0

    def test_release_enclave(self):
        driver = SgxDriver(fresh_platform())
        driver.access(1, 0, 4 * 4096)
        assert driver.release_enclave(1) == 4


class TestEnclaveLifecycle:
    def test_create_and_measure(self):
        _, _, enclave = make_enclave()
        assert enclave.state is EnclaveState.INITIALIZED
        assert len(enclave.measurement) == 64

    def test_measurement_depends_on_code(self):
        a = EnclaveContents("img", b"aaa").measure()
        b = EnclaveContents("img", b"bbb").measure()
        assert a != b

    def test_measurement_depends_on_config(self):
        a = EnclaveContents("img", b"x", EnclaveConfig(heap_max_bytes=1 << 20)).measure()
        b = EnclaveContents("img", b"x", EnclaveConfig(heap_max_bytes=1 << 21)).measure()
        assert a != b

    def test_double_destroy_rejected(self):
        _, sdk, enclave = make_enclave()
        sdk.destroy_enclave(enclave)
        with pytest.raises(EnclaveError):
            enclave.destroy()

    def test_use_after_destroy_rejected(self):
        platform, sdk, enclave = make_enclave()
        sdk.destroy_enclave(enclave)
        layer = TransitionLayer(platform, enclave)
        with pytest.raises(EnclaveError):
            layer.ecall("f", lambda: None)

    def test_tampered_signature_refused(self):
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        signed = sdk.sign("img", b"code")
        from dataclasses import replace

        tampered = replace(signed, signature=b"\x00" * 32)
        with pytest.raises(EnclaveError):
            sdk.create_enclave(tampered)

    def test_tampered_code_refused(self):
        from dataclasses import replace

        platform = fresh_platform()
        sdk = SgxSdk(platform)
        signed = sdk.sign("img", b"code")
        evil = replace(
            signed, contents=EnclaveContents("img", b"evil-code", signed.contents.config)
        )
        with pytest.raises(EnclaveError):
            sdk.create_enclave(evil)


class TestTransitions:
    def test_ecall_executes_body_inside(self):
        platform, _, enclave = make_enclave()
        layer = TransitionLayer(platform, enclave)
        assert layer.ecall("f", lambda: 42) == 42
        assert layer.stats.ecalls == 1

    def test_ocall_counts(self):
        platform, _, enclave = make_enclave()
        layer = TransitionLayer(platform, enclave)
        layer.ocall("g", lambda: None, payload_bytes=100)
        assert layer.stats.ocalls == 1
        assert layer.stats.bytes_out == 100

    def test_transition_cost_includes_isolate_attach(self):
        platform, _, enclave = make_enclave()
        layer = TransitionLayer(platform, enclave)
        before = platform.clock.now_ns
        layer.ecall("f", lambda: None)
        elapsed_cycles = platform.spec.ns_to_cycles(platform.clock.now_ns - before)
        trans = platform.cost_model.transitions
        expected = trans.ecall_cycles + trans.edge_fixed_cycles + trans.isolate_attach_cycles
        assert elapsed_cycles == pytest.approx(expected)

    def test_switchless_is_cheaper(self):
        p1, _, e1 = make_enclave()
        p2, _, e2 = make_enclave()
        normal = TransitionLayer(p1, e1)
        switchless = TransitionLayer(p2, e2, switchless=True)
        t1 = p1.clock.now_ns
        normal.ecall("f", lambda: None)
        normal_cost = p1.clock.now_ns - t1
        t2 = p2.clock.now_ns
        switchless.ecall("f", lambda: None)
        switchless_cost = p2.clock.now_ns - t2
        assert switchless_cost < normal_cost / 5
        assert switchless.stats.switchless_calls == 1

    def test_payload_increases_cost(self):
        platform, _, enclave = make_enclave()
        layer = TransitionLayer(platform, enclave)
        t0 = platform.clock.now_ns
        layer.ecall("f", lambda: None, payload_bytes=0)
        small = platform.clock.now_ns - t0
        t1 = platform.clock.now_ns
        layer.ecall("f", lambda: None, payload_bytes=1_000_000)
        large = platform.clock.now_ns - t1
        assert large > small


class TestEdl:
    def test_render_contains_sections(self):
        edl = EdlFile("app")
        edl.add_ecall(EdlFunction("ecall_f", params=(EdlParam("int", "x"),)))
        edl.add_ocall(EdlFunction("ocall_g"))
        text = edl.render()
        assert "trusted {" in text
        assert "untrusted {" in text
        assert "public void ecall_f(int x);" in text

    def test_sized_buffer_attributes(self):
        param = EdlParam("char*", "buf", direction="in", size_expr="len")
        assert param.render() == "[in, size=len] char* buf"

    def test_duplicate_routine_rejected(self):
        edl = EdlFile("app")
        edl.add_ecall(EdlFunction("f"))
        with pytest.raises(ConfigurationError):
            edl.add_ocall(EdlFunction("f"))

    def test_direction_on_non_pointer_rejected(self):
        with pytest.raises(ConfigurationError):
            EdlParam("int", "x", direction="in")

    def test_unsupported_type_rejected(self):
        with pytest.raises(ConfigurationError):
            EdlParam("java.lang.Object", "obj")

    def test_duplicate_params_rejected(self):
        with pytest.raises(ConfigurationError):
            EdlFunction("f", params=(EdlParam("int", "x"), EdlParam("long", "x")))


class TestEdger8r:
    def make_edl(self):
        edl = EdlFile("app")
        edl.add_ecall(
            EdlFunction(
                "ecall_put",
                params=(
                    EdlParam("char*", "buf", direction="in", size_expr="len"),
                    EdlParam("size_t", "len"),
                ),
            )
        )
        edl.add_ocall(EdlFunction("ocall_log"))
        return edl

    def test_generates_four_files(self):
        artifacts = Edger8r().generate(self.make_edl())
        assert artifacts.names() == ["app_t.c", "app_t.h", "app_u.c", "app_u.h"]

    def test_trusted_bridge_has_bounds_check(self):
        artifacts = Edger8r().generate(self.make_edl())
        assert "sgx_is_outside_enclave" in artifacts["app_t.c"]
        assert "memcpy" in artifacts["app_t.c"]

    def test_headers_declare_signatures(self):
        artifacts = Edger8r().generate(self.make_edl())
        assert "void ecall_put(char* buf, size_t len);" in artifacts["app_t.h"]
        assert "void ocall_log();" in artifacts["app_u.h"]


class TestAttestation:
    def test_quote_round_trip(self):
        _, _, enclave = make_enclave()
        service = AttestationService()
        report = service.create_report(enclave, b"nonce")
        quote = service.quote(report)
        service.verify(quote, expected_measurement=enclave.measurement)

    def test_wrong_measurement_rejected(self):
        _, _, enclave = make_enclave()
        service = AttestationService()
        quote = service.quote(service.create_report(enclave))
        with pytest.raises(AttestationError):
            service.verify(quote, expected_measurement="0" * 64)

    def test_forged_signature_rejected(self):
        from dataclasses import replace

        _, _, enclave = make_enclave()
        service = AttestationService()
        quote = service.quote(service.create_report(enclave))
        forged = replace(quote, signature=b"\x00" * 32)
        with pytest.raises(AttestationError):
            service.verify(forged, expected_measurement=enclave.measurement)

    def test_different_platform_key_rejected(self):
        _, _, enclave = make_enclave()
        signer = AttestationService(platform_key=b"A" * 32)
        verifier = AttestationService(platform_key=b"B" * 32)
        quote = signer.quote(signer.create_report(enclave))
        with pytest.raises(AttestationError):
            verifier.verify(quote, expected_measurement=enclave.measurement)

    def test_oversized_report_data_rejected(self):
        _, _, enclave = make_enclave()
        with pytest.raises(AttestationError):
            AttestationService().create_report(enclave, b"x" * 65)
