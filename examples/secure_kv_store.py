#!/usr/bin/env python3
"""Secure key-value store (§6.7) built on the PalDB-like substrate.

The classes storing and retrieving key/value pairs run inside the
enclave (the paper's RTWU scheme: reads, which PalDB serves from a
memory-mapped file, stay trusted) while the write-heavy I/O path stays
outside. The example compares the partitioned run against the
unpartitioned enclave image.

Run:  python examples/secure_kv_store.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.paldb import KvWorkload
from repro.apps.paldb.workload import (
    PALDB_RTWU_CLASSES,
    ReaderLogic,
    TrustedDBReader,
    UntrustedDBWriter,
    WriterLogic,
)
from repro.core import Partitioner, PartitionOptions

N_KEYS = 10_000


def run_partitioned(keys, values) -> float:
    options = PartitionOptions(name="secure_kv")
    app = Partitioner(options).partition(list(PALDB_RTWU_CLASSES))
    with app.start() as session:
        path = os.path.join(tempfile.mkdtemp(prefix="kv_"), "store.paldb")
        written = UntrustedDBWriter(path).write_all(keys, values)
        found, checksum = TrustedDBReader(path).read_all(keys)
        assert written == found == len(keys)
        print(f"partitioned:    wrote/read {found} pairs "
              f"(checksum {checksum}) in {session.platform.now_s:.3f} s "
              f"[{session.transition_stats.ecalls} ecalls, "
              f"{session.ocall_count()} ocalls]")
        return session.platform.now_s


def run_unpartitioned(keys, values) -> float:
    app = Partitioner(PartitionOptions(name="kv_nopart")).unpartitioned(
        [WriterLogic, ReaderLogic]
    )
    with app.start() as session:
        path = os.path.join(tempfile.mkdtemp(prefix="kv_"), "store.paldb")
        UntrustedDBWriter(path).write_all(keys, values)
        found, _ = TrustedDBReader(path).read_all(keys)
        assert found == len(keys)
        print(f"unpartitioned:  wrote/read {found} pairs "
              f"in {session.platform.now_s:.3f} s (whole app in enclave)")
        return session.platform.now_s


def main() -> None:
    keys, values = KvWorkload(n_keys=N_KEYS).generate()
    print(f"workload: {N_KEYS} pairs, 128-char values\n")
    partitioned = run_partitioned(keys, values)
    unpartitioned = run_unpartitioned(keys, values)
    print(f"\npartitioning speed-up: {unpartitioned / partitioned:.2f}x "
          "(paper reports ~2.5x for RTWU)")


if __name__ == "__main__":
    main()
