#!/usr/bin/env python3
"""Advanced features: multi-isolate mirrors and sealed storage.

Demonstrates the paper's §7 future-work extension (proxy-mirror pairs
across multiple isolates) together with §5.1's transparent field
protection: a signing key pinned to a dedicated 'crypto' trusted
isolate, with its material only ever leaving the enclave sealed.

Run:  python examples/multi_isolate_sealing.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import Partitioner, PartitionOptions, Side
from repro.core.annotations import trusted, untrusted
from repro.core.multi_isolate import upgrade_session
from repro.sgx.sealing import SealingService


@trusted
class SigningKey:
    """Key material; never leaves the enclave in the clear."""

    def __init__(self, key_id: str, material: str) -> None:
        self.key_id = key_id
        self.material = material

    def sign(self, message: str) -> int:
        """Toy MAC over the message with the in-enclave material."""
        digest = 0
        for ch in self.material + message:
            digest = (digest * 131 + ord(ch)) & 0xFFFFFFFF
        return digest

    def export_key_id(self) -> str:
        return self.key_id


@trusted
class Ledger:
    """Ordinary trusted state, living in the default isolate."""

    def __init__(self) -> None:
        self.entries = []

    def record(self, signature: int) -> int:
        self.entries.append(signature)
        return len(self.entries)


@untrusted
class Client:
    def __init__(self, name: str) -> None:
        self.name = name


def main() -> None:
    app = Partitioner(PartitionOptions(name="vault")).partition(
        [SigningKey, Ledger, Client]
    )
    with app.start() as session:
        runtime = upgrade_session(session)

        # Spawn a dedicated trusted isolate for key material: its heap
        # and GC are independent of the default trusted isolate (§2.2).
        runtime.spawn_isolate(Side.TRUSTED, "crypto")
        with runtime.in_isolate(Side.TRUSTED, "crypto"):
            key = SigningKey("k-2026-07", "hunter2-but-longer")

        ledger = Ledger()  # default trusted isolate
        signature = key.sign("transfer 100 to bob")  # routed to 'crypto'
        count = ledger.record(signature)

        print("== isolates ==")
        print(runtime.describe_isolates())
        print(f"\nsigned message -> {signature:#010x}, ledger entries: {count}")

        # Key material leaves the enclave only sealed.
        sealing = SealingService(session.enclave)
        sealed = sealing.seal({"key_id": key.export_key_id(), "material": "***"})
        print(f"sealed key blob: {sealed.size} bytes "
              f"(opens only inside measurement {session.enclave.measurement[:12]}…)")
        restored = sealing.unseal(sealed)
        print(f"unsealed inside the enclave: key_id={restored['key_id']}")

        # Tearing the crypto isolate down releases its mirrors.
        dropped = runtime.tear_down_isolate(Side.TRUSTED, "crypto")
        print(f"\ncrypto isolate torn down, {dropped} mirror(s) released")


if __name__ == "__main__":
    main()
