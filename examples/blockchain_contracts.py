#!/usr/bin/env python3
"""Blockchain smart contracts in enclaves (§6.7's second use case).

The business logic of smart contracts (balances, transfers, a token
ledger) is @trusted and executes inside the enclave; the networking /
peer-gossip classes are @untrusted. Neutral transaction records cross
the boundary serialized.

Run:  python examples/blockchain_contracts.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import dataclass

from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import trusted, untrusted
from repro.errors import ReproError


@dataclass(frozen=True)
class Transaction:
    """Neutral value object: serialized across the enclave boundary."""

    sender: str
    recipient: str
    amount: int
    nonce: int


@trusted
class TokenLedger:
    """In-enclave contract state: balances never leave the enclave."""

    def __init__(self, initial_supply: int, owner: str) -> None:
        self.balances = {owner: initial_supply}
        self.applied_nonces = set()

    def apply_transaction(self, tx: Transaction) -> bool:
        """Validate and execute one transfer; idempotent per nonce."""
        if tx.nonce in self.applied_nonces:
            return False  # replay
        if self.balances.get(tx.sender, 0) < tx.amount or tx.amount <= 0:
            return False
        self.balances[tx.sender] -= tx.amount
        self.balances[tx.recipient] = self.balances.get(tx.recipient, 0) + tx.amount
        self.applied_nonces.add(tx.nonce)
        return True

    def balance_of(self, account: str) -> int:
        return self.balances.get(account, 0)

    def total_supply(self) -> int:
        return sum(self.balances.values())


@untrusted
class GossipNode:
    """Untrusted networking: receives transactions from peers and
    relays them to the in-enclave ledger."""

    def __init__(self, ledger: TokenLedger) -> None:
        self.ledger = ledger
        self.accepted = 0
        self.rejected = 0

    def receive(self, tx: Transaction) -> None:
        if self.ledger.apply_transaction(tx):
            self.accepted += 1
        else:
            self.rejected += 1

    def stats(self) -> str:
        return f"accepted={self.accepted} rejected={self.rejected}"


def main() -> None:
    app = Partitioner(PartitionOptions(name="contracts")).partition(
        [TokenLedger, GossipNode]
    )
    with app.start() as session:
        ledger = TokenLedger(initial_supply=1_000_000, owner="treasury")
        node = GossipNode(ledger)

        node.receive(Transaction("treasury", "alice", 500, nonce=1))
        node.receive(Transaction("treasury", "bob", 300, nonce=2))
        node.receive(Transaction("alice", "bob", 200, nonce=3))
        node.receive(Transaction("alice", "bob", 200, nonce=3))  # replay
        node.receive(Transaction("mallory", "mallory", 10_000, nonce=4))  # no funds

        print("== contract state (read through the enclave boundary) ==")
        for account in ("treasury", "alice", "bob", "mallory"):
            print(f"  {account:<10} {ledger.balance_of(account):>9}")
        supply = ledger.total_supply()
        if supply != 1_000_000:
            raise ReproError(f"conservation violated: supply={supply}")
        print(f"  total supply conserved: {supply}")
        print(f"\ngossip node: {node.stats()}")
        print(session.runtime.describe())
        print(f"virtual time: {session.platform.now_s * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
