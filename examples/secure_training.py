#!/usr/bin/env python3
"""Secure ML training, Plinius-style (related work [59]).

Model weights and the SGD step live inside the enclave; the data loader
streams mini-batches from a real on-disk dataset outside. Training
recovers the generating coefficients, and the final weights leave the
enclave sealed.

Run:  python examples/secure_training.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.plinius import PLINIUS_CLASSES, train, write_dataset
from repro.core import Partitioner, PartitionOptions
from repro.sgx.sealing import SealingService

TRUE_WEIGHTS = [0.8, -1.2, 2.0, 0.4]


def main() -> None:
    dataset = os.path.join(tempfile.mkdtemp(prefix="plinius_"), "train.bin")
    write_dataset(dataset, TRUE_WEIGHTS, n_samples=960, noise=0.02)
    print(f"dataset: 960 samples, 4 features -> {dataset}")

    app = Partitioner(PartitionOptions(name="training")).partition(
        list(PLINIUS_CLASSES)
    )
    with app.start() as session:
        weights, mse = train(dataset, n_features=4, epochs=8, batch_size=32)
        print(f"\ntrue weights:      {TRUE_WEIGHTS}")
        print(f"recovered weights: {[round(w, 3) for w in weights]}")
        print(f"final batch MSE:   {mse:.5f}")
        print(f"enclave crossings: {session.transition_stats.ecalls} ecalls "
              f"(one per mini-batch + model ops)")

        # Checkpoint the model the Plinius way: sealed to the enclave.
        sealing = SealingService(session.enclave)
        checkpoint = sealing.seal({"weights": weights, "epoch": 8})
        restored = sealing.unseal(checkpoint)
        print(f"sealed checkpoint: {checkpoint.size} bytes; "
              f"restores epoch {restored['epoch']} inside the enclave")
        print(f"virtual time: {session.platform.now_s:.3f} s")


if __name__ == "__main__":
    main()
