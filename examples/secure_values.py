#!/usr/bin/env python3
"""Value-granular partitioning with secure()/declassify() (SecV-style).

Montsalvat partitions at class granularity: one secret field drags the
whole class into the enclave image and every call on it across the
boundary. This example re-partitions the bank at *value* granularity
instead — a single trusted vault mints sealed balances, and the
accounts that carry them stay untrusted — then compares the trusted
image and the crossing count against the class-granular original.

Run:  python examples/secure_values.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.bank import BANK_CLASSES, Account, AccountRegistry
from repro.apps.secv import (
    SECV_BANK_CLASSES,
    SettlementVault,
    ValueAccount,
    ValueLedger,
)
from repro.core import Partitioner, PartitionOptions, declassify, is_secure, secure
from repro.core.tcb import partitioned_tcb

N_ACCOUNTS = 3
ROUNDS = 5


def main() -> None:
    print("== secure values in five lines ==")
    sealed = secure(1_000, "balance:alice")
    print(f"sealed:       {sealed!r}")  # repr never leaks the payload
    grown = sealed.derive("interest", 1_050)
    print(f"derived:      provenance={list(grown.provenance)}")
    print(f"is_secure:    {is_secure(grown)}")
    # declassify() is the one audited exit — the reason is mandatory.
    print(f"declassified: {declassify(grown, 'example output')}")
    print()

    results = {}
    for label, classes in (
        ("class-granular", BANK_CLASSES),
        ("value-granular", SECV_BANK_CLASSES),
    ):
        app = Partitioner(PartitionOptions(name=label)).partition(list(classes))
        with app.start() as session:
            before = session.transition_stats.crossings
            if label == "class-granular":
                accounts = [Account(f"a{i}", 100) for i in range(N_ACCOUNTS)]
                for _ in range(ROUNDS):
                    for account in accounts:
                        account.update_balance(2)
                registry = AccountRegistry()
                for account in accounts:
                    registry.add_account(account)
                total = registry.total_balance()
            else:
                vault = SettlementVault()
                accounts = [
                    ValueAccount(f"a{i}", vault, 100) for i in range(N_ACCOUNTS)
                ]
                for _ in range(ROUNDS):
                    for account in accounts:
                        account.update_balance(2)  # local: no crossing
                ledger = ValueLedger()
                for account in accounts:
                    ledger.add_account(account)
                ledger.settle_all(vault)  # one ecall per account
                total = vault.total(ledger.sealed_balances())
            crossings = session.transition_stats.crossings - before
            tcb = partitioned_tcb(app).total_bytes
            methods = len(app.images.trusted.reachable.methods)
            results[label] = (total, crossings, tcb, methods)
            print(
                f"{label:>15}: total={total}  crossings={crossings}  "
                f"trusted bytes={tcb}  trusted methods={methods}"
            )

    (class_total, class_x, class_tcb, _) = results["class-granular"]
    (value_total, value_x, value_tcb, _) = results["value-granular"]
    print()
    print(f"same answer from both granularities: {class_total == value_total}")
    print(f"TCB bytes saved by secure values:    {class_tcb - value_tcb}")
    print(f"crossings saved by secure values:    {class_x - value_x}")


if __name__ == "__main__":
    main()
