#!/usr/bin/env python3
"""Trustworthy data analytics: VC3-style MapReduce (related work [44]).

The Hadoop-role framework (splitting, scheduling, shuffle) runs outside
the enclave and only ever moves sealed records; the user's map and
reduce functions — and the record keys — live inside. Word count over
sealed text, verified against a plain reference.

Run:  python examples/trusted_analytics.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.mapreduce import (
    MAPREDUCE_CLASSES,
    JobTracker,
    TrustedMapper,
    TrustedReducer,
    run_wordcount,
    seal_input,
    wordcount_reference,
)
from repro.core import Partitioner, PartitionOptions
from repro.core.tcb import partitioned_tcb

CORPUS = [
    "trusted execution environments shield code and data",
    "the enclave page cache is small but the protection is strong",
    "partition the application and keep the framework outside",
    "map and reduce run inside the enclave over sealed records",
    "the shuffle only ever moves ciphertext between the phases",
] * 40


def main() -> None:
    app = Partitioner(PartitionOptions(name="vc3_example")).partition(
        list(MAPREDUCE_CLASSES)
    )
    with app.start() as session:
        # Show the framework really only sees ciphertext.
        sealed = seal_input("job-key", CORPUS[:1])
        assert all(b"enclave" not in blob for blob in sealed)

        results = run_wordcount(CORPUS, n_splits=4)
        assert results == wordcount_reference(CORPUS)
        top = sorted(results.items(), key=lambda kv: -kv[1])[:5]

        print(f"word count over {len(CORPUS)} sealed lines "
              f"({len(results)} distinct words)")
        print("top words:", ", ".join(f"{w}={n}" for w, n in top))
        print(f"\nenclave crossings: {session.transition_stats.ecalls} ecalls "
              f"for {len(CORPUS)} records (coarse-grained relays)")
        print(f"virtual time: {session.platform.now_s * 1e3:.2f} ms")
        print()
        print(partitioned_tcb(app).format())


if __name__ == "__main__":
    main()
