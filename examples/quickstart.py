#!/usr/bin/env python3
"""Quickstart: partition the paper's bank example and run it.

Covers the full Montsalvat workflow (Fig. 1): annotated classes are
transformed into trusted/untrusted images, proxies and relay methods
are generated, the enclave is signed and launched, and the application
runs unchanged — with trusted objects living inside the (simulated)
enclave behind proxies.

Run:  python examples/quickstart.py
"""

import gc
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.bank import BANK_CLASSES, Account, AccountRegistry, Person
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.proxy import is_proxy, proxy_hash
from repro.sgx.attestation import AttestationService


def main() -> None:
    # Phases 2-4: transform, build both images, generate EDL/C, sign.
    partitioner = Partitioner(PartitionOptions(name="bank"))
    app = partitioner.partition(BANK_CLASSES, main="Main.main")

    print("== build artifacts ==")
    print(f"trusted image:    {app.images.trusted.artifact_name} "
          f"({app.images.trusted.code_size_bytes} bytes, "
          f"{len(app.images.trusted.reachable.methods)} methods)")
    print(f"untrusted image:  {app.images.untrusted.artifact_name} "
          f"({len(app.images.untrusted.reachable.methods)} methods)")
    print(f"generated files:  {', '.join(app.artifacts.names())}")
    print(f"Person pruned from trusted image: "
          f"{not app.images.trusted.contains_class('Person')}")
    print()

    with app.start() as session:
        # Verify the enclave before trusting it (remote attestation).
        attestation = AttestationService()
        quote = attestation.quote(attestation.create_report(session.enclave))
        attestation.verify(quote, expected_measurement=session.enclave.measurement)
        print("== attestation ==")
        print(f"enclave measurement verified: {session.enclave.measurement[:16]}…")
        print()

        # The application code is completely ordinary.
        alice = Person("Alice", 100)
        bob = Person("Bob", 25)
        alice.transfer(bob, 25)

        registry = AccountRegistry()
        registry.add_account(alice.get_account())
        registry.add_account(bob.get_account())

        account = alice.get_account()
        print("== runtime ==")
        print(f"alice's account is a proxy: {is_proxy(account)} "
              f"(hash={proxy_hash(account)})")
        print(f"alice balance: {account.get_balance()}  "
              f"bob balance: {bob.get_account().get_balance()}")
        print(f"registry holds {registry.count()} accounts, "
              f"total balance {registry.total_balance()}")
        print()
        print(session.runtime.describe())
        print(f"virtual time spent: {session.platform.now_s * 1e3:.3f} ms")
        print()

        # Drop every proxy; the GC helper releases the mirrors (§5.5).
        mirrors_before = session.runtime.state_of(Side.TRUSTED).registry.live_count()
        del alice, bob, registry, account
        gc.collect()
        released = session.tick_gc(force=True)
        mirrors_after = session.runtime.state_of(Side.TRUSTED).registry.live_count()
        print("== synchronized GC ==")
        print(f"mirrors in enclave: {mirrors_before} -> {mirrors_after} "
              f"({released} released by the GC helper)")


if __name__ == "__main__":
    main()
