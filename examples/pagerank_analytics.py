#!/usr/bin/env python3
"""Confidential graph analytics: partitioned GraphChi PageRank (§6.5).

The GraphChiEngine (the computation over potentially sensitive graph
data) runs inside the enclave; the I/O-heavy FastSharder stays outside.
PageRank results are validated against an in-memory reference.

Run:  python examples/pagerank_analytics.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.apps.graphchi import (
    GRAPHCHI_CLASSES,
    FastSharder,
    GraphChiEngine,
    run_pagerank_in_memory,
)
from repro.apps.rmat import generate_rmat
from repro.core import Partitioner, PartitionOptions

N_VERTICES = 10_000
N_EDGES = 40_000
N_SHARDS = 4
ITERATIONS = 8


def main() -> None:
    sources, destinations = generate_rmat(N_VERTICES, N_EDGES, seed=21)
    print(f"RMAT graph: {N_VERTICES} vertices, {N_EDGES} edges, "
          f"{N_SHARDS} shards\n")

    app = Partitioner(PartitionOptions(name="pagerank")).partition(
        list(GRAPHCHI_CLASSES)
    )
    with app.start() as session:
        workdir = tempfile.mkdtemp(prefix="graphchi_")
        t0 = session.platform.now_s
        sharded = FastSharder(workdir).shard(
            sources.tolist(), destinations.tolist(), N_VERTICES, N_SHARDS
        )
        t_shard = session.platform.now_s
        ranks = GraphChiEngine().run_pagerank(sharded, iterations=ITERATIONS)
        t_total = session.platform.now_s

        reference = run_pagerank_in_memory(
            sources, destinations, N_VERTICES, iterations=ITERATIONS
        )
        error = float(np.abs(np.array(ranks) - reference).max())
        top = np.argsort(ranks)[::-1][:5]

        print(f"sharding (untrusted): {t_shard - t0:.3f} s")
        print(f"engine (in enclave):  {t_total - t_shard:.3f} s")
        print(f"max deviation from in-memory reference: {error:.2e}")
        print(f"top-5 vertices by PageRank: {[int(v) for v in top]}")
        print(f"\n{session.runtime.describe()}")


if __name__ == "__main__":
    main()
