"""Seeded open-loop workload generation in virtual time.

Closed-loop harnesses (every experiment before this module) hide
overload: a client that waits for its previous request throttles itself
exactly when the system slows down — the coordinated-omission trap.
Open-loop generation decouples offered load from service capacity:
arrivals are stamped ahead of time by a seeded stochastic process, and
the harness injects them at those instants whether or not the backend
is keeping up. Latency percentiles under an open-loop schedule are the
honest ones.

The processes here are the standard serving-benchmark kit:

- :class:`PoissonProcess` — memoryless arrivals at a fixed rate
  (exponential gaps);
- :class:`DiurnalProcess` — a Poisson process whose rate follows a
  sinusoidal day curve, producing the ramp-up/ramp-down the autoscaler's
  hysteresis trace needs;
- heavy-tailed per-request work (bounded Pareto ``ops``) and a weighted
  application mix over the bank / SecureKeeper / PalDB workloads.

Everything is a pure function of the seed; virtual time makes "replay a
million-request day" cost only the generator loop.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Default application mix: a bank-heavy tail-latency-sensitive blend.
DEFAULT_APP_MIX: Tuple[Tuple[str, float], ...] = (
    ("bank", 0.6),
    ("keeper", 0.25),
    ("paldb", 0.15),
)

_NS_PER_S = 1e9


@dataclass(frozen=True)
class Request:
    """One offered request, stamped before the run begins."""

    rid: int
    app: str
    arrival_ns: float
    #: Heavy-tailed per-request work multiplier (e.g. ops in a session).
    ops: int
    #: Routing/state key (selects the account / vault / record set).
    key: str


class PoissonProcess:
    """Memoryless arrivals: exponential inter-arrival gaps."""

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate_per_s = rate_per_s
        self._rng = random.Random(seed)

    def gaps_ns(self) -> Iterator[float]:
        while True:
            yield self._rng.expovariate(self.rate_per_s) * _NS_PER_S


class DiurnalProcess:
    """Poisson arrivals with a sinusoidal day curve.

    The instantaneous rate is
    ``base * (1 + amplitude * sin(2*pi * t / period))`` — load ramps up
    past the scale-up thresholds near the peak and back below the
    scale-down bars in the trough, which is what exercises a full
    hysteresis up/down cycle.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        amplitude: float = 0.8,
        period_s: float = 0.001,
        seed: int = 0,
    ) -> None:
        if base_rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self.base_rate_per_s = base_rate_per_s
        self.amplitude = amplitude
        self.period_s = period_s
        self._rng = random.Random(seed)
        self._t_s = 0.0

    def _rate_at(self, t_s: float) -> float:
        phase = 2.0 * math.pi * t_s / self.period_s
        return self.base_rate_per_s * (
            1.0 + self.amplitude * math.sin(phase)
        )

    def gaps_ns(self) -> Iterator[float]:
        while True:
            gap_s = self._rng.expovariate(self._rate_at(self._t_s))
            self._t_s += gap_s
            yield gap_s * _NS_PER_S


class WorkloadGenerator:
    """Stamps a full open-loop request schedule from one seed.

    Three independent seeded streams (arrival gaps, app mix, request
    shape) keep the schedule stable under parameter tweaks: changing
    the mix does not reshuffle the arrival instants.
    """

    def __init__(
        self,
        rate_per_s: float,
        seed: int = 0,
        app_mix: Tuple[Tuple[str, float], ...] = DEFAULT_APP_MIX,
        diurnal_amplitude: float = 0.0,
        diurnal_period_s: float = 0.001,
        ops_alpha: float = 1.5,
        ops_cap: int = 8,
        keys_per_app: int = 8,
    ) -> None:
        if not app_mix:
            raise ConfigurationError("app_mix cannot be empty")
        if ops_alpha <= 0:
            raise ConfigurationError("ops_alpha must be positive")
        if ops_cap < 1 or keys_per_app < 1:
            raise ConfigurationError("ops_cap and keys_per_app must be >= 1")
        self.rate_per_s = rate_per_s
        self.seed = seed
        self.app_mix = app_mix
        self.ops_alpha = ops_alpha
        self.ops_cap = ops_cap
        self.keys_per_app = keys_per_app
        if diurnal_amplitude:
            self._process: object = DiurnalProcess(
                rate_per_s,
                amplitude=diurnal_amplitude,
                period_s=diurnal_period_s,
                seed=seed,
            )
        else:
            self._process = PoissonProcess(rate_per_s, seed=seed)
        self._mix_rng = random.Random(seed + 0x5EED1)
        self._shape_rng = random.Random(seed + 0x5EED2)

    def _pick_app(self) -> str:
        apps = [app for app, _ in self.app_mix]
        weights = [weight for _, weight in self.app_mix]
        return self._mix_rng.choices(apps, weights=weights, k=1)[0]

    def _pick_ops(self) -> int:
        # Bounded Pareto: most requests are tiny, a heavy tail is not.
        draw = self._shape_rng.paretovariate(self.ops_alpha)
        return min(self.ops_cap, max(1, int(draw)))

    def _pick_key(self, app: str) -> str:
        slot = self._shape_rng.randrange(self.keys_per_app)
        return f"{app}-{slot}"

    def generate(self, n_requests: int) -> List[Request]:
        """Stamp ``n_requests`` arrivals (virtual time, so millions are
        cheap — the cost is this loop, not wall-clock waiting)."""
        if n_requests < 0:
            raise ConfigurationError("n_requests cannot be negative")
        gaps = self._process.gaps_ns()
        requests: List[Request] = []
        now_ns = 0.0
        for rid in range(n_requests):
            now_ns += next(gaps)
            app = self._pick_app()
            requests.append(
                Request(
                    rid=rid,
                    app=app,
                    arrival_ns=now_ns,
                    ops=self._pick_ops(),
                    key=self._pick_key(app),
                )
            )
        return requests


def offered_rate_per_s(requests: List[Request]) -> float:
    """Realised offered load of a stamped schedule."""
    if len(requests) < 2:
        return 0.0
    span_ns = requests[-1].arrival_ns - requests[0].arrival_ns
    if span_ns <= 0:
        return 0.0
    return (len(requests) - 1) * _NS_PER_S / span_ns


def mix_counts(requests: List[Request]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for request in requests:
        counts[request.app] = counts.get(request.app, 0) + 1
    return counts
