"""Admission control: graceful degradation instead of collapse.

An open-loop generator keeps offering load when the backend saturates;
without admission control the run queue grows without bound and every
request's latency diverges. This module is the standard overload kit in
virtual time:

- a **bounded run set + queue**: at most ``capacity`` requests execute
  concurrently; up to ``queue_limit`` more wait; beyond that the
  request is shed with a typed :class:`~repro.errors.OverloadError`
  (``reason="queue-full"``) the moment it arrives — fail fast, not
  slow;
- **deadline-based shedding**: a queued request that waited longer than
  ``deadline_ns`` is dropped at dequeue time (``reason="deadline"``) —
  serving it would burn capacity on a response the client already gave
  up on;
- **per-app token buckets**: optional rate backpressure per workload
  class (``reason="backpressure"``), so one hot tenant cannot starve
  the rest.

The controller never charges the platform and emits gauges/counters
only when observability is on — with admission unconfigured the
harness prices byte-identically to a bare scheduler run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, OverloadError

_NS_PER_S = 1e9


class TokenBucket:
    """Classic token bucket in virtual nanoseconds."""

    def __init__(self, rate_per_s: float, capacity: float) -> None:
        if rate_per_s <= 0 or capacity <= 0:
            raise ConfigurationError("bucket rate and capacity must be positive")
        self.rate_per_s = rate_per_s
        self.capacity = capacity
        self._tokens = capacity
        self._last_ns = 0.0

    def _refill(self, now_ns: float) -> None:
        if now_ns > self._last_ns:
            gained = (now_ns - self._last_ns) / _NS_PER_S * self.rate_per_s
            self._tokens = min(self.capacity, self._tokens + gained)
            self._last_ns = now_ns

    def try_take(self, now_ns: float, tokens: float = 1.0) -> bool:
        self._refill(now_ns)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass
class AdmissionStats:
    """Overload accounting."""

    offered: int = 0
    admitted: int = 0
    queued: int = 0
    shed: Dict[str, int] = field(
        default_factory=lambda: {
            "queue-full": 0,
            "deadline": 0,
            "backpressure": 0,
        }
    )
    max_queue_depth: int = 0
    max_in_flight: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def shed_share(self) -> float:
        return self.shed_total / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "shed_share": round(self.shed_share(), 4),
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
        }


@dataclass
class _Waiter:
    request: Any
    enqueued_ns: float


class AdmissionController:
    """Bounded concurrency + bounded queue + deadlines + backpressure."""

    def __init__(
        self,
        capacity: int,
        queue_limit: int = 16,
        deadline_ns: Optional[float] = None,
        buckets: Optional[Dict[str, TokenBucket]] = None,
        platform: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("admission capacity must be >= 1")
        if queue_limit < 0:
            raise ConfigurationError("queue_limit cannot be negative")
        if deadline_ns is not None and deadline_ns <= 0:
            raise ConfigurationError("deadline_ns must be positive")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.deadline_ns = deadline_ns
        self.buckets = buckets or {}
        self.platform = platform
        self.in_flight = 0
        self._queue: Deque[_Waiter] = deque()
        self.stats = AdmissionStats()

    # -- arrival path ----------------------------------------------------------

    def offer(self, request: Any, now_ns: float) -> str:
        """Admit, queue, or shed one arriving request.

        Returns ``"run"`` (caller starts it now) or ``"queued"``;
        raises :class:`OverloadError` when the request is shed.
        """
        self.stats.offered += 1
        self._count("traffic.offered")
        bucket = self.buckets.get(getattr(request, "app", None))
        if bucket is not None and not bucket.try_take(now_ns):
            self._shed("backpressure")
            raise OverloadError(
                f"request {getattr(request, 'rid', '?')} rate-limited "
                f"for app {request.app!r}",
                reason="backpressure",
            )
        if self.in_flight < self.capacity:
            self._start()
            return "run"
        if len(self._queue) >= self.queue_limit:
            self._shed("queue-full")
            raise OverloadError(
                f"admission queue full ({self.queue_limit}); shedding "
                f"request {getattr(request, 'rid', '?')}",
                reason="queue-full",
            )
        self._queue.append(_Waiter(request=request, enqueued_ns=now_ns))
        self.stats.queued += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )
        self._gauge()
        return "queued"

    # -- completion path -------------------------------------------------------

    def release(self, now_ns: float) -> Tuple[List[Any], List[Any]]:
        """One in-flight request finished; promote from the queue.

        Returns ``(ready, expired)``: requests to start now and queued
        requests shed because they out-waited their deadline. Expired
        entries are drained greedily — a backlog of corpses must not
        block the first live waiter.
        """
        if self.in_flight <= 0:
            raise ConfigurationError("release() without a matching admit")
        self.in_flight -= 1
        return self._promote(now_ns, slots=1)

    def drain(self, now_ns: float) -> Tuple[List[Any], List[Any]]:
        """Fill every free slot from the queue (after a capacity raise)."""
        free = self.capacity - self.in_flight
        if free <= 0:
            return ([], [])
        return self._promote(now_ns, slots=free)

    def set_capacity(self, capacity: int) -> None:
        """Retarget concurrency (the autoscaler's provisioning hook).

        Shrinking never cancels in-flight work; the pool simply refills
        more slowly until ``in_flight`` sinks under the new cap.
        """
        if capacity < 1:
            raise ConfigurationError("admission capacity must be >= 1")
        self.capacity = capacity

    def _promote(self, now_ns: float, slots: int) -> Tuple[List[Any], List[Any]]:
        ready: List[Any] = []
        expired: List[Any] = []
        while self._queue and len(ready) < slots:
            waiter = self._queue.popleft()
            if (
                self.deadline_ns is not None
                and now_ns - waiter.enqueued_ns > self.deadline_ns
            ):
                self._shed("deadline")
                expired.append(waiter.request)
                continue
            self._start()
            ready.append(waiter.request)
        self._gauge()
        return (ready, expired)

    # -- internals -------------------------------------------------------------

    def _start(self) -> None:
        self.in_flight += 1
        self.stats.admitted += 1
        self.stats.max_in_flight = max(self.stats.max_in_flight, self.in_flight)
        self._count("traffic.admitted")

    def _shed(self, reason: str) -> None:
        self.stats.shed[reason] += 1
        self._count("traffic.shed_total")
        self._count(f"traffic.shed.{reason}")

    def _count(self, name: str) -> None:
        if self.platform is not None and self.platform.obs is not None:
            self.platform.obs.metrics.counter(name).inc()

    def _gauge(self) -> None:
        if self.platform is not None and self.platform.obs is not None:
            self.platform.obs.metrics.gauge(
                "traffic.admission.queue_depth"
            ).set(len(self._queue))

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(capacity={self.capacity}, "
            f"in_flight={self.in_flight}, queued={len(self._queue)}, "
            f"shed={self.stats.shed_total})"
        )
