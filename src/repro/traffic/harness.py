"""The open-loop traffic harness: arrivals meet the session scheduler.

The harness merges two deterministic event streams — the stamped
arrival schedule (:mod:`repro.traffic.arrivals`) and the
:class:`~repro.concurrency.scheduler.SessionScheduler`'s run queue —
into one virtual-time simulation:

- an arrival whose timestamp precedes the next runnable session is
  injected first (through the optional
  :class:`~repro.traffic.admission.AdmissionController`); otherwise the
  scheduler advances one session segment;
- a completed session frees an admission slot at its finish time; the
  controller promotes queued requests (shedding the ones that
  out-waited their deadline) and the harness spawns them at the
  promotion instant — open-loop queueing delay becomes part of the
  measured latency;
- an optional :class:`~repro.autoscale.controller.HysteresisAutoscaler`
  is evaluated on a fixed virtual-time cadence as the event frontier
  advances; after a scale event, freshly provisioned slots are drained
  immediately.

Determinism: spawn order equals arrival order, and the harness only
steps the scheduler when the next runnable session precedes the next
arrival. With admission and autoscaling off, the interleaving (and thus
the ledger) is byte-identical to spawning every session up front — the
zero-cost-when-off invariant, extended to traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigurationError, OverloadError
from repro.traffic.arrivals import Request

#: Body factory: turns one stamped request into a session generator.
BodyFactory = Callable[[Request], Generator[Optional[float], None, Any]]


@dataclass(frozen=True)
class Completion:
    """One served request's life cycle."""

    rid: int
    app: str
    arrival_ns: float
    started_ns: float
    finished_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finished_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        return self.started_ns - self.arrival_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rid": self.rid,
            "app": self.app,
            "arrival_ns": self.arrival_ns,
            "started_ns": self.started_ns,
            "finished_ns": self.finished_ns,
            "latency_ns": self.latency_ns,
        }


@dataclass
class TrafficResult:
    """Everything one harness run measured."""

    completions: List[Completion] = field(default_factory=list)
    shed: List[Tuple[int, str]] = field(default_factory=list)
    makespan_ns: float = 0.0
    steps: int = 0

    @property
    def latencies_ns(self) -> List[float]:
        return [c.latency_ns for c in self.completions]

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of completion latency (ns)."""
        if not 0.0 < q <= 100.0:
            raise ConfigurationError("percentile must be in (0, 100]")
        ordered = sorted(self.latencies_ns)
        if not ordered:
            return 0.0
        rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    def shed_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, reason in self.shed:
            counts[reason] = counts.get(reason, 0) + 1
        return counts


class OpenLoopHarness:
    """Drives a stamped request schedule through the scheduler."""

    def __init__(
        self,
        scheduler: Any,
        body_factory: BodyFactory,
        admission: Optional[Any] = None,
        autoscaler: Optional[Any] = None,
        autoscale_every_ns: float = 500_000.0,
    ) -> None:
        if autoscale_every_ns <= 0:
            raise ConfigurationError("autoscale_every_ns must be positive")
        self.scheduler = scheduler
        self.body_factory = body_factory
        self.admission = admission
        self.autoscaler = autoscaler
        self.autoscale_every_ns = autoscale_every_ns
        self._live: Dict[str, Tuple[Request, Any, float]] = {}
        self._frontier_ns = 0.0
        self._next_eval_ns = autoscale_every_ns

    # -- the merge loop --------------------------------------------------------

    def run(self, requests: List[Request]) -> TrafficResult:
        result = TrafficResult()
        pending = list(requests)
        pending.reverse()  # pop() from the tail = earliest arrival first
        while pending or self._live:
            next_arrival = pending[-1].arrival_ns if pending else None
            next_ready = self.scheduler.next_ready_ns()
            if next_arrival is not None and (
                next_ready is None or next_arrival <= next_ready
            ):
                self._arrive(pending.pop(), result)
            else:
                self._advance(result)
        result.makespan_ns = self.scheduler.makespan_ns
        result.steps = self.scheduler._steps
        return result

    def _arrive(self, request: Request, result: TrafficResult) -> None:
        self._bump_frontier(request.arrival_ns, result)
        if self.admission is None:
            self._spawn(request, request.arrival_ns)
            return
        try:
            verdict = self.admission.offer(request, request.arrival_ns)
        except OverloadError as overload:
            result.shed.append((request.rid, overload.reason))
            return
        if verdict == "run":
            self._spawn(request, request.arrival_ns)
        # "queued": the request waits inside the controller until a
        # completion (or a capacity raise) promotes it.

    def _advance(self, result: TrafficResult) -> None:
        record = self.scheduler.step()
        if record is None:
            return
        entry = self._live.get(record.session)
        if entry is None:
            return
        request, session, started_ns = entry
        if not session.done:
            return
        del self._live[record.session]
        finished_ns = session.local_ns
        result.completions.append(
            Completion(
                rid=request.rid,
                app=request.app,
                arrival_ns=request.arrival_ns,
                started_ns=started_ns,
                finished_ns=finished_ns,
            )
        )
        self._bump_frontier(finished_ns, result)
        if self.admission is not None:
            ready, expired = self.admission.release(finished_ns)
            self._absorb(ready, expired, finished_ns, result)

    def _absorb(
        self,
        ready: List[Request],
        expired: List[Request],
        now_ns: float,
        result: TrafficResult,
    ) -> None:
        for request in expired:
            result.shed.append((request.rid, "deadline"))
        for request in ready:
            self._spawn(request, now_ns)

    def _spawn(self, request: Request, start_ns: float) -> None:
        name = f"r{request.rid}"
        session = self.scheduler.spawn(
            name, self.body_factory(request), start_ns=start_ns
        )
        self._live[name] = (request, session, start_ns)

    # -- autoscaler cadence ----------------------------------------------------

    def _bump_frontier(self, now_ns: float, result: TrafficResult) -> None:
        if now_ns > self._frontier_ns:
            self._frontier_ns = now_ns
        if self.autoscaler is None:
            return
        while self._frontier_ns >= self._next_eval_ns:
            event = self.autoscaler.evaluate(self._next_eval_ns)
            self._next_eval_ns += self.autoscale_every_ns
            if event is not None and self.admission is not None:
                ready, expired = self.admission.drain(self._frontier_ns)
                self._absorb(ready, expired, self._frontier_ns, result)

    def __repr__(self) -> str:
        return (
            f"OpenLoopHarness(live={len(self._live)}, "
            f"frontier_ns={self._frontier_ns:.0f})"
        )
