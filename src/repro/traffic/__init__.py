"""Open-loop traffic: seeded arrival processes, admission control, and
the harness that merges both with the deterministic session scheduler.

- :mod:`repro.traffic.arrivals` — Poisson/diurnal arrival stamping,
  heavy-tailed request shapes, weighted app mixes;
- :mod:`repro.traffic.admission` — bounded queue, deadline shedding,
  per-app token buckets, typed :class:`~repro.errors.OverloadError`;
- :mod:`repro.traffic.harness` — :class:`OpenLoopHarness`, which turns
  a stamped schedule into scheduler sessions and measures honest
  open-loop latency (queueing delay included).
"""

from repro.traffic.admission import (
    AdmissionController,
    AdmissionStats,
    TokenBucket,
)
from repro.traffic.arrivals import (
    DEFAULT_APP_MIX,
    DiurnalProcess,
    PoissonProcess,
    Request,
    WorkloadGenerator,
    mix_counts,
    offered_rate_per_s,
)
from repro.traffic.harness import Completion, OpenLoopHarness, TrafficResult

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "Completion",
    "DEFAULT_APP_MIX",
    "DiurnalProcess",
    "OpenLoopHarness",
    "PoissonProcess",
    "Request",
    "TokenBucket",
    "TrafficResult",
    "WorkloadGenerator",
    "mix_counts",
    "offered_rate_per_s",
]
