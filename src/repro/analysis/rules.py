"""The partition linter's rule set.

Each rule consumes the shared :class:`~repro.analysis.inference.AppModel`
and returns :class:`~repro.analysis.diagnostics.Diagnostic` records:

- ``MSV001`` boundary escape — trusted-sourced plain values flowing to
  untrusted code without the proxy layer (§5.1, §5.2);
- ``MSV002`` unserializable crossing — boundary signatures the wire
  codec cannot marshal (§5.2);
- ``MSV003`` chatty crossing — loops of fine-grained proxy calls, with
  statically estimated crossing counts emitted in the same
  :class:`~repro.sgx.profiler.RoutineProfile` format the dynamic
  profiler uses for switchless candidates (§7);
- ``MSV004`` dead TCB — trusted methods unreachable from every enclave
  entry point, priced via :mod:`repro.core.tcb` (§5.3);
- ``MSV005`` encapsulation — :mod:`repro.core.validation` absorbed into
  the diagnostics pipeline (§5.1);
- ``MSV006`` secure escape — a :func:`repro.core.secure.secure` value
  reaching untrusted code without ``declassify()`` (SecV);
- ``MSV007`` idle crossing — a boundary crossing carrying zero secure
  values in an app that uses them: a relocation candidate (SecV).

``MSV001``, ``MSV006`` and ``MSV007`` share the interprocedural
propagation engine in :mod:`repro.analysis.taint`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    BOUNDARY_ESCAPE,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    IDLE_CROSSING,
    SECURE_ESCAPE,
    UNSERIALIZABLE_CROSSING,
    Diagnostic,
    Severity,
)
from repro.analysis.inference import (
    NESTED_PROXY,
    NEUTRAL,
    NONE,
    PROXY,
    UNMARSHALABLE,
    AppModel,
    MethodInfo,
    ScopeTypes,
    classify_annotation,
    crossing_kind,
)
from repro.analysis.taint import (
    PLAIN,
    SECURE,
    analyze_taint,
    declares_secure_return,
)
from repro.errors import PartitionError, ReachabilityError
from repro.graal.jtypes import TrustLevel

#: Iterations assumed for a loop whose trip count is not a literal.
ESTIMATED_LOOP_TRIPS = 100

#: Cap on statically estimated crossings (nested unbounded loops).
MAX_ESTIMATED_CROSSINGS = 1_000_000


class Rule:
    """One static check; stateless between :meth:`check` calls."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, model: AppModel) -> List[Diagnostic]:
        raise NotImplementedError


# -- MSV001: boundary escape --------------------------------------------------


class BoundaryEscapeRule(Rule):
    code = BOUNDARY_ESCAPE
    name = "boundary-escape"
    description = (
        "plain data obtained from a trusted object must not flow onward "
        "to untrusted methods or returns; only proxies cross safely"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        analysis = analyze_taint(model)
        findings: List[Diagnostic] = []
        for event in analysis.sink_events:
            if event.taint.kind != PLAIN:
                continue
            if model.trust_of(event.owner) is TrustLevel.TRUSTED:
                continue  # code already inside the enclave cannot leak out-of-band
            source = event.taint.source
            findings.append(
                Diagnostic(
                    code=BOUNDARY_ESCAPE,
                    severity=Severity.ERROR,
                    class_name=event.owner,
                    method_name=event.method,
                    message=(
                        f"{event.display} holds plain data from trusted "
                        f"{source} and is passed to untrusted {event.sink} "
                        "without going through the proxy layer"
                    ),
                    hint=(
                        "keep the value behind an annotated class so it "
                        "crosses as a proxy hash, or move this logic into "
                        "the trusted side (§5.1, §5.2)"
                    ),
                    detail=f"{event.display}->{event.sink}",
                    data={
                        "source": source,
                        "sink": event.sink,
                        "provenance": list(event.taint.chain),
                    },
                )
            )
        for event in analysis.return_events:
            if event.taint.kind != PLAIN:
                continue
            if model.trust_of(event.owner) is not TrustLevel.UNTRUSTED:
                continue
            source = event.taint.source
            findings.append(
                Diagnostic(
                    code=BOUNDARY_ESCAPE,
                    severity=Severity.ERROR,
                    class_name=event.owner,
                    method_name=event.method,
                    message=(
                        f"{event.display} holds plain data from trusted "
                        f"{source} and is returned from untrusted "
                        f"{event.owner}.{event.method}"
                    ),
                    hint=(
                        "return an annotated instance (crosses as a "
                        "proxy) or keep the secret on the trusted side "
                        "(§5.1, §5.2)"
                    ),
                    detail=f"return:{event.display}",
                    data={
                        "source": source,
                        "sink": "return",
                        "provenance": list(event.taint.chain),
                    },
                )
            )
        return findings


# -- MSV006: secure escape ----------------------------------------------------


class SecureEscapeRule(Rule):
    code = SECURE_ESCAPE
    name = "secure-escape"
    description = (
        "secure() values must pass declassify(value, reason) before "
        "reaching untrusted code; the tag is not a courtesy, it is the "
        "partition boundary at value granularity"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        analysis = analyze_taint(model)
        findings: List[Diagnostic] = []
        for event in analysis.sink_events:
            if event.taint.kind != SECURE:
                continue
            findings.append(
                Diagnostic(
                    code=SECURE_ESCAPE,
                    severity=Severity.ERROR,
                    class_name=event.owner,
                    method_name=event.method,
                    message=(
                        f"{event.display} carries secure value "
                        f"{event.taint.source} into untrusted {event.sink} "
                        "without passing declassify()"
                    ),
                    hint=(
                        "call declassify(value, reason) at the sanctioned "
                        "exit, or keep the value sealed behind the enclave "
                        "boundary (SecV; docs/ANALYSIS.md)"
                    ),
                    detail=f"secure:{event.display}->{event.sink}",
                    data={
                        "source": event.taint.source,
                        "sink": event.sink,
                        "provenance": list(event.taint.chain),
                    },
                )
            )
        for event in analysis.return_events:
            if event.taint.kind != SECURE:
                continue
            if model.trust_of(event.owner) is not TrustLevel.UNTRUSTED:
                continue  # trusted returns cross sealed; that path is sanctioned
            if declares_secure_return(model, event.owner, event.method):
                # The signature admits it: a declared ``-> SecureValue``
                # hands callers sealed data on purpose (the mint-helper
                # pattern). Undeclared secure returns stay escapes.
                continue
            findings.append(
                Diagnostic(
                    code=SECURE_ESCAPE,
                    severity=Severity.ERROR,
                    class_name=event.owner,
                    method_name=event.method,
                    message=(
                        f"{event.display} carries secure value "
                        f"{event.taint.source} and is returned from untrusted "
                        f"{event.owner}.{event.method} declared to return "
                        "plain data, without passing declassify()"
                    ),
                    hint=(
                        "call declassify(value, reason) before the return, "
                        "annotate the method '-> SecureValue' to hand callers "
                        "sealed data deliberately, or return from trusted "
                        "code so it crosses sealed (SecV; docs/ANALYSIS.md)"
                    ),
                    detail=f"secure-return:{event.display}",
                    data={
                        "source": event.taint.source,
                        "sink": "return",
                        "provenance": list(event.taint.chain),
                    },
                )
            )
        return findings


# -- MSV007: idle crossing ----------------------------------------------------


class IdleCrossingRule(Rule):
    code = IDLE_CROSSING
    name = "idle-crossing"
    description = (
        "in an app that uses secure values, a crossing that carries none "
        "of them is a relocation candidate: the callee may not need to "
        "live across the boundary at all"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        analysis = analyze_taint(model)
        if not analysis.uses_secure:
            # Class-granular apps have not opted into value granularity;
            # every crossing is presumed intentional.
            return []
        findings: List[Diagnostic] = []
        for event in analysis.crossings:
            if event.secure_args:
                continue
            if event.secure_return:
                # The callee mints sealed data (declared -> SecureValue):
                # the crossing serves value granularity even though its
                # arguments are plain.
                continue
            findings.append(
                Diagnostic(
                    code=IDLE_CROSSING,
                    severity=Severity.INFO,
                    class_name=event.owner,
                    method_name=event.method,
                    message=(
                        f"{event.kind} {event.routine} carries no secure "
                        f"values ({event.total_args} plain argument(s)): at "
                        "value granularity this crossing is a candidate to "
                        "relocate out of the TCB"
                    ),
                    hint=(
                        f"if {event.target.split('.')[0]} guards no secure "
                        "state on this path, move the callee (or this call) "
                        "to the caller's side and save the transition "
                        "(SecV; docs/ANALYSIS.md)"
                    ),
                    detail=event.routine,
                    data={
                        "routine": event.routine,
                        "kind": event.kind,
                        "target": event.target,
                        "secure_args": event.secure_args,
                        "total_args": event.total_args,
                    },
                )
            )
        return findings


# -- MSV002: unserializable crossing ------------------------------------------


class UnserializableCrossingRule(Rule):
    code = UNSERIALIZABLE_CROSSING
    name = "unserializable-crossing"
    description = (
        "public methods of annotated classes are the crossing surface; "
        "their signatures must be marshalable by the boundary codecs"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for cls in model.classes:
            owner = cls.__name__
            if not model.trust_of(owner).annotated:
                continue
            module = model.module_of(owner)
            for info in model.methods_of(owner):
                if not info.is_public:
                    continue  # private methods get no relay (§5.2)
                for what, detail, raw in self._signature_slots(info):
                    verdict = classify_annotation(raw, model, module)
                    diag = self._judge(info, what, detail, verdict)
                    if diag is not None:
                        findings.append(diag)
        return findings

    def _signature_slots(self, info: MethodInfo):
        if info.tree is not None:
            args = info.tree.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg == "self" or arg.annotation is None:
                    continue
                yield f"parameter {arg.arg!r}", f"param:{arg.arg}", arg.annotation
        raw_return = getattr(info.func, "__annotations__", {}).get("return")
        if raw_return is not None and info.name != "__init__":
            yield "return value", "return", raw_return

    def _judge(self, info: MethodInfo, what: str, detail: str, verdict) -> Optional[Diagnostic]:
        if verdict.kind == UNMARSHALABLE:
            return Diagnostic(
                code=UNSERIALIZABLE_CROSSING,
                severity=Severity.ERROR,
                class_name=info.owner,
                method_name=info.name,
                message=(
                    f"{what} of {info.qualified_name} is "
                    f"{verdict.class_name!r}: no codec can marshal it across "
                    "the enclave boundary"
                ),
                hint=(
                    "pass plain data or an annotated class; callbacks, "
                    "handles and live resources cannot cross (§5.2)"
                ),
                detail=detail,
                data={"type": verdict.class_name, "kind": verdict.kind},
            )
        if verdict.kind == NEUTRAL:
            return Diagnostic(
                code=UNSERIALIZABLE_CROSSING,
                severity=Severity.WARNING,
                class_name=info.owner,
                method_name=info.name,
                message=(
                    f"{what} of {info.qualified_name} is "
                    f"{verdict.class_name!r}: the wire codec cannot marshal "
                    "it (pickle-only crossing)"
                ),
                hint=(
                    f"annotate {verdict.class_name} so it crosses as a proxy, "
                    "or flatten it to plain data; "
                    "PartitionOptions(wire_format=True) rejects this call "
                    "(§5.2)"
                ),
                detail=detail,
                data={"type": verdict.class_name, "kind": verdict.kind},
            )
        if verdict.kind == NESTED_PROXY:
            return Diagnostic(
                code=UNSERIALIZABLE_CROSSING,
                severity=Severity.WARNING,
                class_name=info.owner,
                method_name=info.name,
                message=(
                    f"{what} of {info.qualified_name} nests annotated "
                    f"{verdict.class_name!r} inside a container: container "
                    "elements are serialized by value, bypassing the proxy "
                    "layer"
                ),
                hint=(
                    f"pass {verdict.class_name} instances as top-level "
                    "arguments so they cross as proxy hashes (§5.2)"
                ),
                detail=detail,
                data={"type": verdict.class_name, "kind": verdict.kind},
            )
        return None


# -- MSV003: chatty crossing --------------------------------------------------


class ChattyCrossingRule(Rule):
    code = CHATTY_CROSSING
    name = "chatty-crossing"
    description = (
        "proxy calls inside loops multiply enclave transitions; "
        "estimates per-call-site crossing counts from the call structure"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for cls in model.classes:
            owner = cls.__name__
            for info in model.methods_of(owner):
                if info.tree is None:
                    continue
                visitor = _LoopCrossingVisitor(model, info)
                visitor.visit(info.tree)
                findings.extend(visitor.findings)
        return findings


class _LoopCrossingVisitor(ast.NodeVisitor):
    """Counts boundary crossings under loop nesting."""

    def __init__(self, model: AppModel, info: MethodInfo) -> None:
        self.model = model
        self.info = info
        self.owner = info.owner
        self.owner_trust = model.trust_of(info.owner)
        self.scope = ScopeTypes(model, info.owner, info.tree)
        self.trips: List[int] = []
        self.findings: List[Diagnostic] = []

    # -- loop tracking --------------------------------------------------------

    def _loop(self, node, trip_count: int) -> None:
        self.trips.append(trip_count)
        self.generic_visit(node)
        self.trips.pop()

    def visit_For(self, node: ast.For) -> None:
        self._loop(node, _trip_estimate(node.iter))

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop(node, _trip_estimate(node.iter))

    def visit_While(self, node: ast.While) -> None:
        self._loop(node, ESTIMATED_LOOP_TRIPS)

    def _comprehension(self, node) -> None:
        self._loop(node, ESTIMATED_LOOP_TRIPS ** max(1, len(node.generators)))

    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension
    visit_GeneratorExp = _comprehension

    def visit_Assign(self, node: ast.Assign) -> None:
        self.scope.assign(node)
        self.generic_visit(node)

    # -- crossing detection ---------------------------------------------------

    def _crossing(self, node: ast.Call) -> Optional[Tuple[str, str, str]]:
        """(routine, kind, target_method) when the call crosses."""
        func = node.func
        if isinstance(func, ast.Name):
            receiver = func.id
            if receiver not in self.model.universe:
                return None
            trust = self.model.trust_of(receiver)
            if not trust.annotated:
                return None
            kind = crossing_kind(self.owner_trust, trust)
            if kind is None:
                return None
            return (f"relay_{receiver}_init", kind, f"{receiver}.__init__")
        if isinstance(func, ast.Attribute):
            receiver = self.scope.infer(func.value)
            if receiver is None or receiver not in self.model.universe:
                return None
            trust = self.model.trust_of(receiver)
            if not trust.annotated:
                return None
            kind = crossing_kind(self.owner_trust, trust)
            if kind is None:
                return None
            return (f"relay_{receiver}_{func.attr}", kind, f"{receiver}.{func.attr}")
        return None

    def visit_Call(self, node: ast.Call) -> None:
        crossing = self._crossing(node)
        if crossing is not None and self.trips:
            routine, kind, target = crossing
            estimate = 1
            for trips in self.trips:
                estimate = min(MAX_ESTIMATED_CROSSINGS, estimate * trips)
            depth = len(self.trips)
            self.findings.append(
                Diagnostic(
                    code=CHATTY_CROSSING,
                    severity=Severity.WARNING,
                    class_name=self.owner,
                    method_name=self.info.name,
                    message=(
                        f"{kind} {routine} sits in a depth-{depth} loop: "
                        f"~{estimate} crossings per call of "
                        f"{self.info.qualified_name}; each transition costs "
                        "thousands of cycles (§6.2)"
                    ),
                    hint=(
                        f"batch the loop body into one coarse call on "
                        f"{target.split('.')[0]}, or verify with "
                        "TransitionProfiler.switchless_candidates and make "
                        "the routine switchless (§7)"
                    ),
                    detail=f"{routine}:depth{depth}",
                    data={
                        "routine": routine,
                        "kind": kind,
                        "estimated_calls": estimate,
                        "target": target,
                        "depth": depth,
                    },
                )
            )
        self.generic_visit(node)


def _trip_estimate(iter_expr: ast.expr) -> int:
    """Literal ``range(N)`` trip counts; the default estimate otherwise."""
    if (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id == "range"
        and len(iter_expr.args) == 1
        and isinstance(iter_expr.args[0], ast.Constant)
        and isinstance(iter_expr.args[0].value, int)
    ):
        return max(1, iter_expr.args[0].value)
    if isinstance(iter_expr, (ast.List, ast.Tuple, ast.Set)):
        return max(1, len(iter_expr.elts))
    return ESTIMATED_LOOP_TRIPS


# -- MSV004: dead TCB ---------------------------------------------------------


class DeadTcbRule(Rule):
    code = DEAD_TCB
    name = "dead-tcb"
    description = (
        "trusted methods unreachable from every enclave entry point are "
        "compiled into the enclave image for nothing"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        from repro.core.tcb import dead_code_report, method_code_bytes
        from repro.core.transformer import BytecodeTransformer
        from repro.graal.pointsto import PointsToAnalysis

        trusted = model.universe.by_trust(TrustLevel.TRUSTED)
        if not trusted:
            return []
        try:
            result = BytecodeTransformer().transform(model.ir)
        except PartitionError:
            return []
        if result.trusted_entry_points:
            try:
                reachable = PointsToAnalysis(result.trusted_universe).analyze(
                    result.trusted_entry_points
                ).methods
            except ReachabilityError:
                reachable = frozenset()
        else:
            reachable = frozenset()

        dead_by_class: Dict[str, List[str]] = {}
        for jclass in trusted:
            for method in jclass.methods:
                if method.qualified_name in reachable:
                    continue
                if method.name.startswith("__") and method.name != "__init__":
                    continue  # dunders are runtime hooks, not dead weight
                dead_by_class.setdefault(jclass.name, []).append(method.name)
        if not dead_by_class:
            return []

        report = dead_code_report(dead_by_class)
        per_method = method_code_bytes()
        findings: List[Diagnostic] = []
        for class_name in sorted(dead_by_class):
            for method_name in sorted(dead_by_class[class_name]):
                findings.append(
                    Diagnostic(
                        code=DEAD_TCB,
                        severity=Severity.WARNING,
                        class_name=class_name,
                        method_name=method_name,
                        message=(
                            f"trusted method {class_name}.{method_name} is "
                            "unreachable from every enclave entry point; it "
                            f"still adds ~{per_method} bytes to the enclave "
                            f"image ({report.total_bytes} bytes of dead "
                            "trusted code in total, §5.3)"
                        ),
                        hint=(
                            "delete it or call it from reachable trusted "
                            "code; dead code inflates the TCB partitioning "
                            "exists to shrink"
                        ),
                        data={
                            "bytes": per_method,
                            "dead_total_bytes": report.total_bytes,
                        },
                    )
                )
        return findings


# -- MSV005: encapsulation ----------------------------------------------------


class EncapsulationRule(Rule):
    code = ENCAPSULATION
    name = "encapsulation"
    description = (
        "annotated classes must be accessed through public methods; "
        "foreign field access bypasses the proxy layer"
    )

    def check(self, model: AppModel) -> List[Diagnostic]:
        from repro.core.validation import EncapsulationValidator

        findings: List[Diagnostic] = []
        for violation in EncapsulationValidator().validate(list(model.classes)):
            findings.append(
                Diagnostic(
                    code=ENCAPSULATION,
                    severity=Severity.ERROR,
                    class_name=violation.accessing_class,
                    method_name=violation.accessing_method,
                    message=violation.describe(),
                    hint=(
                        f"add an accessor on {violation.target_class}; "
                        "proxies carry no fields, so direct access reads the "
                        "wrong side's memory (§5.1)"
                    ),
                    detail=f"{violation.target_class}.{violation.field}",
                    data={
                        "target_class": violation.target_class,
                        "field": violation.field,
                    },
                )
            )
        return findings


def default_rules() -> Tuple[Rule, ...]:
    return (
        BoundaryEscapeRule(),
        UnserializableCrossingRule(),
        ChattyCrossingRule(),
        DeadTcbRule(),
        EncapsulationRule(),
        SecureEscapeRule(),
        IdleCrossingRule(),
    )
