"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.analysis.linter import LintResult

#: Bumped when the JSON layout changes incompatibly.
JSON_SCHEMA = "repro.analysis/lint@1"


def format_text(results: Mapping[str, LintResult]) -> str:
    """Human-readable report over one or more lint targets."""
    lines = []
    for target in sorted(results):
        result = results[target]
        lines.append(f"== {target} ==")
        if not result.diagnostics and not result.suppressed:
            lines.append("  clean")
        for diag in result.diagnostics:
            lines.append("  " + diag.format().replace("\n", "\n  "))
        summary = (
            f"  {result.error_count} error(s), {result.warning_count} warning(s)"
        )
        info_count = sum(
            1 for d in result.diagnostics if d.severity.value == "info"
        )
        if info_count:
            summary += f", {info_count} info"
        if result.suppressed:
            summary += f", {len(result.suppressed)} suppressed by baseline"
        lines.append(summary)
        candidates = result.predicted_candidates()
        if candidates:
            lines.append("  predicted switchless candidates (MSV003):")
            for profile in candidates:
                lines.append(
                    f"    {profile.name:<40} {profile.kind:<6} "
                    f"~{profile.calls} crossings"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def to_json(results: Mapping[str, LintResult]) -> str:
    return json.dumps(to_dict(results), indent=2, sort_keys=True)


def to_dict(results: Mapping[str, LintResult]) -> Dict[str, Any]:
    targets: Dict[str, Any] = {}
    errors = 0
    warnings = 0
    for target, result in results.items():
        errors += result.error_count
        warnings += result.warning_count
        targets[target] = {
            "diagnostics": [d.to_dict() for d in result.diagnostics],
            "suppressed": [d.to_dict() for d in result.suppressed],
            "unused_suppressions": list(result.unused_suppressions),
            "counts": {
                "error": result.error_count,
                "warning": result.warning_count,
                "info": sum(
                    1 for d in result.diagnostics if d.severity.value == "info"
                ),
                "suppressed": len(result.suppressed),
            },
            "predicted_candidates": [
                {"name": p.name, "kind": p.kind, "estimated_calls": p.calls}
                for p in result.predicted_candidates()
            ],
        }
    return {
        "schema": JSON_SCHEMA,
        "targets": targets,
        "counts": {"error": errors, "warning": warnings},
        "exit_code": 1 if errors else 0,
    }
