"""The partition linter: runs the rule set, applies the baseline.

A baseline file suppresses known findings by their stable suppression
keys (``CODE:Class.method[:detail]``), one per line; ``#`` starts a
comment, inline comments explain *why* a finding is intentional::

    # ShardedGraph is plain-data and pickles fine; only the restricted
    # wire format cannot carry it.
    MSV002:GraphChiEngine.run_pagerank:param:graph

Suppressed findings stay visible in the result (``suppressed``) and in
the JSON report; suppressions matching nothing are reported as unused
so the baseline cannot rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import CHATTY_CROSSING, Diagnostic, Severity, sort_key
from repro.analysis.inference import AppModel
from repro.analysis.rules import Rule, default_rules
from repro.sgx.profiler import RoutineProfile


@dataclass(frozen=True)
class LintResult:
    """Outcome of linting one class set."""

    diagnostics: Tuple[Diagnostic, ...]  # active (not baselined)
    suppressed: Tuple[Diagnostic, ...] = ()
    unused_suppressions: Tuple[str, ...] = ()

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Nonzero iff unsuppressed error-severity findings exist."""
        return 1 if self.error_count else 0

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> Tuple[str, ...]:
        return tuple(sorted({d.code for d in self.diagnostics}))

    def predicted_candidates(self) -> List[RoutineProfile]:
        """MSV003 predictions in :class:`RoutineProfile` form.

        Format-compatible with
        :meth:`repro.sgx.profiler.TransitionProfiler.switchless_candidates`
        so static and dynamic views diff directly
        (:func:`diff_candidates`). ``calls`` carries the static
        estimate; payloads and latencies are unknowable statically and
        stay zero.
        """
        aggregated: Dict[Tuple[str, str], int] = {}
        for diag in (*self.diagnostics, *self.suppressed):
            if diag.code != CHATTY_CROSSING:
                continue
            key = (diag.data["kind"], diag.data["routine"])
            aggregated[key] = aggregated.get(key, 0) + diag.data["estimated_calls"]
        return [
            RoutineProfile(name=name, kind=kind, calls=calls)
            for (kind, name), calls in sorted(
                aggregated.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def reranked_candidates(
        self,
        dynamic: Sequence[RoutineProfile],
        elapsed_s: float,
        **kwargs: object,
    ) -> List["RankedCandidate"]:
        """MSV003 predictions re-ranked with a recorded trace.

        Delegates to :func:`repro.batching.rerank_predictions`:
        trace-confirmed routines lead in measured-cost order (including
        hot routines the estimator missed), unconfirmed predictions
        keep their static order at the tail. Extra keyword arguments
        (``min_rate_hz``, ``window_ns``, ``max_batch``) pass through.
        """
        from repro.batching.detector import rerank_predictions

        return rerank_predictions(
            self.predicted_candidates(), dynamic, elapsed_s, **kwargs
        )


class PartitionLinter:
    """Rule runner over one application's annotated classes."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )

    def lint(
        self,
        classes: Sequence[type],
        baseline: Optional[Iterable[str]] = None,
    ) -> LintResult:
        model = AppModel(classes)
        findings: List[Diagnostic] = []
        for rule in self.rules:
            findings.extend(rule.check(model))
        findings.sort(key=sort_key)

        suppressions: Set[str] = set(baseline or ())
        active = tuple(d for d in findings if d.suppression_key not in suppressions)
        suppressed = tuple(d for d in findings if d.suppression_key in suppressions)
        used = {d.suppression_key for d in suppressed}
        return LintResult(
            diagnostics=active,
            suppressed=suppressed,
            unused_suppressions=tuple(sorted(suppressions - used)),
        )


# -- baseline files -----------------------------------------------------------


def load_baseline(path: str) -> Set[str]:
    """Suppression keys from a baseline file (missing file = empty)."""
    keys: Set[str] = set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return keys
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            keys.add(stripped)
    return keys


def write_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Write every finding's suppression key; returns keys written."""
    keys = sorted({d.suppression_key for d in diagnostics})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "# Partition-linter baseline: known findings, one suppression\n"
            "# key per line. Add a comment explaining why each finding is\n"
            "# intentional before committing.\n"
        )
        for key in keys:
            handle.write(key + "\n")
    return len(keys)


_BASELINE_HEADER = (
    "# Partition-linter baseline (python -m repro lint --baseline lint-baseline.txt)",
    "#",
    "# One suppression key per line (CODE:Class.method[:detail]); '#' starts",
    "# a comment. Every entry must say why the finding is intentional.",
    "# Unused entries are reported so this file cannot rot silently.",
    "",
)

_NEW_FINDINGS_MARKER = (
    "# New findings: explain why each is intentional, or fix the code and",
    "# re-run `repro lint --update-baseline`.",
)


@dataclass(frozen=True)
class BaselineUpdate:
    """What :func:`update_baseline` did to the file."""

    path: str
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    total: int

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)


def update_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> BaselineUpdate:
    """Regenerate a baseline file in place instead of hand-editing it.

    Keys still matched by a finding keep their lines — and the comment
    blocks explaining them — verbatim, in their original order. Keys no
    finding produces any more are dropped together with their comments.
    Keys for new findings are appended (sorted) under a marker comment
    prompting for an explanation. Running twice is a no-op: the second
    pass finds nothing to add or remove and rewrites the identical
    bytes.
    """
    wanted = {d.suppression_key for d in diagnostics}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read().splitlines()
        existed = True
    except FileNotFoundError:
        raw = []
        existed = False

    # Leading comment block followed by a blank line is the file header
    # (not an explanation of the first key); keep it unconditionally.
    preamble: List[str] = []
    body = raw
    if existed:
        i = 0
        while i < len(raw) and raw[i].lstrip().startswith("#"):
            i += 1
        lead_end = i
        while i < len(raw) and not raw[i].strip():
            i += 1
        if lead_end and i > lead_end:
            preamble = [*raw[:lead_end], ""]
            body = raw[i:]
    else:
        preamble = list(_BASELINE_HEADER)

    entries: List[Tuple[List[str], str, str]] = []  # (comment block, key, raw line)
    pending: List[str] = []
    for line in body:
        key = line.split("#", 1)[0].strip()
        if key:
            entries.append((pending, key, line))
            pending = []
        else:
            pending.append(line)
    trailing = [line for line in pending if line.strip()]

    kept_lines: List[str] = []
    kept_keys: Set[str] = set()
    removed: List[str] = []
    for block, key, line in entries:
        if key in kept_keys:
            continue  # duplicate entry: first occurrence wins
        if key in wanted:
            kept_lines.extend(block)
            kept_lines.append(line)
            kept_keys.add(key)
        else:
            removed.append(key)

    added = sorted(wanted - kept_keys)
    out = [*preamble, *kept_lines, *trailing]
    if added:
        if out and out[-1].strip():
            out.append("")
        out.extend(_NEW_FINDINGS_MARKER)
        out.extend(added)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(out) + ("\n" if out else ""))
    return BaselineUpdate(
        path=path,
        added=tuple(added),
        removed=tuple(sorted(removed)),
        total=len(kept_keys) + len(added),
    )


# -- static vs dynamic --------------------------------------------------------


def diff_candidates(
    static: Sequence[RoutineProfile], dynamic: Sequence[RoutineProfile]
) -> Dict[str, List[RoutineProfile]]:
    """Compare MSV003 predictions with a measured profile.

    Profiles are keyed by ``(kind, name)``. Returns ``both`` (the
    static profile, confirmed dynamically), ``static_only`` (predicted
    but not observed above the switchless threshold) and
    ``dynamic_only`` (observed hot but not predicted — usually a loop
    the static estimator cannot see, e.g. one driven by recursion or
    external callers).
    """
    static_by_key = {(p.kind, p.name): p for p in static}
    dynamic_by_key = {(p.kind, p.name): p for p in dynamic}
    return {
        "both": [p for key, p in static_by_key.items() if key in dynamic_by_key],
        "static_only": [
            p for key, p in static_by_key.items() if key not in dynamic_by_key
        ],
        "dynamic_only": [
            p for key, p in dynamic_by_key.items() if key not in static_by_key
        ],
    }
