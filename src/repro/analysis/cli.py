"""``python -m repro lint`` — the partition linter's command line.

Examples::

    python -m repro lint                       # all bundled apps
    python -m repro lint bank graphchi         # selected bundled apps
    python -m repro lint --module myapp.classes
    python -m repro lint --json --baseline lint-baseline.txt
    python -m repro lint --write-baseline lint-baseline.txt
    python -m repro lint --update-baseline     # regenerate in place

Exits 1 when any unsuppressed error-severity finding remains, 0
otherwise (warnings never fail the build; baseline them or fix them at
leisure).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.linter import (
    LintResult,
    PartitionLinter,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.report import format_text, to_json
from repro.analysis.rules import default_rules
from repro.errors import PartitionError


def _bank() -> Sequence[type]:
    from repro.apps.bank import BANK_CLASSES

    return BANK_CLASSES


def _mapreduce() -> Sequence[type]:
    from repro.apps.mapreduce import MAPREDUCE_CLASSES

    return MAPREDUCE_CLASSES


def _paldb_rtwu() -> Sequence[type]:
    from repro.apps.paldb.workload import PALDB_RTWU_CLASSES

    return PALDB_RTWU_CLASSES


def _paldb_ruwt() -> Sequence[type]:
    from repro.apps.paldb.workload import PALDB_RUWT_CLASSES

    return PALDB_RUWT_CLASSES


def _graphchi() -> Sequence[type]:
    from repro.apps.graphchi import GRAPHCHI_CLASSES

    return GRAPHCHI_CLASSES


#: The bundled example applications the lint job covers by default.
BUNDLED_APPS: Dict[str, Callable[[], Sequence[type]]] = {
    "bank": _bank,
    "mapreduce": _mapreduce,
    "paldb-rtwu": _paldb_rtwu,
    "paldb-ruwt": _paldb_ruwt,
    "graphchi": _graphchi,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="static partition linter over annotated application classes",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="APP",
        help=f"bundled apps to lint (default: all of {', '.join(sorted(BUNDLED_APPS))})",
    )
    parser.add_argument(
        "--module",
        metavar="MOD",
        default=None,
        help="lint an importable module's classes instead of bundled apps",
    )
    parser.add_argument(
        "--classes",
        metavar="NAME",
        nargs="*",
        default=None,
        help="with --module: restrict to these class names",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="suppression file of known findings (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="PATH",
        nargs="?",
        const="lint-baseline.txt",
        default=None,
        help=(
            "regenerate an existing baseline in place: keep matched keys "
            "and their comments, drop stale ones, append new findings "
            "(default PATH: lint-baseline.txt)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _resolve_targets(args) -> List[Tuple[str, Sequence[type]]]:
    if args.module:
        from repro.buildtool import collect_classes

        return [(args.module, collect_classes(args.module, args.classes))]
    names = args.targets or sorted(BUNDLED_APPS)
    targets: List[Tuple[str, Sequence[type]]] = []
    for name in names:
        loader = BUNDLED_APPS.get(name)
        if loader is None:
            raise PartitionError(
                f"unknown lint target {name!r}; choose from "
                f"{', '.join(sorted(BUNDLED_APPS))} or use --module"
            )
        targets.append((name, loader()))
    return targets


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name:<26} {rule.description}")
        return 0

    try:
        targets = _resolve_targets(args)
    except PartitionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline = load_baseline(args.baseline) if args.baseline else set()
    linter = PartitionLinter()
    results: Dict[str, LintResult] = {
        name: linter.lint(classes, baseline=baseline) for name, classes in targets
    }

    if args.write_baseline:
        everything = [
            d
            for result in results.values()
            for d in (*result.diagnostics, *result.suppressed)
        ]
        count = write_baseline(args.write_baseline, everything)
        print(f"baseline: {args.write_baseline} ({count} suppression(s))")
        return 0

    if args.update_baseline:
        everything = [
            d
            for result in results.values()
            for d in (*result.diagnostics, *result.suppressed)
        ]
        update = update_baseline(args.update_baseline, everything)
        print(
            f"baseline: {update.path} ({update.total} suppression(s), "
            f"{len(update.added)} added, {len(update.removed)} removed)"
        )
        return 0

    if args.json:
        print(to_json(results))
    else:
        print(format_text(results), end="")

    # A suppression no target consumed is stale everywhere.
    used = {
        d.suppression_key for result in results.values() for d in result.suppressed
    }
    for key in sorted(baseline - used):
        print(f"warning: unused baseline suppression: {key}", file=sys.stderr)

    return max(result.exit_code for result in results.values())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
