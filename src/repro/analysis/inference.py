"""Shared static model for the partition linter.

The linter's rules all need the same three ingredients:

- the JClass IR of the application (:mod:`repro.graal.extraction`),
  which fixes each class's trust level and fields;
- parsed method bodies, walked in source order with a lightweight
  receiver-type inference (parameter annotations, constructor
  assignments, ``self.field`` types from ``__init__`` and the same
  variable-name heuristics :mod:`repro.core.validation` uses);
- a classification of type annotations against what the boundary can
  carry: primitives and plain containers travel through the wire codec
  (:mod:`repro.core.wire`), annotated classes travel as proxy hashes,
  anything else needs pickle — or cannot cross at all.

:class:`AppModel` packages all of it; rules stay small.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
import weakref
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graal.extraction import extract_classes
from repro.graal.jtypes import ClassUniverse, TrustLevel

# -- annotation classification ------------------------------------------------

#: Verdict kinds, ordered from harmless to hopeless.
NONE = "none"  # -> None: nothing crosses
WIRE = "wire"  # plain data: the wire codec handles it
PROXY = "proxy"  # annotated class: crosses as a proxy hash
UNKNOWN = "unknown"  # unresolvable annotation: give the benefit of the doubt
NESTED_PROXY = "nested_proxy"  # annotated class *inside* a container
NEUTRAL = "neutral"  # known class the wire codec cannot marshal
UNMARSHALABLE = "unmarshalable"  # cannot cross any codec (Callable, IO, ...)

_RANK = {
    NONE: 0,
    WIRE: 1,
    PROXY: 2,
    UNKNOWN: 3,
    NESTED_PROXY: 4,
    NEUTRAL: 5,
    UNMARSHALABLE: 6,
}

#: Types the explicit wire format can carry (core/wire.py tag set plus
#: their typing aliases; the decoder executes no code).
WIRE_TYPE_NAMES = frozenset(
    {
        "None",
        "NoneType",
        "bool",
        "int",
        "float",
        "str",
        "bytes",
        "bytearray",
        "object",
        "Any",
        # Secure values have a native wire tag (core/wire.py, 0x0B):
        # label, provenance and payload round-trip without pickle.
        "SecureValue",
    }
)

#: Container annotations whose element types decide the verdict.
CONTAINER_TYPE_NAMES = frozenset(
    {
        "list",
        "tuple",
        "dict",
        "set",
        "frozenset",
        "List",
        "Tuple",
        "Dict",
        "Set",
        "FrozenSet",
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Collection",
        "Mapping",
        "MutableMapping",
    }
)

UNION_TYPE_NAMES = frozenset({"Optional", "Union"})

#: Annotations no codec can marshal across the enclave boundary.
UNMARSHALABLE_TYPE_NAMES = frozenset(
    {
        "Callable",
        "Generator",
        "Iterator",
        "AsyncIterator",
        "AsyncGenerator",
        "Coroutine",
        "Awaitable",
        "IO",
        "TextIO",
        "BinaryIO",
        "socket",
        "Thread",
        "Lock",
        "RLock",
        "Condition",
        "ModuleType",
        "FunctionType",
    }
)


@dataclass(frozen=True)
class TypeVerdict:
    """What happens to a value of an annotated type at the boundary."""

    kind: str
    class_name: Optional[str] = None

    @property
    def rank(self) -> int:
        return _RANK[self.kind]

    @property
    def crosses_as_proxy(self) -> bool:
        return self.kind in (PROXY, NESTED_PROXY)


def worst(verdicts: Sequence[TypeVerdict]) -> TypeVerdict:
    chosen = TypeVerdict(WIRE)
    for verdict in verdicts:
        if verdict.rank > chosen.rank:
            chosen = verdict
    return chosen


def classify_annotation(raw, model: "AppModel", module) -> TypeVerdict:
    """Classify an annotation (string, ast node, or live type).

    ``module`` is the namespace names resolve in (the defining module
    of the class the annotation appears on).
    """
    node = _as_node(raw)
    if node is None:
        return TypeVerdict(UNKNOWN)
    return _classify(node, model, module, top_level=True)


def _as_node(raw) -> Optional[ast.expr]:
    if raw is None:
        return None
    if isinstance(raw, ast.expr):
        return raw
    if isinstance(raw, type):
        raw = raw.__name__
    if isinstance(raw, str):
        try:
            return ast.parse(raw, mode="eval").body
        except SyntaxError:
            return None
    return None


def _classify(node: ast.expr, model, module, top_level: bool) -> TypeVerdict:
    if isinstance(node, ast.Constant):
        if node.value is None:
            return TypeVerdict(NONE)
        if isinstance(node.value, str):  # quoted forward reference
            return classify_annotation(node.value, model, module)
        return TypeVerdict(WIRE)
    if isinstance(node, ast.Name):
        return _classify_name(node.id, model, module, top_level)
    if isinstance(node, ast.Attribute):
        return _classify_dotted(node, model, module, top_level)
    if isinstance(node, ast.Subscript):
        return _classify_subscript(node, model, module, top_level)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return worst(
            [
                _classify(node.left, model, module, top_level),
                _classify(node.right, model, module, top_level),
            ]
        )
    return TypeVerdict(UNKNOWN)


def _classify_name(name: str, model, module, top_level: bool) -> TypeVerdict:
    if name in WIRE_TYPE_NAMES or name in UNION_TYPE_NAMES:
        return TypeVerdict(WIRE)
    if name in CONTAINER_TYPE_NAMES:
        return TypeVerdict(WIRE)
    if name in UNMARSHALABLE_TYPE_NAMES:
        return TypeVerdict(UNMARSHALABLE, class_name=name)
    jclass = model.universe.get(name)
    if jclass is not None:
        if jclass.trust.annotated:
            return TypeVerdict(PROXY if top_level else NESTED_PROXY, class_name=name)
        return TypeVerdict(NEUTRAL, class_name=name)
    resolved = getattr(module, name, None) if module is not None else None
    if isinstance(resolved, type):
        return TypeVerdict(NEUTRAL, class_name=name)
    return TypeVerdict(UNKNOWN)


def _classify_dotted(node: ast.Attribute, model, module, top_level: bool) -> TypeVerdict:
    # typing.Callable, collections.abc.Sequence, np.ndarray, ...: the
    # last segment decides against the known sets, then the resolved
    # object (if any) decides class-ness.
    last = node.attr
    if last in WIRE_TYPE_NAMES or last in CONTAINER_TYPE_NAMES or last in UNION_TYPE_NAMES:
        return TypeVerdict(WIRE)
    if last in UNMARSHALABLE_TYPE_NAMES:
        return TypeVerdict(UNMARSHALABLE, class_name=last)
    resolved = _resolve_dotted(node, module)
    if isinstance(resolved, type):
        return _classify_name(resolved.__name__, model, module, top_level)
    return TypeVerdict(UNKNOWN)


def _resolve_dotted(node: ast.expr, module):
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or module is None:
        return None
    obj = getattr(module, node.id, None)
    for part in reversed(parts):
        if obj is None:
            return None
        obj = getattr(obj, part, None)
    return obj


def _classify_subscript(node: ast.Subscript, model, module, top_level: bool) -> TypeVerdict:
    base = node.value
    base_name = None
    if isinstance(base, ast.Name):
        base_name = base.id
    elif isinstance(base, ast.Attribute):
        base_name = base.attr
    if base_name in UNMARSHALABLE_TYPE_NAMES:
        return TypeVerdict(UNMARSHALABLE, class_name=base_name)
    elts = _slice_elements(node)
    if base_name in UNION_TYPE_NAMES:
        return worst([_classify(e, model, module, top_level) for e in elts])
    if base_name in CONTAINER_TYPE_NAMES:
        return worst([_classify(e, model, module, top_level=False) for e in elts])
    # Parameterised user class: judge the base itself.
    return _classify(base, model, module, top_level)


def _slice_elements(node: ast.Subscript) -> List[ast.expr]:
    inner = node.slice
    if isinstance(inner, ast.Tuple):
        return [e for e in inner.elts if not isinstance(e, ast.Slice)]
    return [inner]


# -- crossing geometry --------------------------------------------------------


def crossing_kind(caller: TrustLevel, receiver: TrustLevel) -> Optional[str]:
    """Transition a call from ``caller``-owned code into ``receiver``
    performs, or ``None`` when no boundary is crossed.

    Neutral callers are assumed to run on the side opposite the
    receiver (the pessimistic case: every such call is a crossing).
    """
    if receiver is TrustLevel.TRUSTED and caller is not TrustLevel.TRUSTED:
        return "ecall"
    if receiver is TrustLevel.UNTRUSTED and caller is not TrustLevel.UNTRUSTED:
        return "ocall"
    return None


# -- the application model ----------------------------------------------------


@dataclass(frozen=True)
class MethodInfo:
    """One method as the linter sees it: leaf owner + live function + AST."""

    owner: str
    name: str
    func: object
    tree: Optional[ast.FunctionDef]
    is_public: bool

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}"


class AppModel:
    """Everything the rules share for one application's class set."""

    def __init__(self, classes: Sequence[type]) -> None:
        unique: Dict[str, type] = {}
        for cls in classes:
            unique.setdefault(cls.__name__, cls)
        self.classes: Tuple[type, ...] = tuple(unique.values())
        self.ir = extract_classes(self.classes)
        self.universe = ClassUniverse(self.ir)
        self.by_name = dict(unique)
        self.lower_names = {name.lower(): name for name in unique}
        self._methods: Dict[str, List[MethodInfo]] = {
            name: list(self._extract_methods(cls)) for name, cls in unique.items()
        }
        self.field_types: Dict[str, Dict[str, str]] = {}
        for name in unique:
            self.field_types[name] = self._infer_field_types(name)

    # -- lookups --------------------------------------------------------------

    def trust_of(self, class_name: str) -> TrustLevel:
        jclass = self.universe.get(class_name)
        return jclass.trust if jclass is not None else TrustLevel.NEUTRAL

    def module_of(self, class_name: str):
        cls = self.by_name.get(class_name)
        if cls is None:
            return None
        return sys.modules.get(cls.__module__)

    def methods_of(self, class_name: str) -> List[MethodInfo]:
        return self._methods.get(class_name, [])

    def all_methods(self) -> Iterator[MethodInfo]:
        for name in sorted(self._methods):
            yield from self._methods[name]

    def return_verdict(self, class_name: str, method_name: str) -> TypeVerdict:
        """Boundary classification of ``class_name.method_name()``'s result."""
        cls = self.by_name.get(class_name)
        func = getattr(cls, method_name, None) if cls is not None else None
        if func is None:
            return TypeVerdict(UNKNOWN)
        raw = getattr(func, "__annotations__", {}).get("return")
        if raw is None:
            return TypeVerdict(UNKNOWN)
        return classify_annotation(raw, self, self.module_of(class_name))

    def return_class(self, class_name: str, method_name: str) -> Optional[str]:
        verdict = self.return_verdict(class_name, method_name)
        if verdict.class_name and verdict.class_name in self.universe:
            return verdict.class_name
        return None

    # -- construction ---------------------------------------------------------

    def _extract_methods(self, cls: type) -> Iterator[MethodInfo]:
        members: Dict[str, object] = {}
        for klass in reversed(cls.__mro__):
            if klass is object:
                continue
            members.update(vars(klass))
        for name, member in members.items():
            if isinstance(member, (staticmethod, classmethod)):
                member = member.__func__
            if not inspect.isfunction(member):
                continue
            yield MethodInfo(
                owner=cls.__name__,
                name=name,
                func=member,
                tree=_parse_function(member),
                is_public=not name.startswith("_") or name == "__init__",
            )

    def _infer_field_types(self, class_name: str) -> Dict[str, str]:
        init = next(
            (m for m in self._methods[class_name] if m.name == "__init__"), None
        )
        if init is None or init.tree is None:
            return {}
        scope = ScopeTypes(self, class_name, init.tree)
        fields: Dict[str, str] = {}
        for stmt in _assignments_in(init.tree.body):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            if isinstance(stmt, ast.Assign):
                scope.assign(stmt)
            inferred = scope.infer(value)
            if inferred is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    fields[target.attr] = inferred
        return fields


#: Memoised per-function parses (see the identical cache in
#: :mod:`repro.core.validation`): inference re-reads the same method
#: sources every partition, and callers only read the returned nodes.
_PARSE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UNPARSEABLE = object()


def _parse_function(func) -> Optional[ast.FunctionDef]:
    try:
        cached = _PARSE_CACHE.get(func)
    except TypeError:
        cached = None
    if cached is not None:
        return None if cached is _UNPARSEABLE else cached
    node: Optional[ast.FunctionDef] = None
    try:
        tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
    except (OSError, TypeError, SyntaxError, IndentationError):
        tree = None
    if tree is not None:
        for candidate in ast.walk(tree):
            if isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node = candidate  # type: ignore[assignment]
                break
    try:
        _PARSE_CACHE[func] = _UNPARSEABLE if node is None else node
    except TypeError:
        pass
    return node


def _assignments_in(stmts) -> Iterator[ast.stmt]:
    """Assign/AnnAssign statements in source order, descending into
    compound statements (the bodies of if/for/while/with/try)."""
    for stmt in stmts:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from _assignments_in(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _assignments_in(handler.body)


class ScopeTypes:
    """Per-method receiver-class inference.

    Combines parameter annotations, ``var = ClassName(...)`` constructor
    assignments, ``self.field`` types inferred from ``__init__``,
    chained calls whose return annotation resolves to a universe class,
    and the variable-name heuristic shared with
    :mod:`repro.core.validation` (``account`` -> ``Account``).
    """

    def __init__(self, model: AppModel, owner: str, tree: Optional[ast.FunctionDef]) -> None:
        self.model = model
        self.owner = owner
        self.vars: Dict[str, str] = {}
        if tree is None:
            return
        args = tree.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == "self":
                continue
            inferred = self._class_from_annotation(arg.annotation)
            if inferred is None:
                inferred = model.lower_names.get(arg.arg.lower())
            if inferred is not None:
                self.vars[arg.arg] = inferred

    def _class_from_annotation(self, annotation) -> Optional[str]:
        if annotation is None:
            return None
        verdict = classify_annotation(
            annotation, self.model, self.model.module_of(self.owner)
        )
        if verdict.class_name and verdict.class_name in self.model.universe:
            return verdict.class_name
        return None

    def assign(self, node: ast.Assign) -> None:
        inferred = self.infer(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if inferred is not None:
                    self.vars[target.id] = inferred
                else:
                    self.vars.pop(target.id, None)

    def infer(self, node) -> Optional[str]:
        """Universe class of an expression's value, if statically known."""
        if isinstance(node, ast.Name):
            if node.id in self.vars:
                return self.vars[node.id]
            if node.id in self.model.universe:
                return node.id  # the class object itself (static receiver)
            return self.model.lower_names.get(node.id.lower())
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.model.field_types.get(self.owner, {}).get(node.attr)
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id if func.id in self.model.universe else None
            if isinstance(func, ast.Attribute):
                receiver = self.infer(func.value)
                if receiver is not None and receiver in self.model.universe:
                    return self.model.return_class(receiver, func.attr)
            return None
        return None
