"""Static partition analysis: the build-time linter (§5.1, §5.3).

Montsalvat's security argument is a *build-time* argument — annotated
classes are properly encapsulated, only reachable code enters the
enclave image, and boundary crossings are deliberate. This package
checks those properties before a single virtual cycle is spent:

>>> from repro.analysis import PartitionLinter
>>> result = PartitionLinter().lint(BANK_CLASSES)  # doctest: +SKIP
>>> result.exit_code  # doctest: +SKIP
0

See ``docs/ANALYSIS.md`` for the rule catalogue (MSV001–MSV007),
suppression syntax, the value-granular taint engine behind
MSV001/MSV006/MSV007 (:mod:`repro.analysis.taint`) and the
static-vs-dynamic crossing workflow.
"""

from repro.analysis.diagnostics import (
    ALL_CODES,
    BOUNDARY_ESCAPE,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    IDLE_CROSSING,
    SECURE_ESCAPE,
    UNSERIALIZABLE_CROSSING,
    Diagnostic,
    Severity,
)
from repro.analysis.inference import AppModel, TypeVerdict, classify_annotation
from repro.analysis.linter import (
    LintResult,
    PartitionLinter,
    diff_candidates,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.report import format_text, to_dict, to_json
from repro.analysis.rules import (
    BoundaryEscapeRule,
    ChattyCrossingRule,
    DeadTcbRule,
    EncapsulationRule,
    IdleCrossingRule,
    Rule,
    SecureEscapeRule,
    UnserializableCrossingRule,
    default_rules,
)
from repro.analysis.taint import (
    MethodSummary,
    Taint,
    TaintAnalysis,
    TaintEngine,
    analyze_taint,
    declares_secure_return,
)

__all__ = [
    "ALL_CODES",
    "BOUNDARY_ESCAPE",
    "CHATTY_CROSSING",
    "DEAD_TCB",
    "ENCAPSULATION",
    "IDLE_CROSSING",
    "SECURE_ESCAPE",
    "UNSERIALIZABLE_CROSSING",
    "AppModel",
    "BoundaryEscapeRule",
    "ChattyCrossingRule",
    "DeadTcbRule",
    "Diagnostic",
    "EncapsulationRule",
    "IdleCrossingRule",
    "LintResult",
    "MethodSummary",
    "PartitionLinter",
    "Rule",
    "SecureEscapeRule",
    "Severity",
    "Taint",
    "TaintAnalysis",
    "TaintEngine",
    "TypeVerdict",
    "UnserializableCrossingRule",
    "analyze_taint",
    "classify_annotation",
    "declares_secure_return",
    "default_rules",
    "diff_candidates",
    "format_text",
    "load_baseline",
    "to_dict",
    "to_json",
    "update_baseline",
    "write_baseline",
]
