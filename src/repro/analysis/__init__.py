"""Static partition analysis: the build-time linter (§5.1, §5.3).

Montsalvat's security argument is a *build-time* argument — annotated
classes are properly encapsulated, only reachable code enters the
enclave image, and boundary crossings are deliberate. This package
checks those properties before a single virtual cycle is spent:

>>> from repro.analysis import PartitionLinter
>>> result = PartitionLinter().lint(BANK_CLASSES)  # doctest: +SKIP
>>> result.exit_code  # doctest: +SKIP
0

See ``docs/ANALYSIS.md`` for the rule catalogue (MSV001–MSV005),
suppression syntax and the static-vs-dynamic crossing workflow.
"""

from repro.analysis.diagnostics import (
    ALL_CODES,
    BOUNDARY_ESCAPE,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    UNSERIALIZABLE_CROSSING,
    Diagnostic,
    Severity,
)
from repro.analysis.inference import AppModel, TypeVerdict, classify_annotation
from repro.analysis.linter import (
    LintResult,
    PartitionLinter,
    diff_candidates,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import format_text, to_dict, to_json
from repro.analysis.rules import (
    BoundaryEscapeRule,
    ChattyCrossingRule,
    DeadTcbRule,
    EncapsulationRule,
    Rule,
    UnserializableCrossingRule,
    default_rules,
)

__all__ = [
    "ALL_CODES",
    "BOUNDARY_ESCAPE",
    "CHATTY_CROSSING",
    "DEAD_TCB",
    "ENCAPSULATION",
    "UNSERIALIZABLE_CROSSING",
    "AppModel",
    "BoundaryEscapeRule",
    "ChattyCrossingRule",
    "DeadTcbRule",
    "Diagnostic",
    "EncapsulationRule",
    "LintResult",
    "PartitionLinter",
    "Rule",
    "Severity",
    "TypeVerdict",
    "UnserializableCrossingRule",
    "classify_annotation",
    "default_rules",
    "diff_candidates",
    "format_text",
    "load_baseline",
    "to_dict",
    "to_json",
    "write_baseline",
]
