"""Interprocedural, fixpoint-based value taint propagation.

PR 2's MSV001 walker tracked trusted-sourced plain data through one
method body: direct assignments only, no tuple unpacking, no augmented
assignment, no field or call-boundary flow. This module is its
generalization — the propagation engine the ROADMAP's SecV item calls
for — and the shared substrate for three lint rules:

- **MSV001** (boundary escape): plain data obtained from a trusted
  object flowing to untrusted sinks or returns;
- **MSV006** (secure escape): a :func:`repro.core.secure.secure` value
  reaching untrusted code without passing ``declassify()``;
- **MSV007** (idle crossing): a boundary crossing carrying zero secure
  values — at value granularity, a candidate to relocate out of the
  TCB.

Design
======

The engine abstractly interprets every method body over the JClass IR
(:class:`~repro.analysis.inference.AppModel`), mapping each local
variable to a set of :class:`Taint` facts. Taint is created at

- calls on trusted receivers whose results cross as plain data (the
  MSV001 source condition, unchanged), and
- ``secure(...)`` intrinsic calls (kind ``secure``, labelled);

propagates through assignments (including elementwise tuple/list
unpacking), augmented assignments, container literals, field
stores/loads (a global ``(class, field) -> taints`` map folded to a
fixpoint), loop targets, and call arguments/returns via per-method
summaries (which params flow to the return value, which concrete
taints the method returns); and is killed only by ``declassify(value,
reason)``. Each fact carries a bounded provenance chain
(``source -> via:Class.method -> field:Class.f``) surfaced in
diagnostics.

Interprocedural summaries are computed to a fixpoint (the lattice is
finite: taint sets over bounded chains), then a final recording pass
emits events — sink hits, tainted returns, crossing call sites — that
the rules translate into diagnostics. Trusted receivers stay opaque to
*plain* taint beyond the original MSV001 source condition (their
internals run inside the enclave; only the outermost call is a
boundary fact), but *secure* taint flows through them so an enclave
method handing back a secure value keeps its tag.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.inference import (
    NESTED_PROXY,
    NONE,
    PROXY,
    AppModel,
    MethodInfo,
    ScopeTypes,
    crossing_kind,
)
from repro.graal.jtypes import TrustLevel

#: Taint kinds. ``param`` is the summary placeholder for "whatever the
#: caller passes" and never reaches a diagnostic directly.
PLAIN = "plain"
SECURE = "secure"
PARAM = "param"

#: Provenance chains are bounded so the abstract domain stays finite
#: and the fixpoint terminates.
MAX_CHAIN = 6

#: Iteration cap for the interprocedural fixpoint (a backstop: the
#: bounded lattice converges long before this on real apps).
FIXPOINT_LIMIT = 16

_SECURE_INTRINSIC = "secure"
_DECLASSIFY_INTRINSIC = "declassify"


@dataclass(frozen=True, order=True)
class Taint:
    """One taint fact: what kind of secret, where it came from, how it
    travelled."""

    kind: str
    source: str
    chain: Tuple[str, ...] = ()

    def extended(self, step: str) -> "Taint":
        """The same fact with ``step`` appended to its provenance.

        No-ops on a repeated step and truncates at :data:`MAX_CHAIN`,
        keeping the chain lattice finite."""
        if self.chain and self.chain[-1] == step:
            return self
        if len(self.chain) >= MAX_CHAIN:
            return self
        return Taint(self.kind, self.source, (*self.chain, step))


EMPTY: FrozenSet[Taint] = frozenset()


def concrete(taints: FrozenSet[Taint]) -> FrozenSet[Taint]:
    """Facts that name an actual secret (not summary placeholders)."""
    return frozenset(t for t in taints if t.kind != PARAM)


@dataclass(frozen=True)
class MethodSummary:
    """Boundary-relevant behaviour of one method, caller's view."""

    returns: FrozenSet[Taint] = EMPTY  # concrete taints of the return value
    flows: FrozenSet[str] = frozenset()  # params whose taint reaches the return


@dataclass(frozen=True)
class SinkEvent:
    """A tainted argument reaching an untrusted call."""

    owner: str
    method: str
    display: str
    taint: Taint
    sink: str


@dataclass(frozen=True)
class ReturnEvent:
    """A tainted value returned from a method."""

    owner: str
    method: str
    display: str
    taint: Taint


@dataclass(frozen=True)
class CrossingEvent:
    """One boundary-crossing call site and its secure-value payload."""

    owner: str
    method: str
    routine: str
    kind: str  # "ecall" | "ocall"
    target: str  # "Class.method"
    secure_args: int
    total_args: int
    #: The callee declares ``-> SecureValue``: the crossing *mints*
    #: sealed data even when its arguments are plain.
    secure_return: bool = False


@dataclass
class TaintAnalysis:
    """Everything the taint-backed rules consume."""

    summaries: Dict[str, MethodSummary] = field(default_factory=dict)
    field_taints: Dict[Tuple[str, str], FrozenSet[Taint]] = field(default_factory=dict)
    sink_events: List[SinkEvent] = field(default_factory=list)
    return_events: List[ReturnEvent] = field(default_factory=list)
    crossings: List[CrossingEvent] = field(default_factory=list)
    uses_secure: bool = False
    iterations: int = 0


_CACHE_ATTR = "_taint_analysis_cache"


def analyze_taint(model: AppModel) -> TaintAnalysis:
    """Run (or reuse) the engine for one model. The analysis is pure in
    the model, so rules sharing a model share one fixpoint."""
    cached = getattr(model, _CACHE_ATTR, None)
    if cached is None:
        cached = TaintEngine(model).run()
        setattr(model, _CACHE_ATTR, cached)
    return cached


class TaintEngine:
    """Fixpoint driver: summaries + field taints, then a recording pass."""

    def __init__(self, model: AppModel) -> None:
        self.model = model
        self.summaries: Dict[str, MethodSummary] = {}
        self.field_taints: Dict[Tuple[str, str], FrozenSet[Taint]] = {}
        self.params: Dict[str, Tuple[str, ...]] = {}
        self.uses_secure = False
        self._changed = False
        for info in model.all_methods():
            if info.tree is not None:
                self.params[info.qualified_name] = _param_names(info.tree)

    def run(self) -> TaintAnalysis:
        iterations = 0
        for _ in range(FIXPOINT_LIMIT):
            iterations += 1
            self._changed = False
            for info in self.model.all_methods():
                if info.tree is None:
                    continue
                interp = _Interpreter(self, info, record=False)
                interp.run()
                self._update_summary(info, interp)
            if not self._changed:
                break
        analysis = TaintAnalysis(
            summaries=dict(self.summaries),
            field_taints=dict(self.field_taints),
            uses_secure=self.uses_secure,
            iterations=iterations,
        )
        for info in self.model.all_methods():
            if info.tree is None:
                continue
            interp = _Interpreter(self, info, record=True)
            interp.run()
            analysis.sink_events.extend(interp.sink_events)
            analysis.return_events.extend(interp.return_events)
            analysis.crossings.extend(interp.crossings)
        analysis.uses_secure = self.uses_secure
        return analysis

    # -- fixpoint state --------------------------------------------------------

    def add_field_taints(self, key: Tuple[str, str], taints: FrozenSet[Taint]) -> None:
        if not taints:
            return
        merged = self.field_taints.get(key, EMPTY) | taints
        if merged != self.field_taints.get(key, EMPTY):
            self.field_taints[key] = merged
            self._changed = True

    def _update_summary(self, info: MethodInfo, interp: "_Interpreter") -> None:
        returned = frozenset(interp.return_taints)
        summary = MethodSummary(
            returns=concrete(returned),
            flows=frozenset(t.source for t in returned if t.kind == PARAM),
        )
        if self.summaries.get(info.qualified_name) != summary:
            self.summaries[info.qualified_name] = summary
            self._changed = True


def declares_secure_return(model, class_name: str, method_name: str) -> bool:
    """Whether ``Class.method`` declares a ``SecureValue`` return.

    The signature is the contract: a method annotated to return a
    secure value hands its callers *sealed* data on purpose, so the
    escape rules treat that flow as sanctioned. An undeclared secure
    return (annotated ``str``, or not at all) stays an escape.
    """
    cls = model.by_name.get(class_name)
    func = getattr(cls, method_name, None) if cls is not None else None
    if func is None:
        return False
    raw = getattr(func, "__annotations__", {}).get("return")
    if raw is None:
        return False
    if isinstance(raw, type):
        return raw.__name__ == "SecureValue"
    return "SecureValue" in str(raw)


def _param_names(tree: ast.FunctionDef) -> Tuple[str, ...]:
    args = tree.args
    names = [a.arg for a in [*args.posonlyargs, *args.args] if a.arg != "self"]
    return tuple(names)


class _Interpreter:
    """One pass over one method body.

    Statements are processed in source order, branch bodies
    sequentially (path-insensitive, like the PR 2 walker it replaces),
    loop bodies once — the *inter*procedural fixpoint supplies the
    iteration the *intra*procedural pass forgoes.
    """

    def __init__(self, engine: TaintEngine, info: MethodInfo, record: bool) -> None:
        self.engine = engine
        self.model = engine.model
        self.info = info
        self.owner = info.owner
        self.owner_trust = engine.model.trust_of(info.owner)
        self.record = record
        self.scope = ScopeTypes(engine.model, info.owner, info.tree)
        self.env: Dict[str, FrozenSet[Taint]] = {}
        self.return_taints: Set[Taint] = set()
        self.sink_events: List[SinkEvent] = []
        self.return_events: List[ReturnEvent] = []
        self.crossings: List[CrossingEvent] = []
        self._seen_crossings: Set[str] = set()
        for name in engine.params.get(info.qualified_name, ()):
            self.env[name] = frozenset({Taint(PARAM, name)})
        kwonly = info.tree.args.kwonlyargs if info.tree is not None else []
        for arg in kwonly:
            if arg.arg != "self":
                self.env[arg.arg] = frozenset({Taint(PARAM, arg.arg)})

    def run(self) -> None:
        self._block(self.info.tree.body)

    # -- statements ------------------------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            self.scope.assign(stmt)
            for target in stmt.targets:
                self._assign_target(target, taints, stmt.value)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taints = self._eval(stmt.value)
                self._assign_target(stmt.target, taints, stmt.value)
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                # x += tainted propagates (the PR 2 walker dropped it).
                merged = self.env.get(stmt.target.id, EMPTY) | taints
                if merged:
                    self.env[stmt.target.id] = merged
            elif isinstance(stmt.target, ast.Attribute):
                self._store_field(stmt.target, taints)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints = self._eval(stmt.value)
                self.return_taints |= taints
                if self.record:
                    self._record_return(stmt.value, taints)
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter)
            taints = self._eval(stmt.iter)
            if taints:
                self._assign_target(
                    stmt.target,
                    frozenset(t.extended("iterated") for t in taints),
                    None,
                )
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars,
                        self._eval(item.context_expr),
                        item.context_expr,
                    )
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions are separate scopes
        else:
            # Raise, Assert, Global, ...: still scan contained
            # expressions for sinks and crossings.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._check_expr(child)

    # -- assignment targets ----------------------------------------------------

    def _assign_target(
        self,
        target: ast.expr,
        taints: FrozenSet[Taint],
        value: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            if taints:
                self.env[target.id] = taints
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taints, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Elementwise when the value is a literal of matching arity
            # (the PR 2 walker dropped tuple unpacking entirely).
            elements: Optional[List[ast.expr]] = None
            if (
                isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                and not any(isinstance(e, ast.Starred) for e in target.elts)
            ):
                elements = list(value.elts)
            for index, elt in enumerate(target.elts):
                if elements is not None:
                    self._assign_target(elt, self._eval(elements[index]), elements[index])
                else:
                    self._assign_target(elt, taints, None)
        elif isinstance(target, ast.Attribute):
            self._store_field(target, taints)
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted poisons the container variable.
            base = target.value
            if isinstance(base, ast.Name) and taints:
                self.env[base.id] = self.env.get(base.id, EMPTY) | taints

    def _store_field(self, target: ast.Attribute, taints: FrozenSet[Taint]) -> None:
        receiver = self._receiver_class(target.value)
        if receiver is None:
            return
        facts = concrete(taints)
        if facts:
            step = f"field:{receiver}.{target.attr}"
            self.engine.add_field_taints(
                (receiver, target.attr),
                frozenset(t.extended(step) for t in facts),
            )

    def _receiver_class(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id == "self":
            return self.owner
        return self.scope.infer(node)

    # -- expression evaluation -------------------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> FrozenSet[Taint]:
        if node is None:
            return EMPTY
        out: Set[Taint] = set()
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Name):
                out |= self.env.get(current.id, EMPTY)
            elif isinstance(current, ast.Call):
                out |= self._eval_call(current)
            elif isinstance(current, ast.Attribute):
                receiver = self._receiver_class(current.value)
                if receiver is not None:
                    out |= self.engine.field_taints.get(
                        (receiver, current.attr), EMPTY
                    )
                # Note sv.value lands here too: peeking inside a
                # SecureValue keeps the secure taint of sv itself —
                # only declassify() clears it.
                stack.append(current.value)
            elif isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            else:
                stack.extend(ast.iter_child_nodes(current))
        return frozenset(out)

    def _eval_call(self, call: ast.Call) -> FrozenSet[Taint]:
        func = call.func
        name = _callee_name(func)
        if name == _SECURE_INTRINSIC:
            self.engine.uses_secure = True
            inner = EMPTY
            for arg in call.args[:1]:
                inner = self._eval(arg)
            label = _secure_label(call)
            source = f"secure:{label}" if label else "secure"
            chain: Tuple[str, ...] = (source,)
            wrapped = sorted(concrete(inner))
            if wrapped:
                chain = (*chain, f"wraps:{wrapped[0].source}")
            # secure() swallows plain taint: the wrapper *is* the
            # sanctioned way to carry a trusted secret, so only the
            # secure fact survives (MSV006 takes over from MSV001).
            return frozenset({Taint(SECURE, source, chain)})
        if name == _DECLASSIFY_INTRINSIC:
            inner = self._eval(call.args[0]) if call.args else EMPTY
            return frozenset(t for t in inner if t.kind != SECURE)
        if isinstance(func, ast.Name):
            if func.id in self.model.universe:
                return EMPTY  # constructor: the instance is not a value taint
            return self._union_args(call)
        if isinstance(func, ast.Attribute):
            receiver = self._receiver_class(func.value)
            if receiver is None or receiver not in self.model.by_name:
                return self._union_args(call) | self._eval(func.value)
            return self._eval_known_call(call, receiver, func.attr)
        return self._union_args(call)

    def _eval_known_call(
        self, call: ast.Call, receiver: str, method: str
    ) -> FrozenSet[Taint]:
        trust = self.model.trust_of(receiver)
        summary = self.engine.summaries.get(f"{receiver}.{method}")
        via = f"via:{receiver}.{method}"
        out: Set[Taint] = set()
        if trust is TrustLevel.TRUSTED:
            # The MSV001 source condition, verbatim from PR 2: a
            # trusted receiver whose result crosses as plain data. A
            # declared ``-> SecureValue`` return leaves the enclave
            # sealed instead, so it mints *secure* taint and MSV006
            # (not MSV001) governs where it may go.
            verdict = self.model.return_verdict(receiver, method)
            if verdict.kind not in (NONE, PROXY, NESTED_PROXY):
                source = f"{receiver}.{method}"
                kind = (
                    SECURE
                    if declares_secure_return(self.model, receiver, method)
                    else PLAIN
                )
                out.add(Taint(kind, source, (source,)))
            # Trusted internals are opaque to plain taint (in-enclave
            # flow is not a boundary fact) but secure values keep
            # their tag through the enclave.
            if summary is not None:
                out |= {
                    t.extended(via)
                    for t in summary.returns
                    if t.kind == SECURE
                }
                out |= {
                    t.extended(via)
                    for t in self._flow_args(call, receiver, method, summary)
                    if t.kind == SECURE
                }
            return frozenset(out)
        if summary is None:
            return self._union_args(call) | self._eval(call.func.value)
        out |= {t.extended(via) for t in summary.returns}
        out |= {
            t.extended(via) for t in self._flow_args(call, receiver, method, summary)
        }
        return frozenset(out)

    def _flow_args(
        self, call: ast.Call, receiver: str, method: str, summary: MethodSummary
    ) -> FrozenSet[Taint]:
        if not summary.flows:
            return EMPTY
        params = self.engine.params.get(f"{receiver}.{method}", ())
        out: Set[Taint] = set()
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if index < len(params) and params[index] in summary.flows:
                out |= concrete(self._eval(arg))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in summary.flows:
                out |= concrete(self._eval(keyword.value))
        return frozenset(out)

    def _union_args(self, call: ast.Call) -> FrozenSet[Taint]:
        out: Set[Taint] = set()
        for arg in call.args:
            out |= self._eval(arg)
        for keyword in call.keywords:
            out |= self._eval(keyword.value)
        return frozenset(out)

    # -- sinks and crossings ---------------------------------------------------

    def _check_expr(self, expr: ast.expr) -> None:
        if not self.record:
            # Sources still need discovering during summary passes (the
            # uses_secure flag), but events belong to the final pass.
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and _callee_name(node.func) == _SECURE_INTRINSIC:
                    self.engine.uses_secure = True
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node.func) == _SECURE_INTRINSIC:
                self.engine.uses_secure = True
            sink = self._untrusted_sink(node)
            if sink is not None:
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for arg in arguments:
                    facts = concrete(self._eval(arg))
                    self._record_sink(arg, facts, sink)
            self._record_crossing(node)

    def _untrusted_sink(self, node: ast.Call) -> Optional[str]:
        # Verbatim PR 2 semantics: a call into a *different* untrusted
        # class, either its constructor or a method on an inferred
        # receiver.
        func = node.func
        if isinstance(func, ast.Name):
            if (
                func.id in self.model.universe
                and func.id != self.owner
                and self.model.trust_of(func.id) is TrustLevel.UNTRUSTED
            ):
                return f"{func.id}.__init__"
            return None
        if isinstance(func, ast.Attribute):
            receiver = self.scope.infer(func.value)
            if (
                receiver is not None
                and receiver != self.owner
                and self.model.trust_of(receiver) is TrustLevel.UNTRUSTED
            ):
                return f"{receiver}.{func.attr}"
        return None

    def _record_sink(
        self, arg: ast.expr, facts: FrozenSet[Taint], sink: str
    ) -> None:
        for kind in (PLAIN, SECURE):
            of_kind = sorted(t for t in facts if t.kind == kind)
            if not of_kind:
                continue
            taint = self._representative(arg, of_kind)
            self.sink_events.append(
                SinkEvent(
                    owner=self.owner,
                    method=self.info.name,
                    display=self._display(arg, taint),
                    taint=taint,
                    sink=sink,
                )
            )

    def _record_return(self, value: ast.expr, taints: FrozenSet[Taint]) -> None:
        facts = concrete(taints)
        for kind in (PLAIN, SECURE):
            of_kind = sorted(t for t in facts if t.kind == kind)
            if not of_kind:
                continue
            taint = self._representative(value, of_kind)
            self.return_events.append(
                ReturnEvent(
                    owner=self.owner,
                    method=self.info.name,
                    display=self._display(value, taint),
                    taint=taint,
                )
            )

    def _record_crossing(self, node: ast.Call) -> None:
        crossing = self._crossing_target(node)
        if crossing is None:
            return
        routine, kind, target = crossing
        if routine in self._seen_crossings:
            return
        self._seen_crossings.add(routine)
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        secure_args = sum(
            1
            for arg in arguments
            if any(t.kind == SECURE for t in self._eval(arg))
        )
        target_class, _, target_method = target.partition(".")
        self.crossings.append(
            CrossingEvent(
                owner=self.owner,
                method=self.info.name,
                routine=routine,
                kind=kind,
                target=target,
                secure_args=secure_args,
                total_args=len(arguments),
                secure_return=declares_secure_return(
                    self.model, target_class, target_method
                ),
            )
        )

    def _crossing_target(self, node: ast.Call) -> Optional[Tuple[str, str, str]]:
        # Same geometry as the MSV003 estimator, minus the loop gate.
        func = node.func
        if isinstance(func, ast.Name):
            receiver = func.id
            if receiver not in self.model.universe:
                return None
            trust = self.model.trust_of(receiver)
            if not trust.annotated:
                return None
            kind = crossing_kind(self.owner_trust, trust)
            if kind is None:
                return None
            return (f"relay_{receiver}_init", kind, f"{receiver}.__init__")
        if isinstance(func, ast.Attribute):
            receiver = self.scope.infer(func.value)
            if receiver is None or receiver not in self.model.universe:
                return None
            trust = self.model.trust_of(receiver)
            if not trust.annotated:
                return None
            kind = crossing_kind(self.owner_trust, trust)
            if kind is None:
                return None
            return (f"relay_{receiver}_{func.attr}", kind, f"{receiver}.{func.attr}")
        return None

    # -- diagnostics surface ---------------------------------------------------

    def _representative(self, node: ast.expr, candidates: List[Taint]) -> Taint:
        """The fact a diagnostic names, chosen the way the PR 2 walker
        did: a direct source call wins, then the first tainted name in
        walk order, then deterministic order."""
        direct = self._direct_source(node)
        if direct is not None:
            for taint in candidates:
                if taint.source == direct:
                    return taint
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                for taint in sorted(self.env.get(sub.id, EMPTY)):
                    if taint in candidates:
                        return taint
        return candidates[0]

    def _display(self, node: ast.expr, taint: Taint) -> str:
        direct = self._direct_source(node)
        if direct is not None and taint.source == direct:
            return f"{direct}()"
        if isinstance(node, ast.Call) and _callee_name(node.func) == _SECURE_INTRINSIC:
            return f"{taint.source}()"
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and taint in self.env.get(sub.id, EMPTY):
                return sub.id
        return taint.source

    def _direct_source(self, node: ast.expr) -> Optional[str]:
        """``Class.method`` when ``node`` itself is an MSV001 source
        call (matching the walker's display form ``Class.method()``)."""
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            return None
        receiver = self.scope.infer(node.func.value)
        if receiver is None or self.model.trust_of(receiver) is not TrustLevel.TRUSTED:
            return None
        verdict = self.model.return_verdict(receiver, node.func.attr)
        if verdict.kind in (NONE, PROXY, NESTED_PROXY):
            return None
        return f"{receiver}.{node.func.attr}"


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _secure_label(call: ast.Call) -> str:
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            return call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "label" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                return keyword.value.value
    return ""
