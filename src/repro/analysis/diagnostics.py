"""Diagnostics produced by the partition linter.

Every rule reports :class:`Diagnostic` records with a stable code
(``MSV001``..), a severity, a class/method location and a fix hint, so
text and JSON reporters, the baseline file and the CLI exit code all
work off one shape regardless of which analysis produced the finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


class Severity(enum.Enum):
    """How bad a finding is; only ``ERROR`` fails the build/CI."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


#: Rule codes, kept in one place so docs/tests cannot drift.
BOUNDARY_ESCAPE = "MSV001"
UNSERIALIZABLE_CROSSING = "MSV002"
CHATTY_CROSSING = "MSV003"
DEAD_TCB = "MSV004"
ENCAPSULATION = "MSV005"
SECURE_ESCAPE = "MSV006"
IDLE_CROSSING = "MSV007"

ALL_CODES = (
    BOUNDARY_ESCAPE,
    UNSERIALIZABLE_CROSSING,
    CHATTY_CROSSING,
    DEAD_TCB,
    ENCAPSULATION,
    SECURE_ESCAPE,
    IDLE_CROSSING,
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one class/method location.

    ``detail`` disambiguates several findings of the same rule at the
    same location (e.g. two leaking variables in one method); it is part
    of the suppression key and must therefore be stable across runs and
    contain no whitespace.
    """

    code: str
    severity: Severity
    class_name: str
    method_name: str
    message: str
    hint: str = ""
    detail: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def location(self) -> str:
        if not self.method_name:
            return self.class_name
        return f"{self.class_name}.{self.method_name}"

    @property
    def suppression_key(self) -> str:
        """Stable identity for the baseline-suppression file."""
        key = f"{self.code}:{self.location}"
        if self.detail:
            key += f":{self.detail}"
        return key.replace(" ", "_")

    def format(self) -> str:
        line = f"{self.code} {self.severity.value:<7} {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "class": self.class_name,
            "method": self.method_name,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "detail": self.detail,
            "suppression_key": self.suppression_key,
            "data": dict(self.data),
        }


def sort_key(diag: Diagnostic):
    """Deterministic report order: by code, then location, then detail."""
    return (diag.code, diag.location, diag.detail)


def worst_severity(diagnostics) -> Optional[Severity]:
    worst: Optional[Severity] = None
    for diag in diagnostics:
        if worst is None or diag.severity.rank > worst.rank:
            worst = diag.severity
    return worst
