"""Cost ledger: categorised accounting of everything the simulation charges.

The ledger answers questions like "how much of this run was enclave
transitions?" and backs the per-phase breakdowns of Fig. 9 (engine vs
sharding time) and the ocall-ratio claim of §6.5 (RUWT does ~23x more
ocalls than RTWU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple


@dataclass
class LedgerEntry:
    """Accumulated cost for one category (internal, mutable)."""

    count: int = 0
    total_ns: float = 0.0

    def add(self, ns: float) -> None:
        self.count += 1
        self.total_ns += ns

    def merge(self, other: "LedgerEntry") -> None:
        self.count += other.count
        self.total_ns += other.total_ns


@dataclass(frozen=True)
class LedgerEntryView:
    """Immutable snapshot of one category's accumulated cost.

    Returned by :meth:`CostLedger.entry` so callers can never mutate
    ledger state through it — previously an unknown category returned a
    fresh mutable entry whose mutations were silently lost.
    """

    count: int = 0
    total_ns: float = 0.0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


class CostLedger:
    """Hierarchical cost accounting keyed by dotted category names.

    Categories are free-form dotted strings such as
    ``"transition.ecall"`` or ``"gc.enclave"``; prefix queries aggregate
    whole subtrees.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, LedgerEntry] = {}

    def charge(self, category: str, ns: float) -> None:
        """Record ``ns`` nanoseconds against ``category``."""
        entry = self._entries.get(category)
        if entry is None:
            entry = LedgerEntry()
            self._entries[category] = entry
        entry.add(ns)

    def entry(self, category: str) -> LedgerEntryView:
        """Immutable exact-category view (zero view if never charged).

        This is a copy, not a live reference: later charges to the
        category are not reflected in a previously returned view.
        """
        entry = self._entries.get(category)
        if entry is None:
            return LedgerEntryView()
        return LedgerEntryView(count=entry.count, total_ns=entry.total_ns)

    def total_ns(self, prefix: str = "") -> float:
        """Total nanoseconds across all categories under ``prefix``."""
        return sum(
            entry.total_ns
            for name, entry in self._entries.items()
            if _matches(name, prefix)
        )

    def count(self, prefix: str = "") -> int:
        """Total event count across all categories under ``prefix``."""
        return sum(
            entry.count
            for name, entry in self._entries.items()
            if _matches(name, prefix)
        )

    def categories(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def snapshot(self) -> Mapping[str, Tuple[int, float]]:
        """Immutable view: category -> (count, total_ns)."""
        return {
            name: (entry.count, entry.total_ns)
            for name, entry in sorted(self._entries.items())
        }

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's entries into this one."""
        for name, entry in other._entries.items():
            mine = self._entries.get(name)
            if mine is None:
                mine = LedgerEntry()
                self._entries[name] = mine
            mine.merge(entry)

    def diff_since(self, baseline: Mapping[str, Tuple[int, float]]) -> Dict[str, Tuple[int, float]]:
        """Delta between the current state and an earlier snapshot."""
        delta: Dict[str, Tuple[int, float]] = {}
        for name, entry in self._entries.items():
            base_count, base_ns = baseline.get(name, (0, 0.0))
            d_count = entry.count - base_count
            d_ns = entry.total_ns - base_ns
            if d_count or d_ns:
                delta[name] = (d_count, d_ns)
        return delta

    def __iter__(self) -> Iterator[Tuple[str, LedgerEntry]]:
        return iter(sorted(self._entries.items()))

    def format_table(self, prefix: str = "", top: Optional[int] = None) -> str:
        """Human-readable table of the heaviest categories."""
        rows = [
            (entry.total_ns, name, entry.count)
            for name, entry in self._entries.items()
            if _matches(name, prefix)
        ]
        rows.sort(reverse=True)
        if top is not None:
            rows = rows[:top]
        lines = [f"{'category':<36} {'count':>10} {'total_ms':>12}"]
        for total_ns, name, count in rows:
            lines.append(f"{name:<36} {count:>10} {total_ns / 1e6:>12.3f}")
        return "\n".join(lines)


def _matches(name: str, prefix: str) -> bool:
    if not prefix:
        return True
    return name == prefix or name.startswith(prefix + ".")
