"""Cost accounting substrate: machine spec, cost model, ledger, clock.

Everything the simulation charges — CPU cycles, MEE-encrypted memory
traffic, enclave transitions, syscalls, GC copies — flows through this
package. The calibrated constants live in :mod:`repro.costs.model` so
the entire reproduction can be re-calibrated from a single file.
"""

from repro.costs.clock import VirtualClock
from repro.costs.ledger import CostLedger, LedgerEntry, LedgerEntryView
from repro.costs.machine import MachineSpec, XEON_E3_1270
from repro.costs.model import CostModel, DEFAULT_COST_MODEL
from repro.costs.platform import Platform, fresh_platform

__all__ = [
    "fresh_platform",
    "VirtualClock",
    "CostLedger",
    "LedgerEntry",
    "LedgerEntryView",
    "MachineSpec",
    "XEON_E3_1270",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Platform",
]
