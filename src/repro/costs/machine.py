"""Machine specification mirroring the paper's testbed (§6.1).

The evaluation server is a quad-core Intel Xeon E3-1270 @ 3.80 GHz with
32 KB L1, 256 KB L2 and 8 MB L3 caches, 64 GB DRAM, and a 128 MB EPC of
which 93.5 MB is usable by enclaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters the cost model scales against."""

    name: str
    cpu_ghz: float
    cores: int
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    dram_bytes: int
    epc_total_bytes: int
    epc_usable_bytes: int
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ConfigurationError("cpu_ghz must be positive")
        if self.epc_usable_bytes > self.epc_total_bytes:
            raise ConfigurationError("usable EPC cannot exceed total EPC")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError("page_bytes must be a power of two")

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert CPU cycles to nanoseconds at this machine's frequency."""
        return cycles / self.cpu_ghz

    def ns_to_cycles(self, ns: float) -> float:
        """Convert nanoseconds to CPU cycles at this machine's frequency."""
        return ns * self.cpu_ghz

    def pages(self, nbytes: int) -> int:
        """Number of pages covering ``nbytes`` (ceiling division)."""
        if nbytes < 0:
            raise ConfigurationError("byte counts cannot be negative")
        return -(-nbytes // self.page_bytes)


#: The paper's evaluation server (§6.1).
XEON_E3_1270 = MachineSpec(
    name="Intel Xeon E3-1270 v6",
    cpu_ghz=3.80,
    cores=4,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    l3_bytes=8 * MB,
    dram_bytes=64 * GB,
    epc_total_bytes=128 * MB,
    epc_usable_bytes=int(93.5 * MB),
)
