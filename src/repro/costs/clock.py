"""Virtual clock measured in nanoseconds.

The reproduction reports *virtual* time: every simulated operation
advances this clock by an amount derived from the cost model, so the
figures reproduce the paper's latency shapes independently of the wall
clock of the machine running the simulation.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class VirtualClock:
    """Monotonic virtual clock with nanosecond resolution."""

    def __init__(self, start_ns: float = 0.0) -> None:
        if start_ns < 0:
            raise ConfigurationError("clock cannot start in the past")
        self._now_ns = float(start_ns)

    @property
    def now_ns(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / 1e9

    def advance_ns(self, delta_ns: float) -> float:
        """Advance the clock by ``delta_ns`` and return the new time.

        Negative advances are rejected: virtual time is monotonic.
        """
        if delta_ns < 0:
            raise ConfigurationError(
                f"virtual time is monotonic, cannot advance by {delta_ns}"
            )
        self._now_ns += delta_ns
        return self._now_ns

    def measure(self) -> "ClockSpan":
        """Return a span anchored at the current instant.

        Use as ``span = clock.measure(); ...; elapsed = span.elapsed_ns()``.
        """
        return ClockSpan(self)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now_ns:.0f}ns)"


class ClockSpan:
    """Elapsed-time probe over a :class:`VirtualClock`."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start_ns = clock.now_ns

    @property
    def start_ns(self) -> float:
        return self._start_ns

    def elapsed_ns(self) -> float:
        return self._clock.now_ns - self._start_ns

    def elapsed_s(self) -> float:
        return self.elapsed_ns() / 1e9
