"""Platform: the shared simulation fabric (machine + clock + ledger).

A :class:`Platform` is the single mutable piece of simulation state a
run threads through every component. Charging a cost advances the
virtual clock and records the amount in the ledger under a category.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Tuple

from repro.costs.clock import ClockSpan, VirtualClock
from repro.costs.ledger import CostLedger, LedgerEntry
from repro.costs.machine import MachineSpec, XEON_E3_1270
from repro.costs.model import CostModel, DEFAULT_COST_MODEL
from repro.obs.recorder import attach_platform
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.core import Observability

#: Signature of a charge observer: (category, ns, now_ns).
ChargeObserver = Callable[[str, float, float], None]


class Platform:
    """Simulated machine a Montsalvat application runs on."""

    def __init__(
        self,
        spec: MachineSpec = XEON_E3_1270,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.spec = spec
        self.cost_model = cost_model
        self.clock = VirtualClock()
        self.ledger = CostLedger()
        #: Active observability bundle, or None (the zero-cost default).
        self.obs: Optional["Observability"] = None
        #: Active fault injector, or None (the zero-cost default). The
        #: SGX substrate consults it at every boundary it can break.
        self.faults: Optional[Any] = None
        # A tuple, not a list: iteration over the common empty case is
        # free and observers are registered once, not churned.
        self._charge_observers: Tuple[ChargeObserver, ...] = ()
        attach_platform(self)

    def charge_cycles(self, category: str, cycles: float) -> float:
        """Charge ``cycles`` CPU cycles to ``category``; returns ns charged."""
        ns = self.spec.cycles_to_ns(cycles)
        return self.charge_ns(category, ns)

    def charge_ns(self, category: str, ns: float) -> float:
        """Charge ``ns`` virtual nanoseconds to ``category``."""
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {ns}")
        # Hottest path in the simulator: every priced operation lands
        # here. The clock advance and ledger update are inlined (the
        # negativity check above subsumes advance_ns's monotonicity
        # check); semantics are identical to clock.advance_ns +
        # ledger.charge, minus three function calls per charge.
        clock = self.clock
        clock._now_ns += ns
        entries = self.ledger._entries
        entry = entries.get(category)
        if entry is None:
            entries[category] = entry = LedgerEntry()
        entry.count += 1
        entry.total_ns += ns
        observers = self._charge_observers
        if observers:
            now_ns = clock._now_ns
            for observer in observers:
                observer(category, ns, now_ns)
        return ns

    # -- observability --------------------------------------------------------

    def add_charge_observer(self, observer: ChargeObserver) -> None:
        """Subscribe to every charge (category, ns, clock-after)."""
        self._charge_observers += (observer,)

    def remove_charge_observer(self, observer: ChargeObserver) -> None:
        self._charge_observers = tuple(
            o for o in self._charge_observers if o is not observer
        )

    def enable_observability(
        self,
        obs: Optional["Observability"] = None,
        ring_capacity: Optional[int] = None,
        label: str = "",
    ) -> "Observability":
        """Attach (or return the existing) observability bundle.

        Idempotent: the first call installs a tracer + metrics registry
        and registers its charge mirror; later calls return the same
        bundle. Observability never advances the virtual clock, so
        enabling it does not change any figure.
        """
        if self.obs is None:
            if obs is None:
                from repro.obs.core import Observability
                from repro.obs.tracer import DEFAULT_RING_CAPACITY

                obs = Observability(
                    self.clock,
                    ring_capacity=ring_capacity or DEFAULT_RING_CAPACITY,
                    label=label,
                )
            self.obs = obs
            self.add_charge_observer(obs.on_charge)
        return self.obs

    # -- fault injection ------------------------------------------------------

    def enable_fault_injection(self, injector: Any) -> Any:
        """Attach a :class:`~repro.faults.FaultInjector` to this platform.

        Like observability, injection is strictly zero-cost when off:
        with no injector attached the substrate performs one attribute
        check per boundary and charges nothing extra.
        """
        self.faults = injector
        bind = getattr(injector, "bind", None)
        if callable(bind):
            bind(self)
        return injector

    def disable_fault_injection(self) -> None:
        self.faults = None

    @property
    def tracer(self):
        """The active span tracer, or the shared no-op tracer."""
        obs = self.obs
        return obs.tracer if obs is not None else NULL_TRACER

    def measure(self) -> ClockSpan:
        """Span anchored at the current virtual instant."""
        return self.clock.measure()

    def snapshot(self) -> Mapping[str, Tuple[int, float]]:
        """Ledger snapshot for later :meth:`CostLedger.diff_since`."""
        return self.ledger.snapshot()

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def __repr__(self) -> str:
        return (
            f"Platform(spec={self.spec.name!r}, now={self.clock.now_s:.6f}s)"
        )


def fresh_platform(cost_model: Optional[CostModel] = None) -> Platform:
    """Convenience factory used by experiments: paper testbed, zeroed clock."""
    return Platform(cost_model=cost_model or DEFAULT_COST_MODEL)
