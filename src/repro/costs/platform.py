"""Platform: the shared simulation fabric (machine + clock + ledger).

A :class:`Platform` is the single mutable piece of simulation state a
run threads through every component. Charging a cost advances the
virtual clock and records the amount in the ledger under a category.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.costs.clock import ClockSpan, VirtualClock
from repro.costs.ledger import CostLedger
from repro.costs.machine import MachineSpec, XEON_E3_1270
from repro.costs.model import CostModel, DEFAULT_COST_MODEL


class Platform:
    """Simulated machine a Montsalvat application runs on."""

    def __init__(
        self,
        spec: MachineSpec = XEON_E3_1270,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.spec = spec
        self.cost_model = cost_model
        self.clock = VirtualClock()
        self.ledger = CostLedger()

    def charge_cycles(self, category: str, cycles: float) -> float:
        """Charge ``cycles`` CPU cycles to ``category``; returns ns charged."""
        ns = self.spec.cycles_to_ns(cycles)
        return self.charge_ns(category, ns)

    def charge_ns(self, category: str, ns: float) -> float:
        """Charge ``ns`` virtual nanoseconds to ``category``."""
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {ns}")
        self.clock.advance_ns(ns)
        self.ledger.charge(category, ns)
        return ns

    def measure(self) -> ClockSpan:
        """Span anchored at the current virtual instant."""
        return self.clock.measure()

    def snapshot(self) -> Mapping[str, Tuple[int, float]]:
        """Ledger snapshot for later :meth:`CostLedger.diff_since`."""
        return self.ledger.snapshot()

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def __repr__(self) -> str:
        return (
            f"Platform(spec={self.spec.name!r}, now={self.clock.now_s:.6f}s)"
        )


def fresh_platform(cost_model: Optional[CostModel] = None) -> Platform:
    """Convenience factory used by experiments: paper testbed, zeroed clock."""
    return Platform(cost_model=cost_model or DEFAULT_COST_MODEL)
