"""Calibrated cost model for the whole reproduction.

Every constant the simulation charges lives here, expressed in CPU
cycles (converted to virtual nanoseconds through the machine spec).
The calibration targets are the paper's own measurements:

- ecall/ocall hardware transitions cost up to ~13,100 cycles (§2.1);
- a full relay invocation (transition + isolate attach + registry
  dispatch) lands near ~10^2 microseconds, 3-4 orders of magnitude above
  a plain object allocation (Fig. 3, Fig. 4a);
- serialization multiplies in-enclave RMIs by ~10x and out-of-enclave
  RMIs by ~3x for large payloads (Fig. 4b);
- in-enclave GC is about one order of magnitude slower (Fig. 5a);
- the MEE slows memory-bound enclave code by a single-digit factor, and
  EPC overflow adds a large per-page penalty (§2.1, §6.5, §6.6).

EXPERIMENTS.md records, for every figure and table, the value the paper
reports next to the value this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransitionCosts:
    """Cycle costs of crossing the enclave boundary."""

    #: Hardware EENTER + microcode + TLB flush for an ecall (§2.1).
    ecall_cycles: float = 13_100.0
    #: Hardware EEXIT path for an ocall; slightly worse in practice.
    ocall_cycles: float = 14_200.0
    #: Attaching the calling thread to the target GraalVM isolate and
    #: dispatching through the @CEntryPoint prologue. This dominates the
    #: measured per-RMI latency in the paper (~10^2 us per relay call).
    isolate_attach_cycles: float = 550_000.0
    #: Edge-routine fixed marshalling cost (Edger8r-generated bridge).
    edge_fixed_cycles: float = 1_800.0
    #: Edge-routine per-byte copy across the boundary.
    edge_byte_cycles: float = 0.55
    #: Switchless (worker-thread) call replaces the hardware transition
    #: and isolate attach with a shared-queue hop (future work, §7).
    switchless_call_cycles: float = 9_500.0


@dataclass(frozen=True)
class ArenaCosts:
    """Cycle costs of the zero-copy shared-buffer crossing fast path.

    Arguments staged once into a pinned *untrusted* arena are read by
    the enclave in place (Gramine-style accelerator staging): the
    crossing no longer pays per-call serialization or the edge-routine
    byte copy, only integrity — an AES-GCM tag over the staged region
    (``sgx.arena.mac``) plus the bump-allocate/write of staging itself
    (``sgx.arena.stage``).
    """

    #: Bump allocation, region header and generation stamp per staged
    #: value (pointer arithmetic plus one cache line of bookkeeping).
    stage_fixed_cycles: float = 400.0
    #: Per-byte linear write into the pinned untrusted pages. Streaming
    #: stores to ordinary DRAM — far below the graph-walking serializer.
    stage_byte_cycles: float = 0.30
    #: GCM tag setup (key schedule reuse, IV, final block) per crossing
    #: that carries arena regions.
    mac_fixed_cycles: float = 2_600.0
    #: AES-GCM over the staged bytes: authenticate what the enclave is
    #: about to trust. AES-NI class throughput.
    mac_byte_cycles: float = 0.95


@dataclass(frozen=True)
class OffloadCosts:
    """DMA accelerator offload pricing (the ``repro offload`` ablation).

    Kernels can ship their working set out of the enclave over a priced
    DMA channel and run on an accelerator instead of paying in-enclave
    execution (MEE on every miss, native-image GC on every allocation).
    Calibrated to the PCIe-attached accelerator shapes reported for
    Gramine-style offload: descriptor-ring setup is expensive, steady
    transfer is cheap, and only regular data-parallel kernels map well.
    """

    #: Doorbell + descriptor-ring setup + completion interrupt per DMA.
    dma_setup_cycles: float = 45_000.0
    #: Per-byte PCIe DMA transfer cost (device-driven, host cycles are
    #: mostly the IOMMU walk amortised per page).
    dma_byte_cycles: float = 0.06
    #: Kernel launch + argument marshalling on the accelerator.
    launch_fixed_cycles: float = 150_000.0


@dataclass(frozen=True)
class MemoryCosts:
    """Cycle costs of memory traffic, in and out of the enclave."""

    #: Per-byte cost of cache-missing DRAM traffic outside the enclave.
    dram_byte_cycles: float = 0.11
    #: MEE multiplier applied to enclave DRAM traffic (encrypt/decrypt
    #: of cache lines when crossing the EPC boundary).
    mee_multiplier: float = 8.5
    #: EPC page fault serviced by the SGX kernel driver (EWB/ELDU).
    epc_page_fault_cycles: float = 42_000.0
    #: Plain object allocation (bump pointer + header) on a heap.
    alloc_object_cycles: float = 40.0
    #: Per-byte zeroing/init cost of an allocation.
    alloc_byte_cycles: float = 0.05


@dataclass(frozen=True)
class GcCosts:
    """Serial stop-and-copy collector cost model (GraalVM native image).

    The collector scans the whole heap and copies the live set; inside
    the enclave the copy traffic pays the MEE multiplier, which yields
    the order-of-magnitude gap of Fig. 5a.
    """

    #: Fixed cost of a collection cycle (root scan, bookkeeping).
    cycle_fixed_cycles: float = 55_000.0
    #: Per-live-byte copy cost.
    copy_byte_cycles: float = 0.45
    #: Per-dead-byte scan cost (evacuated space accounting).
    scan_byte_cycles: float = 0.03
    #: MEE multiplier applied to GC copy traffic inside the enclave.
    enclave_multiplier: float = 10.0
    #: Native-image serial GC per-allocated-byte amortised cost, used by
    #: allocation-heavy kernels (explains Monte_Carlo in Table 1).
    ni_alloc_gc_byte_cycles: float = 1.0
    #: HotSpot generational GC equivalent (much cheaper per byte).
    jvm_alloc_gc_byte_cycles: float = 0.07


@dataclass(frozen=True)
class RmiCosts:
    """Montsalvat proxy/relay machinery costs (on top of transitions)."""

    #: Identity-hash computation for a proxy object.
    hash_cycles: float = 450.0
    #: Recording the proxy weak reference for the GC helper (§5.5).
    weakref_track_cycles: float = 900.0
    #: Mirror-proxy registry insert or lookup (§5.2).
    registry_op_cycles: float = 650.0
    #: Fixed serialization cost for a neutral object graph.
    serialize_fixed_cycles: float = 3_800.0
    #: Per-byte serialization cost outside the enclave.
    serialize_byte_cycles: float = 1.2
    #: Per-byte deserialization cost outside the enclave.
    deserialize_byte_cycles: float = 1.0
    #: Multiplier on serialization performed inside the enclave:
    #: walking a scattered object graph is read-heavy and every miss
    #: decrypts through the MEE. Dominates Fig. 4b's ~10x in-enclave
    #: serialization penalty.
    enclave_serialize_multiplier: float = 7.0
    #: Multiplier on deserialization performed inside the enclave:
    #: mostly sequential writes, far kinder to the MEE than the
    #: serialize path (Fig. 4b's ~3x out-of-enclave penalty).
    enclave_deserialize_multiplier: float = 1.3


@dataclass(frozen=True)
class OsCosts:
    """Host OS and libc costs."""

    #: Syscall entry/exit plus kernel work for a small file write/read.
    syscall_cycles: float = 6_200.0
    #: open()/close() pair cost.
    file_open_cycles: float = 11_000.0
    #: mmap() setup cost.
    mmap_cycles: float = 19_000.0
    #: Per-byte cost of buffered file I/O once inside the kernel.
    io_byte_cycles: float = 0.30
    #: SCONE-style intercepted syscall (shielded, asynchronous queues:
    #: no hardware transition, but queue handoff plus file-descriptor
    #: shielding — SCONE transparently encrypts file I/O).
    scone_syscall_cycles: float = 30_000.0


@dataclass(frozen=True)
class JvmCosts:
    """HotSpot-on-SCONE baseline cost model (§6.6).

    The paper attributes the JVM-in-enclave slowdown to (1) class
    loading, bytecode interpretation and dynamic compilation, and
    (2) the larger enclave heap causing more EPC/MEE traffic.
    """

    #: JVM bootstrap before main() runs (in-enclave, amplified).
    startup_cycles: float = 1.05e9
    #: Per-class load/verify/initialise cost.
    class_load_cycles: float = 160_000.0
    #: Number of JDK/runtime classes loaded regardless of the app.
    base_classes: int = 1_450
    #: Multiplier on application CPU work spent in the interpreter or
    #: C1 before reaching peak JIT code (averaged over the run).
    warmup_multiplier: float = 1.55
    #: Multiplier on DRAM *traffic*: object headers and boxing add some
    #: bytes to every access.
    traffic_multiplier: float = 1.3
    #: Multiplier on the resident *working set*: JVM object headers,
    #: metaspace and code cache inflate enclave-resident memory (this
    #: is what pushes JVM-in-enclave working sets past the EPC).
    heap_inflation: float = 2.6


@dataclass(frozen=True)
class CostModel:
    """Aggregated, calibrated cost model. Immutable; copy to re-tune."""

    transitions: TransitionCosts = field(default_factory=TransitionCosts)
    memory: MemoryCosts = field(default_factory=MemoryCosts)
    gc: GcCosts = field(default_factory=GcCosts)
    rmi: RmiCosts = field(default_factory=RmiCosts)
    os: OsCosts = field(default_factory=OsCosts)
    jvm: JvmCosts = field(default_factory=JvmCosts)
    arena: ArenaCosts = field(default_factory=ArenaCosts)
    offload: OffloadCosts = field(default_factory=OffloadCosts)

    def __post_init__(self) -> None:
        if self.memory.mee_multiplier < 1.0:
            raise ConfigurationError("MEE cannot make memory faster")
        if self.gc.enclave_multiplier < 1.0:
            raise ConfigurationError("enclave GC cannot be faster")
        if self.jvm.heap_inflation < 1.0:
            raise ConfigurationError("JVM heaps do not shrink working sets")


#: Default calibration used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()
