"""Serial stop-and-copy garbage collector cost model.

GraalVM native images embed a serial stop-and-copy GC (§6.4): a
collection scans the heap and copies the live set into a fresh space.
Inside the enclave that copy traffic streams through the MEE and EPC,
which the paper measures as roughly one order of magnitude of extra GC
time (Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.context import ExecutionContext


@dataclass
class GcStats:
    """Accumulated collector statistics."""

    collections: int = 0
    live_bytes_copied: int = 0
    dead_bytes_reclaimed: int = 0
    total_ns: float = 0.0


class SerialCopyGc:
    """Prices a stop-and-copy collection for one heap."""

    def __init__(self, ctx: ExecutionContext, name: str = "heap") -> None:
        self.ctx = ctx
        self.name = name
        self.stats = GcStats()

    def collect(self, live_bytes: int, dead_bytes: int) -> float:
        """Charge one full collection; returns virtual ns spent."""
        if live_bytes < 0 or dead_bytes < 0:
            raise ConfigurationError("byte counts cannot be negative")
        costs = self.ctx.platform.cost_model.gc
        cycles = (
            costs.cycle_fixed_cycles
            + live_bytes * costs.copy_byte_cycles
            + dead_bytes * costs.scan_byte_cycles
        )
        if self.ctx.in_enclave:
            cycles *= costs.enclave_multiplier
        location = self.ctx.location.value
        platform = self.ctx.platform
        obs = platform.obs
        if obs is None:
            ns = platform.charge_cycles(f"gc.{location}.{self.name}", cycles)
        else:
            with obs.tracer.span(
                "gc.collect",
                attrs={
                    "heap": self.name,
                    "location": location,
                    "live_bytes": live_bytes,
                    "dead_bytes": dead_bytes,
                },
            ):
                ns = platform.charge_cycles(f"gc.{location}.{self.name}", cycles)
            obs.metrics.counter("gc.collections").inc()
            obs.metrics.counter("gc.bytes_copied").inc(live_bytes)
            obs.metrics.histogram(f"gc.pause_ns.{location}").observe(ns)
        self.stats.collections += 1
        self.stats.live_bytes_copied += live_bytes
        self.stats.dead_bytes_reclaimed += dead_bytes
        self.stats.total_ns += ns
        return ns
