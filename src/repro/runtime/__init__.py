"""Simulated managed runtime: execution contexts, heaps and GC.

This package is the "native image runtime" substrate: the pieces
GraalVM embeds into every generated image (heap, serial stop-and-copy
collector, thread-ish scheduling hooks), plus the execution-context
machinery that converts application resource usage into virtual time
depending on where (host/enclave) and on what (native image/JVM) the
code runs.
"""

from repro.runtime.context import (
    ExecutionContext,
    Location,
    ResourceUsage,
    RuntimeKind,
)
from repro.runtime.gc import GcStats, SerialCopyGc
from repro.runtime.gc_generational import GenerationalGc, GenerationalStats
from repro.runtime.heap import HeapStats, SimHeap, SimRef
from repro.runtime.scheduler import VirtualScheduler
from repro.runtime.tracker import ProxyTracker, TrackedProxy

__all__ = [
    "GenerationalGc",
    "GenerationalStats",
    "VirtualScheduler",
    "ExecutionContext",
    "Location",
    "ResourceUsage",
    "RuntimeKind",
    "SerialCopyGc",
    "GcStats",
    "SimHeap",
    "SimRef",
    "HeapStats",
    "ProxyTracker",
    "TrackedProxy",
]
