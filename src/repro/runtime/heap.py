"""Simulated per-isolate heap with bump allocation and live-set tracking.

Each GraalVM isolate operates on its own heap (§2.2); Montsalvat's
partitioned applications therefore have one heap inside the enclave and
one outside. The heap tracks live and dead bytes so the serial
stop-and-copy collector can price a collection, and reports its
resident size to the EPC model when it lives inside an enclave.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import HeapError
from repro.runtime.context import ExecutionContext
from repro.runtime.gc import GcStats, SerialCopyGc


@dataclass(frozen=True)
class SimRef:
    """Handle to a simulated allocation."""

    ref_id: int
    nbytes: int


@dataclass
class HeapStats:
    """Point-in-time heap statistics."""

    live_bytes: int = 0
    dead_bytes: int = 0
    allocated_bytes_total: int = 0
    allocations_total: int = 0
    collections: int = 0

    @property
    def used_bytes(self) -> int:
        return self.live_bytes + self.dead_bytes


class SimHeap:
    """Bump-allocated heap collected by a serial stop-and-copy GC."""

    def __init__(
        self,
        ctx: ExecutionContext,
        max_bytes: int,
        gc_threshold: float = 0.75,
        name: str = "heap",
    ) -> None:
        if max_bytes <= 0:
            raise HeapError("heap size must be positive")
        if not 0.0 < gc_threshold <= 1.0:
            raise HeapError("gc_threshold must be in (0, 1]")
        self.ctx = ctx
        self.name = name
        self.max_bytes = max_bytes
        self.gc_threshold = gc_threshold
        self.gc = SerialCopyGc(ctx, name=name)
        self._stats = HeapStats()
        self._live: Dict[int, int] = {}
        self._ids = itertools.count(1)

    # -- allocation ----------------------------------------------------------

    def alloc(self, nbytes: int) -> SimRef:
        """Allocate ``nbytes``; may trigger a collection first."""
        if nbytes <= 0:
            raise HeapError(f"allocation size must be positive, got {nbytes}")
        if self._stats.used_bytes + nbytes > self.max_bytes * self.gc_threshold:
            self.collect()
        if self._stats.live_bytes + nbytes > self.max_bytes:
            raise HeapError(
                f"heap {self.name!r} exhausted: live={self._stats.live_bytes} "
                f"+ {nbytes} > max={self.max_bytes}"
            )
        self.ctx.allocate(nbytes, count=1)
        ref = SimRef(next(self._ids), nbytes)
        self._live[ref.ref_id] = nbytes
        self._stats.live_bytes += nbytes
        self._stats.allocated_bytes_total += nbytes
        self._stats.allocations_total += 1
        self._update_gauges()
        return ref

    def free(self, ref: SimRef) -> None:
        """Mark an allocation dead (it is reclaimed at the next GC)."""
        nbytes = self._live.pop(ref.ref_id, None)
        if nbytes is None:
            raise HeapError(f"double free or foreign ref: {ref}")
        self._stats.live_bytes -= nbytes
        self._stats.dead_bytes += nbytes
        self._update_gauges()

    # -- collection ----------------------------------------------------------

    def collect(self) -> float:
        """Run a full stop-and-copy collection; returns virtual ns spent."""
        ns = self.gc.collect(
            live_bytes=self._stats.live_bytes, dead_bytes=self._stats.dead_bytes
        )
        self._stats.dead_bytes = 0
        self._stats.collections += 1
        self._update_gauges()
        return ns

    def _update_gauges(self) -> None:
        """Sample occupancy into the metrics registry (watermarks track
        peak/trough automatically); zero-cost when observability is off."""
        obs = self.ctx.platform.obs
        if obs is None:
            return
        obs.metrics.gauge(f"heap.{self.name}.live_bytes").set(
            self._stats.live_bytes
        )
        obs.metrics.gauge(f"heap.{self.name}.used_bytes").set(
            self._stats.used_bytes
        )

    # -- introspection ---------------------------------------------------------

    @property
    def stats(self) -> HeapStats:
        return self._stats

    @property
    def gc_stats(self) -> GcStats:
        return self.gc.stats

    def resident_bytes(self) -> int:
        """Bytes the OS/EPC sees as resident for this heap."""
        return self._stats.used_bytes

    def __repr__(self) -> str:
        return (
            f"SimHeap({self.name!r}, live={self._stats.live_bytes}, "
            f"dead={self._stats.dead_bytes}, max={self.max_bytes})"
        )
