"""Cooperative virtual-time scheduler.

The paper spawns two GC helper *threads* that wake every second (§5.5).
Real threads and a virtual clock do not mix, so the simulation uses a
cooperative scheduler: periodic tasks are registered with a virtual
period, and the application (or the session) pumps the scheduler, which
fires every task whose deadline has passed — in deadline order, the way
a timer wheel would.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.costs.platform import Platform
from repro.errors import ConfigurationError


@dataclass(order=True)
class _ScheduledTask:
    deadline_s: float
    sequence: int
    name: str = field(compare=False)
    period_s: float = field(compare=False)
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    fired: int = field(compare=False, default=0)


class VirtualScheduler:
    """Deadline-ordered periodic tasks over a platform's virtual clock."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._heap: List[_ScheduledTask] = []
        self._sequence = itertools.count()

    def every(
        self, period_s: float, action: Callable[[], None], name: str = "task"
    ) -> _ScheduledTask:
        """Register a periodic task; first firing one period from now."""
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        task = _ScheduledTask(
            deadline_s=self.platform.now_s + period_s,
            sequence=next(self._sequence),
            name=name,
            period_s=period_s,
            action=action,
        )
        heapq.heappush(self._heap, task)
        return task

    def cancel(self, task: _ScheduledTask) -> None:
        task.cancelled = True

    def pump(self) -> int:
        """Fire every task whose deadline has passed; returns firings.

        Call this at convenient points (the session does it around
        transitions); each fired periodic task is re-armed one period
        after its previous deadline, so firing cadence stays regular
        even when pumps are irregular.
        """
        fired = 0
        now = self.platform.now_s
        while self._heap and self._heap[0].deadline_s <= now:
            task = heapq.heappop(self._heap)
            if task.cancelled:
                continue
            task.action()
            task.fired += 1
            fired += 1
            # Catch up without storms: next deadline is in the future.
            next_deadline = task.deadline_s + task.period_s
            if next_deadline <= now:
                periods_behind = int((now - task.deadline_s) / task.period_s)
                next_deadline = task.deadline_s + (periods_behind + 1) * task.period_s
            task.deadline_s = next_deadline
            heapq.heappush(self._heap, task)
        return fired

    def advance_to(self, target_s: float) -> int:
        """Idle-advance virtual time to ``target_s``, pumping on the way."""
        if target_s < self.platform.now_s:
            raise ConfigurationError("cannot advance into the past")
        fired = 0
        while self._heap:
            next_deadline = self._next_live_deadline()
            if next_deadline is None or next_deadline > target_s:
                break
            self.platform.charge_ns(
                "scheduler.idle", max(0.0, (next_deadline - self.platform.now_s)) * 1e9
            )
            fired += self.pump()
        if self.platform.now_s < target_s:
            self.platform.charge_ns(
                "scheduler.idle", (target_s - self.platform.now_s) * 1e9
            )
        return fired

    def pending(self) -> int:
        return sum(1 for task in self._heap if not task.cancelled)

    def _next_live_deadline(self) -> Optional[float]:
        for task in sorted(self._heap):
            if not task.cancelled:
                return task.deadline_s
        return None
