"""Generational garbage collector cost model (HotSpot-class).

The paper explains Monte_Carlo's Table-1 inversion by citing [28]: the
native image's serial stop-and-copy collector performs poorly next to
HotSpot's generational collectors on allocation-heavy workloads. This
module models the generational side: a nursery absorbing short-lived
garbage cheaply, with survivors promoted to an old generation collected
rarely — so the per-allocated-byte amortised cost stays far below the
serial collector's.

Used by the ablation suite to compare collectors directly and by tests
pinning the JVM/NI GC gap the cost model encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, HeapError
from repro.runtime.context import ExecutionContext


@dataclass
class GenerationalStats:
    """Accumulated collector behaviour."""

    minor_collections: int = 0
    major_collections: int = 0
    bytes_allocated: int = 0
    bytes_promoted: int = 0
    total_ns: float = 0.0


class GenerationalGc:
    """Two-generation collector with survival-rate-driven promotion."""

    def __init__(
        self,
        ctx: ExecutionContext,
        nursery_bytes: int = 16 * 1024 * 1024,
        old_max_bytes: int = 1 << 31,
        survival_rate: float = 0.06,
        name: str = "gen-heap",
    ) -> None:
        if nursery_bytes <= 0 or old_max_bytes <= 0:
            raise ConfigurationError("generation sizes must be positive")
        if not 0.0 <= survival_rate <= 1.0:
            raise ConfigurationError("survival rate must be within [0, 1]")
        self.ctx = ctx
        self.name = name
        self.nursery_bytes = nursery_bytes
        self.old_max_bytes = old_max_bytes
        self.survival_rate = survival_rate
        self.stats = GenerationalStats()
        self._nursery_used = 0
        self._old_used = 0

    # -- allocation ---------------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """Bump-allocate in the nursery; minor GCs happen as it fills."""
        if nbytes <= 0:
            raise HeapError("allocation size must be positive")
        self.stats.bytes_allocated += nbytes
        remaining = nbytes
        while self._nursery_used + remaining > self.nursery_bytes:
            room = self.nursery_bytes - self._nursery_used
            remaining -= room
            self._nursery_used = self.nursery_bytes
            self.minor_collect()
        self._nursery_used += remaining

    # -- collections ----------------------------------------------------------

    def minor_collect(self) -> float:
        """Scavenge the nursery: copy survivors, reset the space.

        Cost scales with *survivors*, not with garbage — the property
        that makes generational collection cheap for churny workloads.
        """
        costs = self.ctx.platform.cost_model.gc
        survivors = int(self._nursery_used * self.survival_rate)
        cycles = costs.cycle_fixed_cycles + survivors * costs.copy_byte_cycles
        if self.ctx.in_enclave:
            cycles *= costs.enclave_multiplier
        ns = self._charge_collection("minor", cycles, survivors)
        self._nursery_used = 0
        self._old_used += survivors
        self.stats.minor_collections += 1
        self.stats.bytes_promoted += survivors
        self.stats.total_ns += ns
        if self._old_used > self.old_max_bytes * 0.8:
            ns += self.major_collect()
        return ns

    def major_collect(self, live_fraction: float = 0.5) -> float:
        """Full collection of the old generation."""
        if not 0.0 <= live_fraction <= 1.0:
            raise ConfigurationError("live fraction must be within [0, 1]")
        costs = self.ctx.platform.cost_model.gc
        live = int(self._old_used * live_fraction)
        cycles = (
            costs.cycle_fixed_cycles * 4
            + live * costs.copy_byte_cycles
            + self._old_used * costs.scan_byte_cycles
        )
        if self.ctx.in_enclave:
            cycles *= costs.enclave_multiplier
        ns = self._charge_collection("major", cycles, live)
        self._old_used = live
        self.stats.major_collections += 1
        self.stats.total_ns += ns
        return ns

    def _charge_collection(self, phase: str, cycles: float, copied_bytes: int) -> float:
        """Charge one collection phase, wrapped in a ``gc.<phase>`` span."""
        location = self.ctx.location.value
        platform = self.ctx.platform
        category = f"gc.{phase}.{location}.{self.name}"
        obs = platform.obs
        if obs is None:
            return platform.charge_cycles(category, cycles)
        with obs.tracer.span(
            f"gc.{phase}",
            attrs={"heap": self.name, "location": location, "copied_bytes": copied_bytes},
        ):
            ns = platform.charge_cycles(category, cycles)
        obs.metrics.counter(f"gc.{phase}_collections").inc()
        obs.metrics.histogram(f"gc.pause_ns.{location}").observe(ns)
        return ns

    # -- introspection ---------------------------------------------------------

    @property
    def nursery_used(self) -> int:
        return self._nursery_used

    @property
    def old_used(self) -> int:
        return self._old_used
