"""Proxy weak-reference tracker backing the GC helper (§5.5).

When a proxy object is created, Montsalvat stores a *weak* reference to
it together with its hash in a global list. The GC helper thread
periodically scans the list: a cleared referent means the proxy has
been (or is about to be) collected, so the corresponding mirror can be
released in the opposite runtime.

This module uses genuine Python weak references, so the consistency
mechanics are real, not simulated.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple


@dataclass
class TrackedProxy:
    """One entry of the proxy weak-reference list."""

    ref: "weakref.ReferenceType[Any]"
    proxy_hash: int

    def is_dead(self) -> bool:
        return self.ref() is None


class ProxyTracker:
    """Weak-reference list for one runtime's proxies."""

    def __init__(self, name: str = "tracker") -> None:
        self.name = name
        self._entries: List[TrackedProxy] = []

    def track(self, proxy: Any, proxy_hash: int) -> TrackedProxy:
        """Register a live proxy. The tracker never keeps it alive."""
        entry = TrackedProxy(weakref.ref(proxy), proxy_hash)
        self._entries.append(entry)
        return entry

    def scan(self, on_dead: Optional[Callable[[int], None]] = None) -> Tuple[int, ...]:
        """Sweep the list; report and drop entries whose referent died.

        ``on_dead`` is invoked with each dead proxy's hash — in
        Montsalvat this is the cross-runtime release of the mirror.
        Returns the tuple of dead hashes found by this scan.
        """
        dead: List[int] = []
        survivors: List[TrackedProxy] = []
        for entry in self._entries:
            if entry.is_dead():
                dead.append(entry.proxy_hash)
            else:
                survivors.append(entry)
        self._entries = survivors
        if on_dead is not None:
            for proxy_hash in dead:
                on_dead(proxy_hash)
        return tuple(dead)

    def live_count(self) -> int:
        """Number of entries whose referent is still alive."""
        return sum(1 for entry in self._entries if not entry.is_dead())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ProxyTracker({self.name!r}, entries={len(self._entries)})"
