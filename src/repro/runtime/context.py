"""Execution contexts: where and on what the code runs.

An :class:`ExecutionContext` binds a location (host or enclave) and a
runtime kind (native image or JVM) to a platform. Applications express
work as resource usage — CPU cycles, cache-missing memory traffic,
allocations, syscalls — and the context converts it into virtual time:

- enclave memory traffic pays the MEE multiplier;
- enclave working sets larger than the usable EPC pay paging faults;
- enclave syscalls are relayed as ocalls through the shim (§5.4);
- the JVM kind inflates CPU (interpretation warm-up) and working sets
  (heap inflation), which drives the SCONE+JVM baselines of §6.6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.costs.platform import Platform
from repro.errors import ConfigurationError


class Location(enum.Enum):
    """Which side of the enclave boundary code executes on."""

    HOST = "host"
    ENCLAVE = "enclave"


class RuntimeKind(enum.Enum):
    """Which managed runtime executes the code."""

    NATIVE_IMAGE = "native-image"
    JVM = "jvm"


@dataclass(frozen=True)
class ResourceUsage:
    """Abstract footprint of a unit of application work.

    ``mem_bytes`` is cache-missing DRAM traffic (the part the MEE sees);
    ``ws_bytes`` is the resident working set used by the EPC paging
    model; allocations feed the GC cost model.
    """

    cpu_cycles: float = 0.0
    mem_bytes: float = 0.0
    ws_bytes: float = 0.0
    alloc_objects: int = 0
    alloc_bytes: float = 0.0

    def scaled(self, factor: float) -> "ResourceUsage":
        """Usage multiplied by ``factor`` (for repeating an operation)."""
        return ResourceUsage(
            cpu_cycles=self.cpu_cycles * factor,
            mem_bytes=self.mem_bytes * factor,
            ws_bytes=self.ws_bytes,
            alloc_objects=int(self.alloc_objects * factor),
            alloc_bytes=self.alloc_bytes * factor,
        )


class ExecutionContext:
    """Charges application work to a platform, location-aware."""

    def __init__(
        self,
        platform: Platform,
        location: Location,
        runtime: RuntimeKind = RuntimeKind.NATIVE_IMAGE,
        label: str = "app",
    ) -> None:
        self.platform = platform
        self.location = location
        self.runtime = runtime
        self.label = label

    # -- derived properties -------------------------------------------------

    @property
    def in_enclave(self) -> bool:
        return self.location is Location.ENCLAVE

    def _mem_byte_cycles(self) -> float:
        mem = self.platform.cost_model.memory
        if self.in_enclave:
            return mem.dram_byte_cycles * mem.mee_multiplier
        return mem.dram_byte_cycles

    def _category(self, leaf: str) -> str:
        return f"{leaf}.{self.location.value}.{self.label}"

    # -- work charging ------------------------------------------------------

    def execute(self, usage: ResourceUsage) -> float:
        """Charge a resource-usage bundle; returns virtual ns spent."""
        ns = 0.0
        if usage.cpu_cycles:
            ns += self.compute(usage.cpu_cycles, mem_bytes=0.0)
        if usage.mem_bytes:
            ns += self.memory_traffic(usage.mem_bytes, ws_bytes=usage.ws_bytes)
        if usage.alloc_bytes or usage.alloc_objects:
            ns += self.allocate(usage.alloc_bytes, count=max(1, usage.alloc_objects))
        return ns

    def compute(self, cpu_cycles: float, mem_bytes: float = 0.0, ws_bytes: float = 0.0) -> float:
        """Pure CPU work plus optional memory traffic."""
        if cpu_cycles < 0:
            raise ConfigurationError("negative cpu cycles")
        cycles = cpu_cycles
        if self.runtime is RuntimeKind.JVM:
            cycles *= self.platform.cost_model.jvm.warmup_multiplier
        ns = self.platform.charge_cycles(self._category("compute"), cycles)
        if mem_bytes:
            ns += self.memory_traffic(mem_bytes, ws_bytes=ws_bytes)
        return ns

    def memory_traffic(self, mem_bytes: float, ws_bytes: float = 0.0) -> float:
        """Cache-missing DRAM traffic, MEE- and paging-aware."""
        if mem_bytes < 0:
            raise ConfigurationError("negative memory traffic")
        if self.runtime is RuntimeKind.JVM:
            mem_bytes *= self.platform.cost_model.jvm.traffic_multiplier
            ws_bytes *= self.platform.cost_model.jvm.heap_inflation
        ns = self.platform.charge_cycles(
            self._category("memory"), mem_bytes * self._mem_byte_cycles()
        )
        if self.in_enclave and ws_bytes:
            ns += self._paging(mem_bytes, ws_bytes)
        return ns

    def _paging(self, mem_bytes: float, ws_bytes: float) -> float:
        """EPC paging penalty for working sets that overflow the EPC."""
        epc = self.platform.spec.epc_usable_bytes
        if ws_bytes <= epc:
            return 0.0
        miss_fraction = 1.0 - epc / ws_bytes
        faults = (mem_bytes / self.platform.spec.page_bytes) * miss_fraction
        cycles = faults * self.platform.cost_model.memory.epc_page_fault_cycles
        return self.platform.charge_cycles(self._category("epc.paging"), cycles)

    def allocate(self, nbytes: float, count: int = 1) -> float:
        """Heap allocation cost (bump pointer + init traffic)."""
        if nbytes < 0 or count < 0:
            raise ConfigurationError("negative allocation")
        mem = self.platform.cost_model.memory
        cycles = count * mem.alloc_object_cycles + nbytes * mem.alloc_byte_cycles
        ns = self.platform.charge_cycles(self._category("alloc"), cycles)
        if self.in_enclave:
            # Initialising enclave memory streams through the MEE.
            ns += self.platform.charge_cycles(
                self._category("alloc.mee"),
                nbytes * mem.dram_byte_cycles * (mem.mee_multiplier - 1.0),
            )
        return ns

    # -- OS interaction -----------------------------------------------------

    def syscall(self, payload_bytes: float = 0.0, count: int = 1, name: str = "syscall") -> float:
        """A host syscall; relayed through an ocall when in the enclave.

        This is the §5.4 shim path: in-enclave libc calls become ocalls
        to the shim helper, which invokes the real libc outside.
        """
        cm = self.platform.cost_model
        ns = 0.0
        if self.in_enclave:
            trans = cm.transitions
            per_call = (
                trans.ocall_cycles
                + trans.edge_fixed_cycles
                + payload_bytes * trans.edge_byte_cycles
            )
            ns += self.platform.charge_cycles(
                f"transition.ocall.shim.{name}", per_call * count
            )
        ns += self.platform.charge_cycles(
            self._category(f"os.{name}"),
            (cm.os.syscall_cycles + payload_bytes * cm.os.io_byte_cycles) * count,
        )
        return ns

    def file_open(self) -> float:
        """open()+close() pair, shim-relayed in the enclave."""
        ns = self.syscall(name="open")
        ns += self.platform.charge_cycles(
            self._category("os.open.kernel"),
            self.platform.cost_model.os.file_open_cycles,
        )
        return ns

    def mmap(self) -> float:
        """mmap() setup, shim-relayed in the enclave."""
        ns = self.syscall(name="mmap")
        ns += self.platform.charge_cycles(
            self._category("os.mmap.kernel"), self.platform.cost_model.os.mmap_cycles
        )
        return ns

    # -- helpers ------------------------------------------------------------

    def sibling(self, location: Location, label: str = "") -> "ExecutionContext":
        """Same platform/runtime, different location."""
        return ExecutionContext(
            self.platform, location, runtime=self.runtime, label=label or self.label
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionContext({self.location.value}, {self.runtime.value}, "
            f"label={self.label!r})"
        )
