"""Mirror-proxy registry (§5.2).

Each runtime keeps a registry mapping proxy hashes to the strong
references of their local mirror objects. Relay methods of constructors
add entries; relay methods of instance methods look entries up; the GC
helper removes entries when the opposite runtime's proxy dies, making
the mirror eligible for collection.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.errors import RegistryError


class MirrorProxyRegistry:
    """Hash -> mirror strong references for one runtime."""

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._mirrors: Dict[int, Any] = {}
        self.adds = 0
        self.removes = 0
        self.lookups = 0

    def add(self, proxy_hash: int, mirror: Any) -> None:
        """Register a freshly created mirror under its proxy's hash."""
        if proxy_hash in self._mirrors:
            raise RegistryError(
                f"hash collision in {self.name!r}: {proxy_hash} already maps "
                f"to a {type(self._mirrors[proxy_hash]).__name__}"
            )
        self._mirrors[proxy_hash] = mirror
        self.adds += 1

    def get(self, proxy_hash: int) -> Any:
        """Look up the mirror for an incoming relay invocation."""
        self.lookups += 1
        try:
            return self._mirrors[proxy_hash]
        except KeyError:
            raise RegistryError(
                f"no mirror registered in {self.name!r} for hash {proxy_hash} "
                "(released by the GC helper, or never created)"
            ) from None

    def contains(self, proxy_hash: int) -> bool:
        return proxy_hash in self._mirrors

    def remove(self, proxy_hash: int) -> Any:
        """Release a mirror (GC-helper path); returns the mirror."""
        try:
            mirror = self._mirrors.pop(proxy_hash)
        except KeyError:
            raise RegistryError(
                f"cannot release unknown hash {proxy_hash} from {self.name!r}"
            ) from None
        self.removes += 1
        return mirror

    def discard(self, proxy_hash: int) -> bool:
        """Remove if present; returns whether an entry was removed.

        The GC helper uses this: a release can race with an explicit
        shutdown that already cleared the registry.
        """
        if proxy_hash in self._mirrors:
            self._mirrors.pop(proxy_hash)
            self.removes += 1
            return True
        return False

    def hash_of(self, mirror: Any) -> Tuple[bool, int]:
        """Reverse lookup: (found, hash) for a mirror object."""
        for proxy_hash, candidate in self._mirrors.items():
            if candidate is mirror:
                return True, proxy_hash
        return False, 0

    def items(self) -> Tuple[Tuple[int, Any], ...]:
        """Snapshot of (hash, mirror) pairs — checkpoint capture."""
        return tuple(self._mirrors.items())

    def live_count(self) -> int:
        return len(self._mirrors)

    def clear(self) -> None:
        self._mirrors.clear()

    def __len__(self) -> int:
        return len(self._mirrors)

    def __repr__(self) -> str:
        return f"MirrorProxyRegistry({self.name!r}, mirrors={len(self._mirrors)})"
