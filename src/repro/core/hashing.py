"""Proxy/mirror hash strategies (§5.2).

Each proxy object stores a hash identifying its mirror in the opposite
runtime. The prototype uses Java identity hash codes; the paper notes a
cryptographic hash like MD5 should be used to minimise collisions. Both
strategies are provided; the registry treats collisions as errors, and
tests exercise the collision behaviour explicitly.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator

from repro.errors import ConfigurationError


class HashStrategy:
    """Produces the cross-runtime identity hash for a new proxy."""

    #: Cycles one hash computation costs (charged per proxy creation).
    cost_cycles: float = 450.0

    def next_hash(self, class_name: str) -> int:
        raise NotImplementedError


class IdentityHashStrategy(HashStrategy):
    """Java identity-hash analog.

    Identity hashes are small, cheap and *can collide*; the optional
    ``modulus`` shrinks the space to make collisions reproducible in
    tests (the paper's motivation for recommending MD5).
    """

    def __init__(self, modulus: int = 2**31) -> None:
        if modulus <= 0:
            raise ConfigurationError("modulus must be positive")
        self._modulus = modulus
        self._counter: Iterator[int] = itertools.count(1)
        # Knuth multiplicative scatter, like identity hashes look.
        self._scatter = 2654435761

    def next_hash(self, class_name: str) -> int:
        raw = next(self._counter) * self._scatter
        return (raw ^ hash(class_name)) % self._modulus


class Md5HashStrategy(HashStrategy):
    """MD5-based hashes over (class name, sequence number, salt)."""

    #: A cryptographic digest costs noticeably more than an identity hash.
    cost_cycles: float = 1_400.0

    def __init__(self, salt: bytes = b"montsalvat") -> None:
        self._salt = salt
        self._counter: Iterator[int] = itertools.count(1)

    def next_hash(self, class_name: str) -> int:
        digest = hashlib.md5(
            self._salt + class_name.encode("utf-8") + str(next(self._counter)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")
