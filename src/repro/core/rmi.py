"""RMI-like cross-runtime object communication (§5.2, §5.3).

The :class:`RmiRuntime` is the live machinery behind the generated
proxy and relay methods:

- instantiating an annotated class from its home side constructs a
  concrete object on that side's heap;
- instantiating it from the opposite side creates a proxy, performs the
  enclave transition, constructs the *mirror* in the opposite runtime,
  and registers it in the mirror-proxy registry under the proxy's hash;
- invoking a proxy method serializes neutral arguments, passes hashes
  for annotated arguments, crosses the boundary, dispatches through the
  relay to the mirror, and returns the encoded result.

Argument/return encoding follows §5.2 exactly: primitives travel
directly; proxy parameters travel as their hash and are resolved to the
mirror; concrete annotated parameters are registered and travel as a
hash the opposite side wraps in a proxy; everything else is treated as
a neutral object and serialized.
"""

from __future__ import annotations

import itertools
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.annotations import Side, side_for, trust_of
from repro.core.hashing import HashStrategy, IdentityHashStrategy
from repro.core.proxy import (
    HASH_ATTR,
    SIDE_ATTR,
    construct_proxy,
    is_proxy,
    proxy_hash,
)
from repro.core.registry import MirrorProxyRegistry
from repro.core.secure import SecureValue, secure_payload_cycles
from repro.core.serialization import SerializationCodec
from repro.core import wire
from repro.errors import RmiError, SerializationError
from repro.graal.isolate import Isolate
from repro.graal.jtypes import TrustLevel
from repro.runtime.context import ExecutionContext, Location
from repro.runtime.tracker import ProxyTracker
from repro.sgx.enclave import EnclaveState
from repro.sgx.transitions import TransitionLayer

#: Default simulated footprint of an annotated-class instance.
DEFAULT_OBJECT_BYTES = 64

#: Class attribute overriding the simulated instance footprint.
SIZE_ATTRIBUTE = "__montsalvat_size__"

#: Same literal as :data:`repro.faults.retry.IDEMPOTENT_ATTR` — kept as
#: a local constant so the core runtime does not import the fault
#: package it is being tested against.
_IDEMPOTENT_ATTR = "__montsalvat_idempotent__"

_PRIMITIVES = (bool, int, float, type(None))


@dataclass
class SideState:
    """Everything one runtime (one image) owns."""

    side: Side
    ctx: ExecutionContext
    isolate: Isolate
    registry: MirrorProxyRegistry
    tracker: ProxyTracker
    proxy_cache: Dict[int, "weakref.ReferenceType[Any]"] = field(default_factory=dict)
    #: id(mirror) -> hash, for re-encoding local concretes as back-refs.
    mirror_hashes: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(cls, side: Side, ctx: ExecutionContext, isolate: Isolate) -> "SideState":
        return cls(
            side=side,
            ctx=ctx,
            isolate=isolate,
            registry=MirrorProxyRegistry(name=f"registry.{side.value}"),
            tracker=ProxyTracker(name=f"tracker.{side.value}"),
        )


class RmiRuntime:
    """Two-sided partitioned runtime."""

    def __init__(
        self,
        untrusted: SideState,
        trusted: SideState,
        transitions: Optional[TransitionLayer],
        codec: SerializationCodec,
        hash_strategy: Optional[HashStrategy] = None,
    ) -> None:
        self._states = {Side.UNTRUSTED: untrusted, Side.TRUSTED: trusted}
        self.transitions = transitions
        self.codec = codec
        self.hash_strategy = hash_strategy or IdentityHashStrategy()
        self.current_side = Side.UNTRUSTED
        self.platform = untrusted.ctx.platform
        #: Optional :class:`~repro.faults.RecoveryCoordinator`; when set
        #: every crossing runs through its retry loop.
        self.recovery: Optional[Any] = None
        #: Optional :class:`~repro.batching.CallCoalescer`; when set,
        #: eligible proxy invocations are queued and flushed as one
        #: batch crossing, and every other crossing drains the queue
        #: first (ordering barrier). Zero-cost when None.
        self.batcher: Optional[Any] = None
        #: Optional :class:`~repro.core.arena.SharedBufferArena`; when
        #: set, batchable crossings stage neutral arguments into it and
        #: cross zero-copy (``sgx.arena.mac`` instead of per-call
        #: serialization). Zero-cost when None: the arena-off ledger is
        #: byte-identical.
        self.arena: Optional[Any] = None
        self._invocation_ids = itertools.count(1)

    # -- wiring ---------------------------------------------------------------

    def state_of(self, side: Side) -> SideState:
        """The side's active state (hook for multi-isolate runtimes)."""
        return self._states[side]

    def mirror_state(self, side: Side, remote_hash: int) -> SideState:
        """The state holding ``remote_hash``'s mirror on ``side``.

        The default two-state runtime has one registry per side; the
        multi-isolate extension overrides this to route by hash.
        """
        return self.state_of(side)

    def context_of(self, side: Side) -> ExecutionContext:
        return self.state_of(side).ctx

    @contextmanager
    def on_side(self, side: Side):
        """Execute a block as if running on ``side``."""
        previous = self.current_side
        self.current_side = side
        try:
            yield self.state_of(side)
        finally:
            self.current_side = previous

    # -- instantiation (PartitionMeta hook) -------------------------------------

    def instantiate(self, cls: type, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        trust = trust_of(cls)
        if trust is TrustLevel.NEUTRAL:
            return self._construct_concrete(cls, args, kwargs)
        home = side_for(trust)
        if self.current_side is home:
            return self._construct_concrete(cls, args, kwargs)
        return self._create_remote(cls, home, args, kwargs)

    def _construct_concrete(
        self, cls: type, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        state = self.state_of(self.current_side)
        size = getattr(cls, SIZE_ATTRIBUTE, DEFAULT_OBJECT_BYTES)
        state.ctx.allocate(size, count=1)
        obj = object.__new__(cls)
        obj.__init__(*args, **kwargs)
        return obj

    def _create_remote(
        self, cls: type, home: Side, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        if self.batcher is not None:
            self.batcher.barrier("proxy-construction")
        obs = self.platform.obs
        if obs is None:
            return self._create_remote_impl(cls, home, args, kwargs)
        with obs.tracer.span(
            "rmi.new",
            attrs={"class": cls.__name__, "home": home.value},
        ):
            proxy = self._create_remote_impl(cls, home, args, kwargs)
        obs.metrics.counter("rmi.proxies_created").inc()
        return proxy

    def _create_remote_impl(
        self, cls: type, home: Side, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        caller = self.current_side
        rmi_costs = self.platform.cost_model.rmi
        self.platform.charge_cycles(
            "rmi.hash", getattr(self.hash_strategy, "cost_cycles", rmi_costs.hash_cycles)
        )
        remote_hash = self.hash_strategy.next_hash(cls.__name__)

        encoded_args, encoded_kwargs, payload = self._encode_call(args, kwargs, caller)

        def relay_constructor() -> None:
            with self.on_side(home) as target_state:
                decoded_args, decoded_kwargs = self._decode_call(
                    encoded_args, encoded_kwargs, home
                )
                mirror = self._construct_concrete(cls, decoded_args, decoded_kwargs)
                self.platform.charge_cycles(
                    "rmi.registry", rmi_costs.registry_op_cycles
                )
                target_state.registry.add(remote_hash, mirror)
                target_state.mirror_hashes[id(mirror)] = remote_hash

        self._cross(caller, home, f"relay_{cls.__name__}_init", relay_constructor, payload)

        proxy = construct_proxy(cls, self, home, remote_hash)
        self.platform.charge_cycles("rmi.weakref", rmi_costs.weakref_track_cycles)
        caller_state = self.state_of(caller)
        caller_state.tracker.track(proxy, remote_hash)
        caller_state.proxy_cache[remote_hash] = weakref.ref(proxy)
        return proxy

    # -- invocation (proxy hook) -------------------------------------------------

    def invoke(
        self, proxy: Any, method_name: str, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        target: Side = getattr(proxy, SIDE_ATTR)
        remote_hash: int = getattr(proxy, HASH_ATTR)
        caller = self.current_side
        batcher = self.batcher

        if caller is target:
            # The proxy crossed back to its mirror's own side; dispatch
            # locally without a transition — but queued calls targeting
            # this mirror's side must land first (program order).
            if batcher is not None:
                batcher.barrier("local-dispatch")
            mirror = self.mirror_state(target, remote_hash).registry.get(remote_hash)
            return getattr(mirror, method_name)(*args, **kwargs)

        class_name = type(proxy).__name__.replace("Proxy", "")
        idempotent = self._idempotent_hint(type(proxy), method_name)
        if batcher is not None:
            if batcher.offer(
                proxy, class_name, method_name, args, kwargs, caller, target,
                idempotent,
            ):
                return None
            # Ineligible: a data-dependent crossing. Drain the queue so
            # its effects are visible to this call, then fall through.
            batcher.barrier("data-dependent")
        obs = self.platform.obs
        if obs is None:
            return self._invoke_remote(
                class_name,
                method_name,
                args,
                kwargs,
                caller,
                target,
                remote_hash,
                None,
                idempotent,
            )
        with obs.tracer.span(
            "rmi.invoke",
            attrs={
                "class": class_name,
                "method": method_name,
                "caller": caller.value,
                "target": target.value,
            },
        ) as span:
            result = self._invoke_remote(
                class_name,
                method_name,
                args,
                kwargs,
                caller,
                target,
                remote_hash,
                span,
                idempotent,
            )
        obs.metrics.counter("rmi.invocations").inc()
        obs.metrics.histogram("rmi.invoke_ns").observe(span.duration_ns)
        return result

    def _idempotent_hint(self, proxy_cls: type, method_name: str) -> bool:
        """Whether the target method is declared replay-safe."""
        if self.recovery is None:
            return False
        func = getattr(_concrete_class(proxy_cls), method_name, None)
        return bool(getattr(func, _IDEMPOTENT_ATTR, False))

    def _invoke_remote(
        self,
        class_name: str,
        method_name: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        caller: Side,
        target: Side,
        remote_hash: int,
        span: Optional[Any],
        idempotent: bool = False,
    ) -> Any:
        encoded_args, encoded_kwargs, payload = self._encode_call(args, kwargs, caller)
        if span is not None:
            span.set_attr("payload_bytes", payload)

        relay_method = self.relay_body(
            target, remote_hash, method_name, encoded_args, encoded_kwargs
        )
        encoded_result = self._cross(
            caller,
            target,
            f"relay_{class_name}_{method_name}",
            relay_method,
            payload,
            idempotent=idempotent,
        )
        return self._decode_value(encoded_result, caller)

    def relay_body(
        self,
        target: Side,
        remote_hash: int,
        method_name: str,
        encoded_args: Tuple[Any, ...],
        encoded_kwargs: Dict[str, Any],
    ):
        """The target-side half of one invocation: registry lookup,
        decode, dispatch on the mirror, encode the result.

        Shared by the unbatched path and the call coalescer — a batch
        crossing runs N of these bodies inside a single transition, so
        per-call dispatch work is priced identically either way.
        """
        rmi_costs = self.platform.cost_model.rmi

        def relay_method() -> Any:
            with self.on_side(target):
                self.platform.charge_cycles(
                    "rmi.registry", rmi_costs.registry_op_cycles
                )
                mirror = self.mirror_state(target, remote_hash).registry.get(
                    remote_hash
                )
                decoded_args, decoded_kwargs = self._decode_call(
                    encoded_args, encoded_kwargs, target
                )
                result = getattr(mirror, method_name)(*decoded_args, **decoded_kwargs)
                return self._encode_value(result, target)

        return relay_method

    def cross_batched(
        self,
        caller: Side,
        target: Side,
        name: str,
        body,
        payload: int,
        idempotent: bool = False,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> Any:
        """Crossing entry point for the call coalescer.

        ``calls`` is the number of logical invocations the crossing
        carries; the transition layer and recovery coordinator account
        batch crossings by it. ``arena_bytes`` > 0 marks a zero-copy
        crossing whose staged regions pay only ``sgx.arena.mac``.
        """
        return self._cross(
            caller, target, name, body, payload,
            idempotent=idempotent, calls=calls, arena_bytes=arena_bytes,
        )

    def invoke_static(
        self, cls: type, method_name: str, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        """Relay a static method of an annotated class (all methods of a
        trusted class execute inside the enclave, §5.1)."""
        home = side_for(trust_of(cls))
        caller = self.current_side
        func = getattr(cls, method_name)
        if caller is home:
            return func(*args, **kwargs)
        if self.batcher is not None:
            self.batcher.barrier("static-relay")
        obs = self.platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "rmi.invoke_static",
                attrs={
                    "class": cls.__name__,
                    "method": method_name,
                    "caller": caller.value,
                    "target": home.value,
                },
            )
        try:
            encoded_args, encoded_kwargs, payload = self._encode_call(
                args, kwargs, caller
            )
            if span is not None:
                span.set_attr("payload_bytes", payload)

            def relay_static() -> Any:
                with self.on_side(home):
                    decoded_args, decoded_kwargs = self._decode_call(
                        encoded_args, encoded_kwargs, home
                    )
                    result = func(*decoded_args, **decoded_kwargs)
                    return self._encode_value(result, home)

            encoded_result = self._cross(
                caller,
                home,
                f"relay_{cls.__name__}_{method_name}",
                relay_static,
                payload,
                idempotent=bool(getattr(func, _IDEMPOTENT_ATTR, False)),
            )
            return self._decode_value(encoded_result, caller)
        finally:
            if span is not None:
                obs.tracer.end_span(span)
                obs.metrics.counter("rmi.static_invocations").inc()

    # -- GC-helper support ----------------------------------------------------------

    def release_remote(self, dead_side: Side, hashes: Iterable[int]) -> int:
        """Release mirrors in the side opposite ``dead_side``.

        Called by the GC helper after it found dead proxies on
        ``dead_side``; performs one batched transition.
        """
        dead_list = list(hashes)
        if not dead_list:
            return 0
        if self.batcher is not None:
            # Queued calls may keep a mirror alive on the wire; land
            # them before releasing anything.
            self.batcher.barrier("gc-release")
        if (
            self.transitions is not None
            and self.transitions.enclave.state is EnclaveState.LOST
        ):
            # The mirrors died with the enclave; there is nothing to
            # release and no enclave to cross into (teardown after an
            # unrecovered loss must not explode).
            return 0
        opposite = dead_side.opposite
        rmi_costs = self.platform.cost_model.rmi

        def release() -> int:
            released = 0
            with self.on_side(opposite) as state:
                for dead_hash in dead_list:
                    self.platform.charge_cycles(
                        "rmi.registry", rmi_costs.registry_op_cycles
                    )
                    if self.mirror_state(opposite, dead_hash).registry.discard(
                        dead_hash
                    ):
                        released += 1
                    state.proxy_cache.pop(dead_hash, None)
            return released

        with self.on_side(dead_side):
            obs = self.platform.obs
            if obs is None:
                return self._cross(
                    dead_side,
                    opposite,
                    "gc_release",
                    release,
                    payload=8 * len(dead_list),
                    idempotent=True,
                )
            with obs.tracer.span(
                "rmi.gc_release",
                attrs={"dead_side": dead_side.value, "dead": len(dead_list)},
            ):
                released = self._cross(
                    dead_side,
                    opposite,
                    "gc_release",
                    release,
                    payload=8 * len(dead_list),
                    idempotent=True,
                )
            obs.metrics.counter("rmi.mirrors_released").inc(released)
            return released

    # -- encoding -------------------------------------------------------------------

    def _encode_call(
        self, args: Tuple[Any, ...], kwargs: Dict[str, Any], side: Side
    ) -> Tuple[Tuple[Any, ...], Dict[str, Any], int]:
        encoded_args = tuple(self._encode_value(a, side) for a in args)
        encoded_kwargs = {k: self._encode_value(v, side) for k, v in kwargs.items()}
        payload = sum(e[2] for e in encoded_args) + sum(
            e[2] for e in encoded_kwargs.values()
        )
        return encoded_args, encoded_kwargs, payload

    def _encode_call_staged(
        self, args: Tuple[Any, ...], kwargs: Dict[str, Any], side: Side
    ) -> Tuple[Tuple[Any, ...], Dict[str, Any], int, int, int]:
        """Arena variant of :meth:`_encode_call` for batchable crossings.

        Neutral values are wire-encoded **once** into the runtime's
        arena and travel as borrowed views; primitives, proxy/mirror
        references and secure values keep their classic encodings (the
        sealed path must never stage plaintext in untrusted memory).
        Returns ``(args, kwargs, payload, staged, classic)`` where
        ``payload`` counts only classic edge bytes, ``staged`` the
        arena bytes to MAC at the crossing, and ``classic`` the edge
        bytes the classic path would have copied for the staged values.
        """
        arena = self.arena
        encoded_args = tuple(
            self._encode_value_staged(a, side, arena) for a in args
        )
        encoded_kwargs = {
            k: self._encode_value_staged(v, side, arena) for k, v in kwargs.items()
        }
        payload = staged = classic = 0
        for entry in encoded_args:
            if entry[0] == "arena":
                staged += entry[1].length
                classic += entry[1].classic_nbytes
            else:
                payload += entry[2]
        for entry in encoded_kwargs.values():
            if entry[0] == "arena":
                staged += entry[1].length
                classic += entry[1].classic_nbytes
            else:
                payload += entry[2]
        return encoded_args, encoded_kwargs, payload, staged, classic

    def _encode_value_staged(
        self, value: Any, side: Side, arena: Any
    ) -> Tuple[str, Any, int]:
        """Stage one neutral value; classic encoding for everything else.

        Falls back to the classic path when the value is not
        wire-encodable or the arena is full — an undersized arena
        degrades to classic pricing, never to an error.
        """
        if (
            isinstance(value, (SecureValue,) + _PRIMITIVES)
            or is_proxy(value)
            or trust_of(type(value)) is not TrustLevel.NEUTRAL
        ):
            return self._encode_value(value, side)
        try:
            view = arena.stage(value, self.codec, self._location(side))
        except SerializationError:
            arena.stats.classic_fallbacks += 1
            return self._encode_value(value, side)
        return ("arena", view, 0)

    def _decode_call(
        self, encoded_args: Tuple[Any, ...], encoded_kwargs: Dict[str, Any], side: Side
    ) -> Tuple[Tuple[Any, ...], Dict[str, Any]]:
        args = tuple(self._decode_value(e, side) for e in encoded_args)
        kwargs = {k: self._decode_value(v, side) for k, v in encoded_kwargs.items()}
        return args, kwargs

    def _encode_value(self, value: Any, side: Side) -> Tuple[str, Any, int]:
        """Encode one value on ``side``; returns (tag, payload, bytes)."""
        if isinstance(value, SecureValue):
            # Secure payloads leave a runtime only sealed: the codec
            # round-trips tag + provenance intact, and the crossing pays
            # AES-class sealing on top of ordinary serialization. Plain
            # payloads never reach this branch — pricing is untouched
            # when secure values are not in play.
            buffer = self.codec.serialize(value, self._location(side))
            self.platform.charge_cycles(
                "sgx.seal.secure_value", secure_payload_cycles(len(buffer))
            )
            return ("secure", buffer, len(buffer))
        if isinstance(value, _PRIMITIVES):
            return ("prim", value, 8)
        if is_proxy(value):
            target_side = getattr(value, SIDE_ATTR)
            if target_side is side:
                # The mirror lives on the *encoding* side (the proxy was
                # carried across): the decoder needs a proxy back to it.
                return (
                    "proxy_ref",
                    (proxy_hash(value), _concrete_class(type(value))),
                    8,
                )
            # Normal case: the decoder side holds the mirror.
            return ("mirror_ref", (proxy_hash(value)), 8)
        if trust_of(type(value)) is not TrustLevel.NEUTRAL:
            # Concrete annotated instance: register it locally so the
            # opposite side can address it through a proxy.
            state = self.state_of(side)
            local_hash = state.mirror_hashes.get(id(value))
            if local_hash is None:
                local_hash = self._register_local_mirror(side, state, value)
            return ("proxy_ref", (local_hash, _concrete_class(type(value))), 8)
        buffer = self.codec.serialize(value, self._location(side))
        return ("ser", buffer, len(buffer))

    def _register_local_mirror(self, side: Side, state: SideState, value: Any) -> int:
        """Register a local concrete as a mirror; returns its new hash.

        Hook: the multi-isolate extension overrides this to remember
        which isolate the mirror lives in.
        """
        local_hash = self.hash_strategy.next_hash(type(value).__name__)
        self.platform.charge_cycles(
            "rmi.registry", self.platform.cost_model.rmi.registry_op_cycles
        )
        state.registry.add(local_hash, value)
        state.mirror_hashes[id(value)] = local_hash
        return local_hash

    def _decode_value(self, encoded: Tuple[str, Any, int], side: Side) -> Any:
        tag, payload, _ = encoded
        if tag == "prim":
            return payload
        if tag == "mirror_ref":
            return self.mirror_state(side, payload).registry.get(payload)
        if tag == "proxy_ref":
            remote_hash, cls = payload
            return self._proxy_for(side, cls, remote_hash)
        if tag == "ser":
            return self.codec.deserialize(payload, self._location(side))
        if tag == "secure":
            self.platform.charge_cycles(
                "sgx.unseal.secure_value", secure_payload_cycles(len(payload))
            )
            return self.codec.deserialize(payload, self._location(side))
        if tag == "arena":
            # Zero-copy decode: parse the staged wire bytes directly out
            # of the untrusted buffer (validated borrowed view — stale
            # or tampered regions raise before a byte is interpreted).
            # The crossing already paid the region's MAC; the classic
            # deserialize this elides is credited to the arena's books.
            value = wire.loads_inplace(payload)
            payload.arena.note_saved_deserialize(
                payload, self.codec, self._location(side)
            )
            return value
        raise RmiError(f"unknown encoding tag {tag!r}")

    def _proxy_for(self, side: Side, cls: type, remote_hash: int) -> Any:
        state = self.state_of(side)
        cached = state.proxy_cache.get(remote_hash)
        if cached is not None:
            existing = cached()
            if existing is not None:
                return existing
        proxy = construct_proxy(cls, self, side.opposite, remote_hash)
        self.platform.charge_cycles(
            "rmi.weakref", self.platform.cost_model.rmi.weakref_track_cycles
        )
        state.tracker.track(proxy, remote_hash)
        state.proxy_cache[remote_hash] = weakref.ref(proxy)
        return proxy

    # -- transitions -------------------------------------------------------------------

    def _cross(
        self,
        caller: Side,
        target: Side,
        name: str,
        body,
        payload: int,
        idempotent: bool = False,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> Any:
        """Perform the boundary crossing and marshal outcomes.

        Application exceptions raised on the target side cannot cross a
        real enclave boundary as live objects: they are serialized as
        (type name, args), and re-raised on the caller side — builtin
        exception types are reconstructed, anything else surfaces as
        :class:`RmiError`. Infrastructure errors (:class:`ReproError`)
        propagate directly; they belong to the runtime, not the app.

        With a recovery coordinator installed, the transition runs
        inside its retry loop: enclave loss triggers rebuild + replay
        under the at-most-once rules (``idempotent`` marks routines the
        coordinator may reissue after a *mid-call* loss).
        """
        from repro.errors import ReproError

        def guarded() -> Tuple[str, Any]:
            try:
                return ("ok", body())
            except ReproError:
                raise
            except Exception as exc:  # noqa: BLE001 - marshalled below
                try:
                    blob = self.codec.serialize(
                        (type(exc).__name__, exc.args), self._location(target)
                    )
                except Exception:
                    blob = self.codec.serialize(
                        (type(exc).__name__, (str(exc),)), self._location(target)
                    )
                return ("exc", blob)

        if self.transitions is None:
            outcome = guarded()
        else:
            if target is Side.TRUSTED:
                def transition() -> Tuple[str, Any]:
                    return self.transitions.ecall(
                        name, guarded, payload_bytes=payload, calls=calls,
                        arena_bytes=arena_bytes,
                    )
            else:
                def transition() -> Tuple[str, Any]:
                    return self.transitions.ocall(
                        name, guarded, payload_bytes=payload, calls=calls,
                        arena_bytes=arena_bytes,
                    )

            recovery = self.recovery
            if recovery is None:
                outcome = transition()
            else:
                outcome = recovery.run_with_retry(
                    transition,
                    routine=name,
                    invocation_id=next(self._invocation_ids),
                    idempotent=idempotent,
                    calls=calls,
                )

        tag, value = outcome
        if tag == "ok":
            return value
        type_name, args = self.codec.deserialize(value, self._location(caller))
        raise _rebuild_exception(type_name, args)

    def _location(self, side: Side) -> Location:
        return self.state_of(side).ctx.location

    # -- stats ------------------------------------------------------------------------

    def describe(self) -> str:
        untrusted = self.state_of(Side.UNTRUSTED)
        trusted = self.state_of(Side.TRUSTED)
        lines = [
            f"untrusted: registry={untrusted.registry.live_count()} "
            f"proxies={untrusted.tracker.live_count()}",
            f"trusted:   registry={trusted.registry.live_count()} "
            f"proxies={trusted.tracker.live_count()}",
        ]
        if self.transitions is not None:
            stats = self.transitions.stats
            lines.append(
                f"transitions: ecalls={stats.ecalls} ocalls={stats.ocalls} "
                f"switchless={stats.switchless_calls}"
            )
        return "\n".join(lines)


def _rebuild_exception(type_name: str, args: Tuple[Any, ...]) -> BaseException:
    """Reconstruct a marshalled exception on the caller side."""
    import builtins

    candidate = getattr(builtins, type_name, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, Exception)
        and candidate is not type
    ):
        try:
            return candidate(*args)
        except Exception:  # noqa: BLE001 - odd constructor signatures
            pass
    detail = ", ".join(repr(a) for a in args)
    return RmiError(f"remote {type_name}: {detail}")


def _concrete_class(cls: type) -> type:
    """Strip a generated proxy class back to the annotated class."""
    if getattr(cls, "__is_montsalvat_proxy__", False):
        return cls.__mro__[1]
    return cls


class SingleContextRuntime:
    """Degenerate runtime for unpartitioned and baseline runs (§5.6).

    Every class — trusted, untrusted, neutral — is concrete and all
    work is charged to one context (the enclave context for
    unpartitioned enclave images; a host context for NoSGX runs).
    """

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.current_side = Side.UNTRUSTED
        self.platform = ctx.platform

    def context_of(self, side: Side) -> ExecutionContext:
        return self.ctx

    def instantiate(self, cls: type, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        size = getattr(cls, SIZE_ATTRIBUTE, DEFAULT_OBJECT_BYTES)
        self.ctx.allocate(size, count=1)
        obj = object.__new__(cls)
        obj.__init__(*args, **kwargs)
        return obj

    @contextmanager
    def on_side(self, side: Side):
        yield self
