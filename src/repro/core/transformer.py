"""Bytecode transformer analog: proxies, relay methods, image specs (§5.2, §5.3).

The transformer consumes the application's class IR and produces two
class sets:

- **T** — transformed trusted classes (original methods + generated
  relay entry points) plus proxy classes for untrusted classes;
- **U** — transformed untrusted classes plus proxy classes for trusted
  classes;

the unmodified neutral set **N** joins both. The native-image builder
consumes (T ∪ N) and (U ∪ N); its points-to analysis prunes proxies
that are not reachable — exactly the paper's division of labour, where
the bytecode weaver generates all proxies and GraalVM drops the
unreachable ones.

Every relay method is validated against the @CEntryPoint restrictions
(static; isolate first; primitive/word parameters only), and the EDL
interface (one ecall/ocall per relay plus the shim and GC-helper
routines) is assembled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.annotations import Side
from repro.errors import PartitionError
from repro.graal.entrypoints import CEntryPointSpec, ParamKind, validate_entry_point
from repro.graal.jtypes import (
    CallSite,
    ClassUniverse,
    JClass,
    JField,
    JMethod,
    TrustLevel,
)

#: Shim libc routines always present in the untrusted interface (§5.4).
SHIM_OCALLS = (
    "ocall_open",
    "ocall_read",
    "ocall_write",
    "ocall_lseek",
    "ocall_fsync",
    "ocall_close",
    "ocall_mmap",
    "ocall_unlink",
)

#: GC-helper release routines, one direction each (§5.5).
GC_ROUTINES = ("ecall_gc_release", "ocall_gc_release")


@dataclass(frozen=True)
class RelaySpec:
    """One generated relay method (the @CEntryPoint wrapper, §5.2)."""

    class_name: str
    method_name: str
    relay_name: str
    kind: str  # "constructor" | "instance"
    transition: str  # "ecall" when the concrete class is trusted
    entry_point: CEntryPointSpec

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.relay_name}"


@dataclass
class TransformResult:
    """Everything downstream stages need."""

    trusted_universe: ClassUniverse
    untrusted_universe: ClassUniverse
    trusted_entry_points: Tuple[str, ...]
    untrusted_entry_points: Tuple[str, ...]
    relay_specs: Dict[Side, Tuple[RelaySpec, ...]] = field(default_factory=dict)
    proxy_classes: Dict[str, JClass] = field(default_factory=dict)
    main_entry: Optional[str] = None


class BytecodeTransformer:
    """Generates proxies and relays over the class IR."""

    def transform(
        self,
        classes: Mapping[str, JClass],
        main_entry: Optional[str] = None,
    ) -> TransformResult:
        """Split ``classes`` into the trusted/untrusted build inputs.

        ``main_entry`` is the application's ``"Class.method"`` main; it
        must belong to an untrusted or neutral class because all SGX
        applications begin in the untrusted runtime (§5.3).
        """
        trusted = [c for c in classes.values() if c.trust is TrustLevel.TRUSTED]
        untrusted = [c for c in classes.values() if c.trust is TrustLevel.UNTRUSTED]
        neutral = [c for c in classes.values() if c.trust is TrustLevel.NEUTRAL]
        if not trusted:
            raise PartitionError(
                "no @Trusted classes: build an unpartitioned image instead (§5.6)"
            )
        self._validate_main(classes, main_entry)

        trusted_relays = [self._relays_for(c, "ecall") for c in trusted]
        untrusted_relays = [self._relays_for(c, "ocall") for c in untrusted]

        transformed_trusted = [
            self._with_relays(c, specs) for c, specs in zip(trusted, trusted_relays)
        ]
        transformed_untrusted = [
            self._with_relays(c, specs) for c, specs in zip(untrusted, untrusted_relays)
        ]
        proxies = {c.name: self._proxy_for(c) for c in trusted + untrusted}

        trusted_universe = ClassUniverse.of(
            *transformed_trusted,
            *(proxies[c.name] for c in untrusted),
            *neutral,
        )
        untrusted_universe = ClassUniverse.of(
            *transformed_untrusted,
            *(proxies[c.name] for c in trusted),
            *neutral,
        )

        trusted_entry_points = tuple(
            spec.qualified_name for specs in trusted_relays for spec in specs
        )
        untrusted_entry_points = tuple(
            spec.qualified_name for specs in untrusted_relays for spec in specs
        )
        if main_entry is not None:
            untrusted_entry_points = (main_entry,) + untrusted_entry_points
        elif not untrusted_entry_points:
            # No application main and no untrusted relays: the untrusted
            # image is entered only by the C driver (SGX applications
            # always begin in the untrusted runtime, §5.3). Synthesize it.
            driver = JClass(
                name="MontsalvatDriver",
                methods=(JMethod("main", "MontsalvatDriver", is_static=True),),
            )
            untrusted_universe = ClassUniverse.of(
                driver, *untrusted_universe.classes()
            )
            untrusted_entry_points = ("MontsalvatDriver.main",)

        return TransformResult(
            trusted_universe=trusted_universe,
            untrusted_universe=untrusted_universe,
            trusted_entry_points=trusted_entry_points,
            untrusted_entry_points=untrusted_entry_points,
            relay_specs={
                Side.TRUSTED: tuple(s for specs in trusted_relays for s in specs),
                Side.UNTRUSTED: tuple(s for specs in untrusted_relays for s in specs),
            },
            proxy_classes=proxies,
            main_entry=main_entry,
        )

    # -- generation -----------------------------------------------------------

    def _relays_for(self, jclass: JClass, transition: str) -> List[RelaySpec]:
        specs: List[RelaySpec] = []
        for method in jclass.public_methods():
            if method.is_static and not method.is_constructor:
                continue  # statics need no instance relay
            base = "init" if method.is_constructor else method.name
            relay_name = f"relay_{base}"
            # relay(isolate, hash, serialized buffer, buffer length, ...)
            params = (
                ParamKind.ISOLATE,
                ParamKind.PRIMITIVE,  # proxy hash
                ParamKind.WORD,  # serialized argument buffer
                ParamKind.PRIMITIVE,  # buffer length
            )
            entry = CEntryPointSpec(
                name=relay_name,
                declared_in=jclass.name,
                is_static=True,
                params=params,
            )
            validate_entry_point(entry)
            specs.append(
                RelaySpec(
                    class_name=jclass.name,
                    method_name=method.name,
                    relay_name=relay_name,
                    kind="constructor" if method.is_constructor else "instance",
                    transition=transition,
                    entry_point=entry,
                )
            )
        return specs

    def _with_relays(self, jclass: JClass, specs: List[RelaySpec]) -> JClass:
        """Original class plus its generated relay methods (Listing 4)."""
        relay_methods = tuple(
            JMethod(
                name=spec.relay_name,
                declared_in=jclass.name,
                is_static=True,
                is_public=True,
                param_count=3,
                calls=frozenset(
                    {
                        CallSite(
                            method_name=spec.method_name,
                            receiver_class=jclass.name,
                            is_instantiation=spec.kind == "constructor",
                        ),
                        CallSite(method_name="deserialize"),
                        CallSite(method_name="registry_op"),
                    }
                ),
            )
            for spec in specs
        )
        return JClass(
            name=jclass.name,
            trust=jclass.trust,
            methods=jclass.methods + relay_methods,
            fields=jclass.fields,
        )

    def _proxy_for(self, jclass: JClass) -> JClass:
        """Stripped proxy class (Listings 2 and 3): same public methods,
        bodies replaced by native transitions; fields replaced by the
        identifying hash."""
        methods = tuple(
            JMethod(
                name=method.name,
                declared_in=jclass.name,
                is_static=method.is_static,
                is_public=True,
                is_constructor=method.is_constructor,
                param_count=method.param_count,
                calls=frozenset(),  # native transition, below the IR
            )
            for method in jclass.public_methods()
        )
        return JClass(
            name=jclass.name,
            trust=jclass.trust,
            methods=methods,
            fields=(JField(name="hash", declared_in=jclass.name),),
        )

    # -- validation -----------------------------------------------------------

    def _validate_main(
        self, classes: Mapping[str, JClass], main_entry: Optional[str]
    ) -> None:
        if main_entry is None:
            return
        class_name, _, method_name = main_entry.rpartition(".")
        jclass = classes.get(class_name)
        if jclass is None:
            raise PartitionError(f"main entry class {class_name!r} unknown")
        if jclass.method(method_name) is None:
            raise PartitionError(f"main entry {main_entry!r} does not exist")
        if jclass.trust is TrustLevel.TRUSTED:
            raise PartitionError(
                "the main entry point belongs in the untrusted image: all "
                "SGX applications begin in the untrusted runtime (§5.3)"
            )
