"""Encapsulation validation for annotated classes (§5.1).

Montsalvat assumes annotated classes are *properly encapsulated*: class
fields are private and only reachable through public getters/setters.
This keeps sensitive fields inside the enclave without data-flow
analysis — a field that other classes read directly would silently
bypass the proxy layer (proxies carry no fields).

The validator AST-scans the application for foreign attribute accesses
on instances of annotated classes and reports violations before the
build, so the developer fixes the leak instead of shipping it.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.annotations import trust_of
from repro.errors import PartitionError
from repro.graal.jtypes import TrustLevel

#: Memoised per-function parses: the validator re-scans the same
#: application methods on every partition() and source never changes
#: under it. Visitors only read the trees, so sharing them is safe.
_PARSE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_UNPARSEABLE = object()


@dataclass(frozen=True)
class EncapsulationViolation:
    """One foreign field access on an annotated class."""

    accessing_class: str
    accessing_method: str
    target_class: str
    field: str

    def describe(self) -> str:
        return (
            f"{self.accessing_class}.{self.accessing_method} reaches into "
            f"{self.target_class}.{self.field}; annotated classes must be "
            "accessed through public methods (§5.1)"
        )


class EncapsulationValidator:
    """Static encapsulation check over the application classes."""

    def validate(
        self, classes: Sequence[type], strict: bool = False
    ) -> Tuple[EncapsulationViolation, ...]:
        """Scan for foreign field accesses; returns violations found.

        ``strict=True`` raises :class:`PartitionError` on the first
        report instead of returning it.
        """
        annotated_fields = self._collect_annotated_fields(classes)
        # Variable-name heuristics: parameters/locals whose inferred
        # class is annotated. We track names assigned from annotated
        # constructors plus parameters annotated by position in the
        # method (typed via name match, e.g. "account" -> Account).
        by_lower_name = {
            cls.__name__.lower(): cls.__name__
            for cls in classes
            if trust_of(cls) is not TrustLevel.NEUTRAL
        }
        violations: List[EncapsulationViolation] = []
        for cls in classes:
            for method_name, func in self._methods(cls):
                tree = self._parse(func)
                if tree is None:
                    continue
                finder = _ForeignAccessFinder(
                    owner=cls.__name__,
                    annotated_fields=annotated_fields,
                    name_hints=by_lower_name,
                )
                finder.visit(tree)
                for target_class, field in finder.accesses:
                    if target_class == cls.__name__:
                        continue  # own fields are fine
                    violation = EncapsulationViolation(
                        accessing_class=cls.__name__,
                        accessing_method=method_name,
                        target_class=target_class,
                        field=field,
                    )
                    if strict:
                        raise PartitionError(violation.describe())
                    violations.append(violation)
        return tuple(violations)

    # -- internals ------------------------------------------------------------

    def _collect_annotated_fields(
        self, classes: Sequence[type]
    ) -> Dict[str, Set[str]]:
        from repro.graal.extraction import extract_class

        fields: Dict[str, Set[str]] = {}
        for cls in classes:
            if trust_of(cls) is TrustLevel.NEUTRAL:
                continue
            ir = extract_class(cls)
            fields[cls.__name__] = {f.name for f in ir.fields}
        return fields

    def _methods(self, cls: type):
        for name, member in vars(cls).items():
            if isinstance(member, (staticmethod, classmethod)):
                member = member.__func__
            if inspect.isfunction(member):
                yield name, member

    def _parse(self, func):
        try:
            cached = _PARSE_CACHE.get(func)
        except TypeError:
            cached = None
        if cached is not None:
            return None if cached is _UNPARSEABLE else cached
        try:
            tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
        except (OSError, TypeError, SyntaxError, IndentationError):
            tree = None
        try:
            _PARSE_CACHE[func] = _UNPARSEABLE if tree is None else tree
        except TypeError:
            pass
        return tree


class _ForeignAccessFinder(ast.NodeVisitor):
    """Finds ``variable.field`` reads/writes where ``variable`` is
    heuristically an annotated-class instance and ``field`` is one of
    that class's fields (not a method call)."""

    def __init__(
        self,
        owner: str,
        annotated_fields: Dict[str, Set[str]],
        name_hints: Dict[str, str],
    ) -> None:
        self.owner = owner
        self.annotated_fields = annotated_fields
        self.name_hints = dict(name_hints)
        self.accesses: List[Tuple[str, str]] = []
        self._inferred: Dict[str, str] = {}

    def visit_Assign(self, node: ast.Assign) -> None:
        # var = AnnotatedClass(...) pins var's class.
        if isinstance(node.value, ast.Call) and isinstance(node.value.func, ast.Name):
            class_name = node.value.func.id
            if class_name in self.annotated_fields:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._inferred[target.id] = class_name
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id != "self":
            self._check_access(node.value.id, node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # getattr(obj, "field") / setattr(obj, "field", v) / delattr:
        # string-based access bypasses attribute syntax but reaches the
        # same field.
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("getattr", "setattr", "delattr")
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id != "self"
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            self._check_access(node.args[0].id, node.args[1].value)
        self.generic_visit(node)

    def _check_access(self, variable: str, field: str) -> None:
        target_class = self._inferred.get(variable) or self.name_hints.get(
            variable.lower()
        )
        if target_class and target_class in self.annotated_fields:
            if field in self.annotated_fields[target_class]:
                self.accesses.append((target_class, field))
