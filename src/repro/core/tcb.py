"""Trusted-computing-base accounting.

Montsalvat's central motivation (§1, §3): LibOS approaches put millions
of lines into the enclave; partitioning with a thin shim keeps the TCB
small. This module quantifies that for a built application — what is
inside the enclave under each deployment — so the comparison the paper
argues qualitatively becomes a measurable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.costs.machine import KB, MB

#: Component size estimates (bytes of code inside the enclave).
#: LibOS figures follow the paper's discussion (§2.1, §3): Graphene/
#: SGX-LKL-class library OSs reach millions of LOC.
GRAAL_RUNTIME_BYTES = 900 * KB  # GC, threads, stack walking (§2.2)
SHIM_LIBC_BYTES = 140 * KB  # Montsalvat's shim relays (§5.4)
EDGE_ROUTINE_BYTES_PER_RELAY = 512
LIBOS_BYTES = 28 * MB  # Graphene-class library OS
MUSL_LIBC_BYTES = 1200 * KB  # SCONE's modified libc
JVM_BYTES = 48 * MB  # OpenJDK8 inside the container


@dataclass(frozen=True)
class TcbComponent:
    """One item inside the enclave."""

    name: str
    bytes_: int


@dataclass(frozen=True)
class TcbReport:
    """Everything inside the enclave for one deployment."""

    deployment: str
    components: Tuple[TcbComponent, ...]

    @property
    def total_bytes(self) -> int:
        return sum(component.bytes_ for component in self.components)

    def format(self) -> str:
        lines = [f"TCB — {self.deployment}", "-" * (7 + len(self.deployment))]
        for component in self.components:
            lines.append(f"  {component.name:<34} {component.bytes_ / KB:>12.1f} KB")
        lines.append(f"  {'TOTAL':<34} {self.total_bytes / KB:>12.1f} KB")
        return "\n".join(lines)


def partitioned_tcb(app) -> TcbReport:
    """TCB of a Montsalvat-partitioned application: trusted image +
    relays + shim + embedded runtime. Untrusted classes are *out*."""
    from repro.core.annotations import Side

    relay_count = len(app.transform.relay_specs.get(Side.TRUSTED, ()))
    components = (
        TcbComponent("trusted image (reachable methods)", app.images.trusted.code_size_bytes),
        TcbComponent("generated ecall bridges", relay_count * EDGE_ROUTINE_BYTES_PER_RELAY),
        TcbComponent("shim libc (§5.4)", SHIM_LIBC_BYTES),
        TcbComponent("GraalVM runtime components", GRAAL_RUNTIME_BYTES),
    )
    return TcbReport(deployment="Montsalvat partitioned", components=components)


def unpartitioned_tcb(app) -> TcbReport:
    """TCB when the whole image runs in the enclave (§5.6)."""
    components = (
        TcbComponent("full application image", app.image.code_size_bytes),
        TcbComponent("shim libc (§5.4)", SHIM_LIBC_BYTES),
        TcbComponent("GraalVM runtime components", GRAAL_RUNTIME_BYTES),
    )
    return TcbReport(deployment="Montsalvat unpartitioned", components=components)


def scone_tcb(app_code_bytes: int) -> TcbReport:
    """TCB of the SCONE+JVM deployment: the whole managed stack."""
    components = (
        TcbComponent("application bytecode + deps", app_code_bytes),
        TcbComponent("OpenJDK8 JVM", JVM_BYTES),
        TcbComponent("musl libc (SCONE)", MUSL_LIBC_BYTES),
        TcbComponent("library OS / container runtime", LIBOS_BYTES),
    )
    return TcbReport(deployment="SCONE + JVM", components=components)


def method_code_bytes() -> int:
    """Enclave-image bytes one compiled method accounts for."""
    from repro.graal.image import CODE_BYTES_PER_METHOD

    return CODE_BYTES_PER_METHOD


def dead_code_report(dead_methods: Mapping[str, Sequence[str]]) -> TcbReport:
    """Price trusted methods unreachable from every enclave entry point.

    ``dead_methods`` maps trusted class names to their dead method
    names (as found by the partition linter's MSV004 rule); the report
    quantifies how much enclave image §5.3's reachability pruning would
    have saved had the code been reachable-only.
    """
    per_method = method_code_bytes()
    components = tuple(
        TcbComponent(
            name=f"dead methods in {class_name}",
            bytes_=len(dead_methods[class_name]) * per_method,
        )
        for class_name in sorted(dead_methods)
    )
    return TcbReport(deployment="dead trusted code", components=components)


def compare(reports: List[TcbReport]) -> str:
    """Side-by-side totals, smallest first."""
    ordered = sorted(reports, key=lambda r: r.total_bytes)
    smallest = ordered[0].total_bytes or 1
    lines = [f"{'deployment':<28} {'TCB':>12} {'vs smallest':>12}"]
    for report in ordered:
        lines.append(
            f"{report.deployment:<28} {report.total_bytes / MB:>10.2f} MB "
            f"{report.total_bytes / smallest:>10.1f}x"
        )
    return "\n".join(lines)
