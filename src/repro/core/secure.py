"""SecV-style secure values: partition at *value* granularity.

Montsalvat partitions at class granularity — one secret field drags a
whole class into the enclave. SecV (PAPERS.md, arXiv:2310.15582) shows
that tagging individual *values* as secure recovers the slack: a class
can hold mixed trusted/untrusted fields, and only the secure values
force a crossing or sealing.

:func:`secure` wraps any wire-encodable value in a
:class:`SecureValue` whose tag and provenance chain survive the
transformer, the proxy layer and the :mod:`repro.core.wire` codec
(tag ``0x0B``). Crossing the enclave boundary, a secure payload is
priced like sealed storage (:mod:`repro.sgx.sealing`'s AES-class
fixed + per-byte cycles) — plain payloads are priced exactly as
before, so the mechanism is zero-cost when unused.

:func:`declassify` is the *only* sanctioned exit: it unwraps the value
and records the stated reason in the provenance chain it returns. The
partition linter's MSV006 rule flags secure values that reach
untrusted sinks without passing through it (see docs/ANALYSIS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: Provenance chains are bounded so repeated derivations cannot grow a
#: payload without limit; older steps fall off the front.
MAX_PROVENANCE = 8

#: Sealed-payload pricing, mirroring :mod:`repro.sgx.sealing` — secure
#: values crossing the boundary pay AES-GCM-class work per byte.
SEAL_FIXED_CYCLES = 3_000.0
SEAL_BYTE_CYCLES = 2.5


@dataclass(frozen=True)
class SecureValue:
    """A value tagged secure, with a provenance chain.

    ``provenance`` records where the secrecy came from (``secure@...``,
    derivation notes, declassification would *remove* the wrapper
    instead of appending). The chain is data, not behaviour: transport
    layers round-trip it untouched.
    """

    value: Any
    label: str = ""
    provenance: Tuple[str, ...] = ()

    def derive(self, note: str, value: Any) -> "SecureValue":
        """A new secure value computed from this one (taint persists)."""
        chain = (*self.provenance, f"derive:{note}")[-MAX_PROVENANCE:]
        return SecureValue(value=value, label=self.label, provenance=chain)

    def __repr__(self) -> str:  # never leak the payload into logs
        tag = self.label or "value"
        return f"SecureValue(<{tag}>, provenance={list(self.provenance)})"


def secure(value: Any, label: str = "") -> SecureValue:
    """Tag ``value`` as secure; idempotent on already-secure values."""
    if isinstance(value, SecureValue):
        return value
    origin = f"secure:{label}" if label else "secure"
    return SecureValue(value=value, label=label, provenance=(origin,))


def declassify(value: Any, reason: str) -> Any:
    """Unwrap a secure value, recording why that is safe.

    ``reason`` is mandatory and non-empty — the point of the gate is
    that every exit from the secure world is a deliberate, reviewable
    decision. Passing a plain value through is a no-op, so call sites
    can declassify uniformly.
    """
    if not reason or not reason.strip():
        raise ValueError("declassify() requires a non-empty reason")
    if isinstance(value, SecureValue):
        return value.value
    return value


def is_secure(value: Any) -> bool:
    """Whether ``value`` carries the secure tag."""
    return isinstance(value, SecureValue)


def secure_payload_cycles(nbytes: int) -> float:
    """Sealing-equivalent cost of moving ``nbytes`` of secure payload
    across the enclave boundary."""
    return SEAL_FIXED_CYCLES + nbytes * SEAL_BYTE_CYCLES
