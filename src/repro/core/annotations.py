"""Partitioning language: @trusted, @untrusted, @neutral (§5.1).

Classes are the partitioning boundary. A trusted class is always
instantiated and manipulated inside the enclave; an untrusted class
outside. Neutral (unannotated) classes can live on either side and may
have independent copies in both runtimes.

Where the paper rewrites bytecode, this reproduction rebuilds annotated
classes with :class:`PartitionMeta`, whose ``__call__`` consults the
active partitioned runtime: instantiation from the matching side is
concrete; from the opposite side it creates a proxy and relays the
construction across the enclave boundary. When no runtime is active the
classes behave like plain Python classes — which is exactly §5.6's
unpartitioned mode.
"""

from __future__ import annotations

import enum
from contextvars import ContextVar
from typing import Any, Callable, Optional, TypeVar

from repro.errors import AnnotationError
from repro.graal.extraction import TRUST_ATTRIBUTE
from repro.graal.jtypes import TrustLevel
from repro.runtime.context import ExecutionContext

C = TypeVar("C", bound=type)

#: The runtime currently activated by a PartitionedApplication, if any.
_active_runtime: "ContextVar[Optional[Any]]" = ContextVar(
    "montsalvat_active_runtime", default=None
)


class Side(enum.Enum):
    """The two runtimes of a partitioned application."""

    UNTRUSTED = "untrusted"
    TRUSTED = "trusted"

    @property
    def opposite(self) -> "Side":
        if self is Side.UNTRUSTED:
            return Side.TRUSTED
        return Side.UNTRUSTED


def side_for(trust: TrustLevel) -> Side:
    """The side instances of a trust level live on."""
    if trust is TrustLevel.TRUSTED:
        return Side.TRUSTED
    if trust is TrustLevel.UNTRUSTED:
        return Side.UNTRUSTED
    raise AnnotationError("neutral classes have no home side")


def current_runtime() -> Optional[Any]:
    """The active :class:`~repro.core.rmi.RmiRuntime`, or ``None``."""
    return _active_runtime.get()


def current_context() -> Optional[ExecutionContext]:
    """Execution context of the side currently running, or ``None``.

    Application code charges its work here, so the same method body is
    priced as enclave work when it runs on a mirror inside the enclave
    and as host work when it runs outside.
    """
    runtime = _active_runtime.get()
    if runtime is None:
        return None
    return runtime.context_of(runtime.current_side)


def ambient_context() -> ExecutionContext:
    """Like :func:`current_context`, but an active session is required."""
    ctx = current_context()
    if ctx is None:
        raise AnnotationError(
            "no active application session; run inside app.start() "
            "(partitioned, unpartitioned, or a baseline session)"
        )
    return ctx


def activate_runtime(runtime: Any):
    """Install ``runtime`` as the active one; returns the reset token."""
    return _active_runtime.set(runtime)


def deactivate_runtime(token) -> None:
    _active_runtime.reset(token)


class PartitionMeta(type):
    """Metaclass routing instantiation through the active runtime."""

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        runtime = _active_runtime.get()
        trust = getattr(cls, TRUST_ATTRIBUTE, TrustLevel.NEUTRAL)
        if runtime is None or trust is TrustLevel.NEUTRAL:
            return super().__call__(*args, **kwargs)
        if getattr(cls, "__is_montsalvat_proxy__", False):
            raise AnnotationError(
                f"{cls.__name__} is a proxy class; proxies are created by "
                "the runtime, never instantiated directly"
            )
        return runtime.instantiate(cls, args, kwargs)


def trust_of(cls: type) -> TrustLevel:
    """Trust annotation of a class (NEUTRAL when unannotated)."""
    return getattr(cls, TRUST_ATTRIBUTE, TrustLevel.NEUTRAL)


def _annotate(cls: C, trust: TrustLevel) -> C:
    if not isinstance(cls, type):
        raise AnnotationError(
            f"@{trust.value} applies to classes, got {type(cls).__name__}"
        )
    existing = getattr(cls, TRUST_ATTRIBUTE, None)
    if existing is not None and existing is not trust:
        raise AnnotationError(
            f"class {cls.__name__} already annotated @{existing.value}; "
            f"cannot also annotate @{trust.value}"
        )
    if trust is TrustLevel.NEUTRAL:
        setattr(cls, TRUST_ATTRIBUTE, trust)
        return cls
    if isinstance(cls, PartitionMeta):
        setattr(cls, TRUST_ATTRIBUTE, trust)
        return cls
    # Rebuild the class under PartitionMeta (the weaving step).
    namespace = dict(cls.__dict__)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    namespace[TRUST_ATTRIBUTE] = trust
    rebuilt = PartitionMeta(cls.__name__, cls.__bases__, namespace)
    rebuilt.__module__ = cls.__module__
    rebuilt.__qualname__ = getattr(cls, "__qualname__", cls.__name__)
    return rebuilt  # type: ignore[return-value]


def trusted(cls: C) -> C:
    """Annotate a class @Trusted: instances live inside the enclave."""
    return _annotate(cls, TrustLevel.TRUSTED)


def untrusted(cls: C) -> C:
    """Annotate a class @Untrusted: instances live outside the enclave."""
    return _annotate(cls, TrustLevel.UNTRUSTED)


def neutral(cls: C) -> C:
    """Explicitly mark a class neutral (the default for unannotated)."""
    return _annotate(cls, TrustLevel.NEUTRAL)
