"""GC helper: synchronized garbage collection across the heaps (§5.5).

Finalizers are deprecated and have broken semantics (a finalizer can
resurrect a proxy after its mirror died), so Montsalvat instead keeps a
weak reference per proxy and runs a helper per runtime that
periodically scans for cleared referents. A cleared referent means the
proxy was collected, so the corresponding mirror is released from the
opposite runtime's mirror-proxy registry — making it eligible for GC
there unless it is strongly referenced elsewhere.

Two helpers exist per application: one scanning the enclave's proxy
list, one scanning the untrusted list. ``scan_once`` is the explicit
tick used by tests/experiments; ``maybe_scan`` implements the periodic
(default one second of virtual time) schedule.
"""

from __future__ import annotations

import gc as _python_gc
from dataclasses import dataclass

from repro.core.annotations import Side
from repro.core.rmi import RmiRuntime

#: Cycles per tracked entry inspected during a scan.
_SCAN_ENTRY_CYCLES = 28.0


@dataclass
class GcHelperStats:
    scans: int = 0
    dead_found: int = 0
    mirrors_released: int = 0


class GcHelper:
    """One runtime's GC helper thread (tick-driven in the simulation)."""

    def __init__(
        self,
        runtime: RmiRuntime,
        side: Side,
        period_s: float = 1.0,
    ) -> None:
        self.runtime = runtime
        self.side = side
        self.period_s = period_s
        self.stats = GcHelperStats()
        self._last_scan_s = runtime.platform.now_s

    def scan_once(self, collect_python_garbage: bool = False) -> int:
        """Scan the weak-reference list; release mirrors for dead proxies.

        Returns the number of mirrors released in the opposite runtime.
        ``collect_python_garbage`` forces a host-interpreter collection
        first so cycles are broken deterministically in tests.
        """
        if collect_python_garbage:
            _python_gc.collect()
        platform = self.runtime.platform
        obs = platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "gc.helper.scan", attrs={"side": self.side.value}
            )
        try:
            state = self.runtime.state_of(self.side)
            entries = len(state.tracker)
            if entries:
                platform.charge_cycles(
                    f"gc_helper.scan.{self.side.value}", entries * _SCAN_ENTRY_CYCLES
                )
            dead = state.tracker.scan()
            self.stats.scans += 1
            self.stats.dead_found += len(dead)
            if span is not None:
                span.set_attr("entries", entries)
                span.set_attr("dead", len(dead))
            if not dead:
                return 0
            released = self.runtime.release_remote(self.side, dead)
            self.stats.mirrors_released += released
            if span is not None:
                span.set_attr("released", released)
            return released
        finally:
            if span is not None:
                obs.tracer.end_span(span)
                obs.metrics.counter("gc.helper.scans").inc()

    def maybe_scan(self) -> int:
        """Scan only if a full period of virtual time has elapsed."""
        now = self.runtime.platform.now_s
        # Small tolerance so scan work charged by a previous period does
        # not push the next period over the boundary.
        if now - self._last_scan_s < self.period_s * 0.99:
            return 0
        self._last_scan_s = now
        return self.scan_once()

    def __repr__(self) -> str:
        return (
            f"GcHelper(side={self.side.value}, scans={self.stats.scans}, "
            f"released={self.stats.mirrors_released})"
        )
