"""Montsalvat core: annotation-based partitioning for enclaves.

The paper's contribution (§5): class-level trust annotations, a
transformer that splits applications into trusted/untrusted images with
proxy and relay classes, an RMI-like mechanism for cross-runtime object
communication, synchronized garbage collection via a GC helper, a shim
libc for in-enclave syscalls, and an SGX code generator emitting EDL
and C transition routines.

Public API highlights::

    from repro.core import trusted, untrusted, neutral, Partitioner

    @trusted
    class Account: ...

    @untrusted
    class Person: ...

    app = Partitioner().partition([Account, Person], name="bank")
    with app.start():
        person = Person("Alice", 100)   # concrete, untrusted heap
        account = person.get_account()  # proxy to an in-enclave mirror
"""

from repro.core.annotations import (
    Side,
    current_context,
    current_runtime,
    neutral,
    trust_of,
    trusted,
    untrusted,
)
from repro.core.app import PartitionedApplication, UnpartitionedApplication
from repro.core.gc_helper import GcHelper
from repro.core.hashing import IdentityHashStrategy, Md5HashStrategy
from repro.core.partitioner import Partitioner, PartitionOptions
from repro.core.registry import MirrorProxyRegistry
from repro.core.rmi import RmiRuntime
from repro.core.multi_isolate import MultiIsolateRuntime, upgrade_session
from repro.core.secure import SecureValue, declassify, is_secure, secure
from repro.core.serialization import SerializationCodec, WireSerializationCodec
from repro.core.shim import ShimLibc
from repro.core.tcb import partitioned_tcb, scone_tcb, unpartitioned_tcb
from repro.core.transformer import BytecodeTransformer, TransformResult
from repro.core.validation import EncapsulationValidator

__all__ = [
    "MultiIsolateRuntime",
    "upgrade_session",
    "WireSerializationCodec",
    "partitioned_tcb",
    "scone_tcb",
    "unpartitioned_tcb",
    "EncapsulationValidator",
    "Side",
    "current_context",
    "current_runtime",
    "neutral",
    "trust_of",
    "trusted",
    "untrusted",
    "PartitionedApplication",
    "UnpartitionedApplication",
    "GcHelper",
    "IdentityHashStrategy",
    "Md5HashStrategy",
    "Partitioner",
    "PartitionOptions",
    "MirrorProxyRegistry",
    "RmiRuntime",
    "SecureValue",
    "secure",
    "declassify",
    "is_secure",
    "SerializationCodec",
    "ShimLibc",
    "BytecodeTransformer",
    "TransformResult",
]
