"""Pinned untrusted shared-buffer arena: the zero-copy crossing path.

Montsalvat's dominant per-call cost is the serialize-cross-deserialize
cycle (Fig. 4/7): every ``@batchable`` crossing re-encodes its neutral
arguments and pays the edge routine's per-byte copy. The arena removes
it with the Gramine-style staging idiom: arguments are encoded **once**
into a pinned *untrusted* buffer the enclave can read in place, and the
crossing charges only an AES-GCM integrity tag over the staged region
(``sgx.arena.mac``) — ciphertext+MAC instead of object-graph
serialization.

Mechanics:

- :class:`SharedBufferArena` bump-allocates regions out of one pinned
  buffer. Regions are **generation-stamped**: reclaiming the arena (or
  invalidating it after a shard recovery) bumps the generation, and any
  :class:`BorrowedView` still holding the old stamp raises a typed
  :class:`~repro.errors.StaleViewError` instead of silently reading
  reused memory;
- reclaim is **explicit and ref-counted**: each staged region is
  released by the coalescer after its batch lands; when the last live
  region is released the bump pointer rewinds and the generation
  advances, invalidating every outstanding view at once;
- a view is only honoured if it matches a *live registered region*
  exactly — truncated, overlapping or fabricated views fail the
  registry check with :class:`~repro.errors.ArenaError` before any
  payload byte is interpreted;
- :meth:`stage` prices the fast path and keeps the differential
  ledger's books: what staging+MAC **charges** is recorded in the
  ledger (``sgx.arena.*``), and what classic serialization **would
  have charged** accumulates in :class:`ArenaStats` — so tests can
  assert the exact decomposition
  ``classic_total == arena_total + saved - charged``.

When no value is ever staged the arena is pure bookkeeping: it charges
nothing and the run stays byte-identical to an arena-less ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ArenaCapacityError, ArenaError, StaleViewError
from repro.runtime.context import Location

#: Default pinned buffer size. Batches stage a few KB per flush; 1 MiB
#: leaves room for deep queues without ever forcing a classic fallback.
DEFAULT_CAPACITY = 1 << 20


@dataclass
class ArenaStats:
    """What the arena charged, and what classic pricing would have.

    ``saved_*`` are the classic-path costs the fast path elided —
    computed with the *same* formulas the codec and transition layer
    would have used, at the moment the elision happens. Together with
    the ledger's ``sgx.arena.*`` entries they give the exact
    decomposition the differential tests assert.
    """

    staged_values: int = 0
    staged_bytes: int = 0
    reclaims: int = 0
    classic_fallbacks: int = 0
    #: Classic per-call serialization cost elided at stage time.
    saved_serialize_ns: float = 0.0
    #: Classic per-call deserialization cost elided at decode time.
    saved_deserialize_ns: float = 0.0
    #: Classic edge-routine per-byte copy elided at crossing time.
    saved_edge_ns: float = 0.0

    @property
    def saved_ns(self) -> float:
        return self.saved_serialize_ns + self.saved_deserialize_ns + self.saved_edge_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "staged_values": self.staged_values,
            "staged_bytes": self.staged_bytes,
            "reclaims": self.reclaims,
            "classic_fallbacks": self.classic_fallbacks,
            "saved_serialize_ns": self.saved_serialize_ns,
            "saved_deserialize_ns": self.saved_deserialize_ns,
            "saved_edge_ns": self.saved_edge_ns,
            "saved_ns": self.saved_ns,
        }


@dataclass(frozen=True)
class ArenaRegion:
    """One bump-allocated span of the arena, generation-stamped."""

    region_id: int
    offset: int
    length: int
    generation: int


class BorrowedView:
    """A borrowed, read-only window onto a staged arena region.

    The view performs **no copy**: :meth:`acquire` returns a
    ``memoryview`` over the pinned buffer, after re-validating that the
    region is still live and still the same generation. ``classic_nbytes``
    remembers what the classic codec would have shipped for the same
    value — the differential ledger needs it because pickle and wire
    lengths differ.
    """

    __slots__ = ("arena", "region", "classic_nbytes")

    def __init__(self, arena: "SharedBufferArena", region: ArenaRegion,
                 classic_nbytes: int = 0) -> None:
        self.arena = arena
        self.region = region
        self.classic_nbytes = classic_nbytes

    @property
    def length(self) -> int:
        return self.region.length

    def acquire(self) -> memoryview:
        """Validated zero-copy window; raises typed errors when unsafe."""
        return self.arena.view(self.region)

    def release(self) -> None:
        self.arena.release(self.region)

    def __len__(self) -> int:
        return self.region.length

    def __repr__(self) -> str:
        region = self.region
        return (
            f"BorrowedView(region={region.region_id}, offset={region.offset}, "
            f"length={region.length}, generation={region.generation})"
        )


class SharedBufferArena:
    """Pinned untrusted buffer with bump allocation + explicit reclaim."""

    def __init__(self, platform: Any, capacity: int = DEFAULT_CAPACITY,
                 name: str = "arena0") -> None:
        if capacity < 8:
            raise ArenaCapacityError(f"arena capacity {capacity} is too small")
        self.platform = platform
        self.name = name
        self.capacity = capacity
        self.generation = 1
        self.stats = ArenaStats()
        self._buffer = bytearray(capacity)
        self._offset = 0
        self._next_region = 1
        #: region_id -> region, for the exact-match liveness check.
        self._live: Dict[int, ArenaRegion] = {}

    # -- allocation ------------------------------------------------------------

    @property
    def live_regions(self) -> int:
        return len(self._live)

    @property
    def bytes_in_use(self) -> int:
        return self._offset

    def write(self, payload: Any) -> BorrowedView:
        """Copy ``payload`` bytes into a fresh region; returns its view.

        This is the host-side staging write (the one linear copy the
        fast path keeps); pricing is the caller's concern — the RMI
        layer prices it via :meth:`stage`, raw users (the DMA channel)
        price their own transfer.
        """
        length = len(payload)
        end = self._offset + length
        if end > self.capacity:
            raise ArenaCapacityError(
                f"arena {self.name!r} has {self.capacity - self._offset} bytes "
                f"free; cannot stage {length}"
            )
        region = ArenaRegion(
            region_id=self._next_region,
            offset=self._offset,
            length=length,
            generation=self.generation,
        )
        self._next_region += 1
        self._buffer[region.offset : end] = payload
        self._offset = end
        self._live[region.region_id] = region
        return BorrowedView(self, region)

    def view(self, region: ArenaRegion) -> memoryview:
        """Zero-copy window over ``region``, validated for safety.

        Raises :class:`StaleViewError` for a generation mismatch
        (region reclaimed or arena invalidated) and :class:`ArenaError`
        for regions that do not exactly match a live registration
        (truncated, overlapping, fabricated) — never returns a window
        onto memory the region does not own.
        """
        if region.generation != self.generation:
            raise StaleViewError(
                f"arena {self.name!r} is at generation {self.generation}; "
                f"view was stamped {region.generation} — the region has been "
                "reclaimed"
            )
        live = self._live.get(region.region_id)
        if live is None or live != region:
            raise ArenaError(
                f"view does not match a live region of arena {self.name!r} "
                "(truncated, overlapping or fabricated view)"
            )
        return memoryview(self._buffer)[region.offset : region.offset + region.length]

    def release(self, region: ArenaRegion) -> None:
        """Release one region; the last release reclaims the arena.

        Releasing a region from an older generation is a no-op — the
        reclaim that bumped the generation already freed it.
        """
        if region.generation != self.generation:
            return
        self._live.pop(region.region_id, None)
        if not self._live:
            self.reclaim()

    def reclaim(self) -> None:
        """Rewind the bump pointer and invalidate every outstanding view."""
        self._offset = 0
        self._live.clear()
        self.generation += 1
        self.stats.reclaims += 1

    def invalidate(self, reason: str = "") -> None:
        """Generation bump without waiting for releases.

        Shard recovery calls this: whatever untrusted state a lost
        shard's batches staged is now meaningless, and any borrowed
        view still in flight must fail loudly rather than read reused
        bytes. Pending regions are dropped wholesale.
        """
        self.reclaim()
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("arena.invalidations").inc()

    # -- priced staging (RMI fast path) ---------------------------------------

    def stage(self, value: Any, codec: Any, location: Location) -> BorrowedView:
        """Encode ``value`` once into the arena and price the fast path.

        Charges ``sgx.arena.stage`` (bump-allocate + linear write) and
        records in :attr:`stats` the classic serialization cost this
        staging elided. Raises :class:`~repro.errors.SerializationError`
        subclasses when the value is not wire-encodable or does not fit
        — callers fall back to the classic path.
        """
        from repro.core import wire
        from repro.core.serialization import WireSerializationCodec

        view = wire.dumps_into(value, self)
        nbytes = view.length
        try:
            if isinstance(codec, WireSerializationCodec):
                # Classic would have shipped the identical wire bytes.
                classic_nbytes = nbytes
            else:
                classic_nbytes = codec.measure(value)
        except Exception:
            # measure() failed (value pickles differently than it
            # wires); undo the staging and let the caller go classic.
            view.release()
            raise
        view.classic_nbytes = classic_nbytes

        arena_costs = self.platform.cost_model.arena
        self.platform.charge_cycles(
            "sgx.arena.stage",
            arena_costs.stage_fixed_cycles + nbytes * arena_costs.stage_byte_cycles,
        )
        self.stats.staged_values += 1
        self.stats.staged_bytes += nbytes
        self.stats.saved_serialize_ns += self.platform.spec.cycles_to_ns(
            codec.codec_cycles("serialize", classic_nbytes, location)
        )
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("arena.staged_values").inc()
            obs.metrics.counter("arena.staged_bytes").inc(nbytes)
        return view

    def note_saved_deserialize(self, view: BorrowedView, codec: Any,
                               location: Location) -> None:
        """Account the classic deserialize the in-place decode elided."""
        self.stats.saved_deserialize_ns += self.platform.spec.cycles_to_ns(
            codec.codec_cycles("deserialize", view.classic_nbytes, location)
        )

    def note_saved_edge(self, classic_payload_bytes: int) -> None:
        """Account the classic edge-copy bytes a crossing elided."""
        if classic_payload_bytes <= 0:
            return
        trans = self.platform.cost_model.transitions
        self.stats.saved_edge_ns += self.platform.spec.cycles_to_ns(
            classic_payload_bytes * trans.edge_byte_cycles
        )

    def __repr__(self) -> str:
        return (
            f"SharedBufferArena(name={self.name!r}, capacity={self.capacity}, "
            f"in_use={self._offset}, live={len(self._live)}, "
            f"generation={self.generation})"
        )


def attach_arena(
    session: Any,
    capacity: int = DEFAULT_CAPACITY,
    name: str = "arena0",
) -> SharedBufferArena:
    """Install a zero-copy arena on a running session's runtime.

    Batchable crossings stage their neutral arguments into it from the
    next ``offer()`` on; detach with :func:`detach_arena` (or tear the
    session down) to return to classic pricing. Attaching an arena that
    never stages anything leaves the ledger byte-identical.
    """
    arena = SharedBufferArena(session.platform, capacity=capacity, name=name)
    session.runtime.arena = arena
    return arena


def detach_arena(session: Any) -> Optional[SharedBufferArena]:
    """Remove the runtime's arena (if any); returns it."""
    arena = getattr(session.runtime, "arena", None)
    session.runtime.arena = None
    return arena
