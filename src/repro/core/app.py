"""Runnable application facades.

- :class:`PartitionedApplication` — the full Montsalvat runtime: an
  enclave holding the trusted image, an untrusted host runtime, the
  RMI machinery, two GC helpers and per-side shim libc instances.
- :class:`UnpartitionedApplication` — §5.6: one image, entirely inside
  the enclave.
- :class:`NativeApplication` — the NoSGX baseline: one image on the
  host.

All three expose ``start()`` as a context manager; inside the block the
annotated classes route through the active runtime, so the same
application code runs in every configuration.
"""

from __future__ import annotations

import gc as _python_gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from repro.core.annotations import (
    Side,
    activate_runtime,
    deactivate_runtime,
)
from repro.core.gc_helper import GcHelper
from repro.core.rmi import RmiRuntime, SideState, SingleContextRuntime
from repro.core.serialization import SerializationCodec, WireSerializationCodec
from repro.core.shim import ShimLibc
from repro.costs.platform import Platform
from repro.errors import PartitionError
from repro.graal.image import NativeImage
from repro.graal.isolate import Isolate
from repro.runtime.context import ExecutionContext, Location, RuntimeKind
from repro.sgx.sdk import SgxSdk
from repro.sgx.transitions import TransitionLayer, TransitionStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.codegen import SgxArtifacts
    from repro.core.partitioner import PartitionedImages, PartitionOptions
    from repro.core.transformer import TransformResult


class MontsalvatSession:
    """Live partitioned application (yielded by ``start()``)."""

    def __init__(
        self,
        runtime: RmiRuntime,
        transitions: TransitionLayer,
        gc_helpers: Dict[Side, GcHelper],
        libc: Dict[Side, ShimLibc],
        enclave,
        images: Optional["PartitionedImages"] = None,
    ) -> None:
        self.runtime = runtime
        self.transitions = transitions
        self.gc_helpers = gc_helpers
        self._libc = libc
        self.enclave = enclave
        self.images = images

    def startup_heap(self, side: Side) -> Dict[str, Any]:
        """Build-time-initialised objects of one side's image (§2.2)."""
        if self.images is None:
            return {}
        image = (
            self.images.trusted if side is Side.TRUSTED else self.images.untrusted
        )
        return image.startup_heap()

    @property
    def platform(self) -> Platform:
        return self.runtime.platform

    def libc(self, side: Side = Side.UNTRUSTED) -> ShimLibc:
        return self._libc[side]

    def tick_gc(self, force: bool = False) -> int:
        """Run both GC helpers; returns mirrors released."""
        released = 0
        if force:
            # One host-interpreter collection covers both helpers'
            # scans: gc.collect() is the single most expensive host
            # operation in a session teardown, and running it per
            # helper doubled it for no extra dead proxies.
            _python_gc.collect()
            for helper in self.gc_helpers.values():
                released += helper.scan_once()
        else:
            for helper in self.gc_helpers.values():
                released += helper.maybe_scan()
        return released

    @property
    def transition_stats(self) -> TransitionStats:
        return self.transitions.stats

    def ocall_count(self) -> int:
        """All ocalls so far: RMI relays + shim + GC releases."""
        return self.transitions.stats.ocalls + int(
            self.platform.ledger.count("transition.ocall.shim")
        )

    def on_side(self, side: Side):
        return self.runtime.on_side(side)


@dataclass
class PartitionedApplication:
    """A partitioned, signed, runnable SGX application."""

    platform: Platform
    name: str
    classes: Tuple[type, ...]
    transform: "TransformResult"
    images: "PartitionedImages"
    artifacts: "SgxArtifacts"
    enclave_code: bytes
    options: "PartitionOptions"

    @contextmanager
    def start(self) -> Iterator[MontsalvatSession]:
        """Launch the SGX application and activate the runtime."""
        sdk = SgxSdk(self.platform)
        signed = sdk.sign(
            f"{self.name}-enclave", self.enclave_code, config=self.options.enclave_config
        )
        enclave = sdk.create_enclave(signed)

        untrusted_ctx = ExecutionContext(
            self.platform, Location.HOST, RuntimeKind.NATIVE_IMAGE, label=self.name
        )
        trusted_ctx = enclave.ctx
        untrusted_isolate = Isolate(
            f"{self.name}-untrusted", untrusted_ctx, self.options.image_heap_max_bytes
        )
        trusted_isolate = Isolate(
            f"{self.name}-trusted", trusted_ctx, self.options.image_heap_max_bytes
        )
        transitions = TransitionLayer(
            self.platform, enclave, switchless=self.options.switchless
        )
        codec_cls = (
            WireSerializationCodec if self.options.wire_format else SerializationCodec
        )
        runtime = RmiRuntime(
            untrusted=SideState.create(Side.UNTRUSTED, untrusted_ctx, untrusted_isolate),
            trusted=SideState.create(Side.TRUSTED, trusted_ctx, trusted_isolate),
            transitions=transitions,
            codec=codec_cls(self.platform, memoize=self.options.memoize_serialization),
            hash_strategy=self.options.hash_strategy_factory(),
        )
        gc_helpers = {
            side: GcHelper(runtime, side, period_s=self.options.gc_helper_period_s)
            for side in (Side.UNTRUSTED, Side.TRUSTED)
        }
        libc = {
            Side.UNTRUSTED: ShimLibc(untrusted_ctx),
            Side.TRUSTED: ShimLibc(trusted_ctx),
        }
        # Startup maps each image heap into its application heap (§2.2):
        # cheap and proportional to the snapshot, not to the init work.
        for image in (self.images.trusted, self.images.untrusted):
            if image.image_heap_bytes:
                self.platform.charge_cycles(
                    f"startup.image_heap.{image.name}",
                    image.image_heap_bytes * 0.02,
                )
        session = MontsalvatSession(
            runtime, transitions, gc_helpers, libc, enclave, images=self.images
        )
        token = activate_runtime(runtime)
        try:
            yield session
        finally:
            deactivate_runtime(token)
            # Drain any open call batch before teardown: queued
            # invocations must land while the enclave is still alive.
            if runtime.batcher is not None:
                runtime.batcher.flush()
            session.tick_gc(force=True)
            sdk.destroy_enclave(enclave)

    # -- introspection ---------------------------------------------------------

    def trusted_image_contains(self, qualified_name: str) -> bool:
        return self.images.trusted.contains_method(qualified_name)

    def untrusted_image_contains(self, qualified_name: str) -> bool:
        return self.images.untrusted.contains_method(qualified_name)


class _SingleImageApplication:
    """Shared machinery for unpartitioned and native runs."""

    def __init__(
        self,
        platform: Platform,
        name: str,
        classes: Tuple[type, ...],
        image: Optional[NativeImage],
        runtime_kind: RuntimeKind = RuntimeKind.NATIVE_IMAGE,
    ) -> None:
        self.platform = platform
        self.name = name
        self.classes = classes
        self.image = image
        self.runtime_kind = runtime_kind

    def _session(self, ctx: ExecutionContext) -> "SingleContextSession":
        runtime = SingleContextRuntime(ctx)
        return SingleContextSession(runtime, ShimLibc(ctx))


class SingleContextSession:
    """Session for one-context runs (unpartitioned, NoSGX, JVM)."""

    def __init__(self, runtime: SingleContextRuntime, libc: ShimLibc) -> None:
        self.runtime = runtime
        self._libc = libc

    @property
    def platform(self) -> Platform:
        return self.runtime.platform

    @property
    def ctx(self) -> ExecutionContext:
        return self.runtime.ctx

    def libc(self, side: Side = Side.UNTRUSTED) -> ShimLibc:
        return self._libc

    def tick_gc(self, force: bool = False) -> int:
        return 0  # single heap: nothing to synchronise


class UnpartitionedApplication(_SingleImageApplication):
    """§5.6: the original application, one image, whole-in-enclave."""

    def __init__(
        self,
        platform: Platform,
        name: str,
        classes: Tuple[type, ...],
        image: NativeImage,
        options: "PartitionOptions",
    ) -> None:
        super().__init__(platform, name, classes, image)
        self.options = options

    @contextmanager
    def start(self) -> Iterator[SingleContextSession]:
        sdk = SgxSdk(self.platform)
        signed = sdk.sign(
            f"{self.name}-single-enclave",
            self.image.code_bytes,
            config=self.options.enclave_config,
        )
        enclave = sdk.create_enclave(signed)
        session = self._session(enclave.ctx)
        token = activate_runtime(session.runtime)
        try:
            yield session
        finally:
            deactivate_runtime(token)
            sdk.destroy_enclave(enclave)


class NativeApplication(_SingleImageApplication):
    """NoSGX baseline: the native image runs directly on the host."""

    @contextmanager
    def start(self) -> Iterator[SingleContextSession]:
        ctx = ExecutionContext(
            self.platform, Location.HOST, self.runtime_kind, label=self.name
        )
        session = self._session(ctx)
        token = activate_runtime(session.runtime)
        try:
            yield session
        finally:
            deactivate_runtime(token)
