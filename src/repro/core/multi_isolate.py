"""Multi-isolate proxy-mirror pairs (the paper's §7 future work).

The base Montsalvat runtime creates one default isolate per side. This
extension lets an application spawn additional isolates on either side
and pin objects to them: "extend our proxy-mirror system to permit
creation and interaction of proxy-mirror object pairs across multiple
isolates in both the trusted and untrusted runtimes".

Each isolate gets its own heap, mirror-proxy registry and proxy
tracker, so garbage collection stays independent per isolate (§2.2).
Hash routing is global per side: a relay can resolve a mirror no matter
which isolate it was pinned to, and proxies to objects in different
isolates coexist on the other side.

Usage::

    runtime = MultiIsolateRuntime(untrusted, trusted, transitions, codec)
    runtime.spawn_isolate(Side.TRUSTED, "crypto")
    with runtime.in_isolate(Side.TRUSTED, "crypto"):
        key = SigningKey(...)       # mirror pinned to 'crypto'
    key.sign(b"payload")            # routed to 'crypto' automatically
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.annotations import Side
from repro.core.gc_helper import GcHelper
from repro.core.hashing import HashStrategy
from repro.core.rmi import RmiRuntime, SideState
from repro.core.serialization import SerializationCodec
from repro.errors import RmiError
from repro.graal.isolate import Isolate
from repro.sgx.transitions import TransitionLayer

DEFAULT_ISOLATE = "default"


class MultiIsolateRuntime(RmiRuntime):
    """RmiRuntime with several isolates per side."""

    def __init__(
        self,
        untrusted: SideState,
        trusted: SideState,
        transitions: Optional[TransitionLayer],
        codec: SerializationCodec,
        hash_strategy: Optional[HashStrategy] = None,
    ) -> None:
        super().__init__(untrusted, trusted, transitions, codec, hash_strategy)
        self._isolates: Dict[Side, Dict[str, SideState]] = {
            Side.UNTRUSTED: {DEFAULT_ISOLATE: untrusted},
            Side.TRUSTED: {DEFAULT_ISOLATE: trusted},
        }
        self._active: Dict[Side, str] = {
            Side.UNTRUSTED: DEFAULT_ISOLATE,
            Side.TRUSTED: DEFAULT_ISOLATE,
        }
        #: Per side: hash -> isolate name, for relay routing.
        self._hash_home: Dict[Side, Dict[int, str]] = {
            Side.UNTRUSTED: {},
            Side.TRUSTED: {},
        }

    # -- isolate management -----------------------------------------------------

    def spawn_isolate(self, side: Side, name: str) -> SideState:
        """Create a fresh isolate on ``side`` (own heap, registry, GC)."""
        isolates = self._isolates[side]
        if name in isolates:
            raise RmiError(f"isolate {name!r} already exists on {side.value}")
        default_state = isolates[DEFAULT_ISOLATE]
        isolate = Isolate(
            f"{side.value}-{name}",
            default_state.ctx,
            max_heap_bytes=default_state.isolate.heap.max_bytes,
        )
        state = SideState.create(side, default_state.ctx, isolate)
        state.registry.name = f"registry.{side.value}.{name}"
        state.tracker.name = f"tracker.{side.value}.{name}"
        isolates[name] = state
        return state

    def isolate_names(self, side: Side) -> Tuple[str, ...]:
        return tuple(sorted(self._isolates[side]))

    def tear_down_isolate(self, side: Side, name: str) -> int:
        """Destroy an isolate; releases every mirror it held.

        Returns the number of mirrors dropped. The default isolate
        cannot be torn down.
        """
        if name == DEFAULT_ISOLATE:
            raise RmiError("the default isolate cannot be torn down")
        try:
            state = self._isolates[side].pop(name)
        except KeyError:
            raise RmiError(f"no isolate {name!r} on {side.value}") from None
        dropped = state.registry.live_count()
        state.registry.clear()
        state.isolate.tear_down()
        homes = self._hash_home[side]
        for dead_hash in [h for h, home in homes.items() if home == name]:
            del homes[dead_hash]
        if self._active[side] == name:
            self._active[side] = DEFAULT_ISOLATE
        return dropped

    @contextmanager
    def in_isolate(self, side: Side, name: str) -> Iterator[SideState]:
        """Pin this block's ``side`` activity to isolate ``name``."""
        if name not in self._isolates[side]:
            raise RmiError(f"no isolate {name!r} on {side.value}; spawn it first")
        previous = self._active[side]
        self._active[side] = name
        try:
            yield self._isolates[side][name]
        finally:
            self._active[side] = previous

    # -- RmiRuntime hooks --------------------------------------------------------

    def state_of(self, side: Side) -> SideState:
        return self._isolates[side][self._active[side]]

    def mirror_state(self, side: Side, remote_hash: int) -> SideState:
        home = self._hash_home[side].get(remote_hash)
        if home is None:
            return self.state_of(side)
        state = self._isolates[side].get(home)
        if state is None:
            raise RmiError(
                f"mirror {remote_hash} was pinned to isolate {home!r}, "
                "which has been torn down"
            )
        return state

    def _register_local_mirror(self, side: Side, state: SideState, value) -> int:
        local_hash = super()._register_local_mirror(side, state, value)
        self._hash_home[side][local_hash] = self._active[side]
        return local_hash

    def _create_remote(self, cls, home, args, kwargs):
        proxy = super()._create_remote(cls, home, args, kwargs)
        # Record which isolate received the mirror (the one active on
        # the home side during the relay).
        self._hash_home[home][proxy._montsalvat_hash] = self._active[home]
        return proxy

    def release_remote(self, dead_side: Side, hashes) -> int:
        released = super().release_remote(dead_side, hashes)
        homes = self._hash_home[dead_side.opposite]
        for dead_hash in hashes:
            homes.pop(dead_hash, None)
        return released

    # -- GC helpers per isolate -----------------------------------------------------

    def scan_isolate(self, side: Side, name: str) -> int:
        """Run a GC-helper scan for one isolate's proxy list."""
        with self.in_isolate(side, name):
            helper = GcHelper(self, side)
            return helper.scan_once()

    def scan_all(self) -> int:
        """Scan every isolate on both sides; returns mirrors released."""
        released = 0
        for side in (Side.UNTRUSTED, Side.TRUSTED):
            for name in list(self._isolates[side]):
                released += self.scan_isolate(side, name)
        return released

    def describe_isolates(self) -> str:
        lines: List[str] = []
        for side in (Side.UNTRUSTED, Side.TRUSTED):
            for name, state in sorted(self._isolates[side].items()):
                lines.append(
                    f"{side.value}/{name}: mirrors={state.registry.live_count()} "
                    f"proxies={state.tracker.live_count()}"
                )
        return "\n".join(lines)


def upgrade_session(session) -> MultiIsolateRuntime:
    """Swap a running session's two-sided runtime for a multi-isolate
    one, preserving the default isolates' state objects.

    The returned runtime is also installed as the session's active
    runtime object for subsequent instantiations.
    """
    from repro.core.annotations import activate_runtime

    base = session.runtime
    runtime = MultiIsolateRuntime(
        untrusted=base.state_of(Side.UNTRUSTED),
        trusted=base.state_of(Side.TRUSTED),
        transitions=base.transitions,
        codec=base.codec,
        hash_strategy=base.hash_strategy,
    )
    runtime.current_side = base.current_side
    session.runtime = runtime
    for helper in session.gc_helpers.values():
        helper.runtime = runtime
    activate_runtime(runtime)
    return runtime
