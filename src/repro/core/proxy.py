"""Proxy classes: stripped stand-ins for remote objects (§5.2).

A proxy exposes the same public methods as the original class, but
every method body is replaced by transition logic that relays the
invocation to the mirror object in the opposite runtime. Fields are
stripped; only the identifying hash remains. Proxies subclass the
original class so ``isinstance`` keeps working across the partition.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Optional, Type

from repro.errors import RmiError

#: Proxy bookkeeping attribute names (slots on the generated classes).
HASH_ATTR = "_montsalvat_hash"
RUNTIME_ATTR = "_montsalvat_runtime"
SIDE_ATTR = "_montsalvat_target_side"

#: Marker set by :func:`repro.batching.batchable`; duplicated here (not
#: imported) so the proxy generator stays a leaf module.
BATCHABLE_ATTR = "__montsalvat_batchable__"

_proxy_class_cache: Dict[type, type] = {}


def is_proxy(obj: Any) -> bool:
    """Is ``obj`` a proxy instance?"""
    return getattr(type(obj), "__is_montsalvat_proxy__", False)


def proxy_hash(obj: Any) -> int:
    """The cross-runtime hash a proxy carries."""
    try:
        return getattr(obj, HASH_ATTR)
    except AttributeError:
        raise RmiError(f"{type(obj).__name__} instance is not a proxy") from None


def make_proxy_class(cls: type) -> type:
    """Build (or fetch from cache) the proxy class for ``cls``.

    Mirrors the bytecode transformer's output (Listings 2 and 3):
    public methods forward through the runtime; private methods are
    stripped and raise if touched; ``__init__`` is unusable because
    proxies are only created by the runtime.
    """
    cached = _proxy_class_cache.get(cls)
    if cached is not None:
        return cached

    namespace: Dict[str, Any] = {
        "__is_montsalvat_proxy__": True,
        "__module__": cls.__module__,
        "__qualname__": f"{cls.__qualname__}Proxy",
        "__doc__": f"Montsalvat proxy for {cls.__name__} (generated).",
        "__init__": _unusable_init,
        "__repr__": _proxy_repr,
        "get_hash": _get_hash,
    }
    for name, member in _all_methods(cls).items():
        if name == "__init__" or name in namespace:
            continue
        if name.startswith("__") and name.endswith("__"):
            continue  # leave object protocol methods alone
        if name.startswith("_"):
            namespace[name] = _stripped_method(cls.__name__, name)
        elif isinstance(member, staticmethod):
            namespace[name] = staticmethod(_forwarding_static(cls, name))
        else:
            forwarder = _forwarding_method(name)
            if getattr(member, BATCHABLE_ATTR, False):
                setattr(forwarder, BATCHABLE_ATTR, True)
            namespace[name] = forwarder

    proxy_cls = type(cls)(f"{cls.__name__}Proxy", (cls,), namespace)
    _proxy_class_cache[cls] = proxy_cls
    return proxy_cls


def construct_proxy(
    cls: type, runtime: Any, target_side: Any, remote_hash: int
) -> Any:
    """Instantiate a proxy without running any constructor."""
    proxy_cls = make_proxy_class(cls)
    proxy = object.__new__(proxy_cls)
    object.__setattr__(proxy, HASH_ATTR, remote_hash)
    object.__setattr__(proxy, RUNTIME_ATTR, runtime)
    object.__setattr__(proxy, SIDE_ATTR, target_side)
    return proxy


# -- generated members ------------------------------------------------------


def _all_methods(cls: type) -> Dict[str, Any]:
    """Methods across the MRO (most-derived wins), excluding object."""
    methods: Dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        for name, member in vars(klass).items():
            if callable(member) or isinstance(member, (staticmethod, classmethod)):
                methods[name] = member
    return methods


def _forwarding_method(name: str):
    def forward(self: Any, *args: Any, **kwargs: Any) -> Any:
        runtime = getattr(self, RUNTIME_ATTR)
        obs = runtime.platform.obs
        if obs is None:
            return runtime.invoke(self, name, args, kwargs)
        with obs.tracer.span(
            "proxy.call", attrs={"class": type(self).__name__, "method": name}
        ):
            return runtime.invoke(self, name, args, kwargs)

    forward.__name__ = name
    forward.__qualname__ = f"proxy.{name}"
    forward.__doc__ = f"Relay {name}() to the mirror in the opposite runtime."
    return forward


def _forwarding_static(cls: type, name: str):
    @functools.wraps(getattr(cls, name))
    def forward(*args: Any, **kwargs: Any) -> Any:
        raise RmiError(
            f"static method {cls.__name__}.{name} must be called on the "
            "annotated class, not on a proxy"
        )

    return forward


def _stripped_method(class_name: str, name: str):
    def stripped(self: Any, *args: Any, **kwargs: Any) -> Any:
        raise RmiError(
            f"{class_name}.{name} is private and was stripped from the "
            "proxy; private members never cross the enclave boundary"
        )

    stripped.__name__ = name
    return stripped


def _unusable_init(self: Any, *args: Any, **kwargs: Any) -> None:
    raise RmiError(
        "proxy classes are instantiated by the Montsalvat runtime, "
        "never directly"
    )


def _proxy_repr(self: Any) -> str:
    side = getattr(self, SIDE_ATTR, None)
    side_name = getattr(side, "value", "?")
    return (
        f"<{type(self).__name__} hash={getattr(self, HASH_ATTR, '?')} "
        f"mirror-side={side_name}>"
    )


def _get_hash(self: Any) -> int:
    """The proxy's identifying hash (Listing 5's ``acc.getHash()``)."""
    return getattr(self, HASH_ATTR)
