"""Partitioner: drives Montsalvat's four-phase workflow (Fig. 1).

1. **Code annotation** — the developer's @trusted/@untrusted decorators
   (already applied to the classes handed in);
2. **Bytecode transformation** — proxy classes and relay methods
   (:mod:`repro.core.transformer`);
3. **Native image partitioning** — two relocatable images built from
   (T ∪ N) and (U ∪ N) with reachability pruning
   (:mod:`repro.graal.builder`);
4. **SGX application creation** — generated EDL + C transition routines
   linked with the trusted image, the shim library and the GraalVM
   native libraries into the signed enclave object
   (:mod:`repro.core.codegen`, :mod:`repro.sgx.sdk`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.annotations import trust_of
from repro.core.app import PartitionedApplication, UnpartitionedApplication
from repro.core.codegen import SgxArtifacts, SgxCodeGenerator
from repro.core.hashing import HashStrategy, IdentityHashStrategy
from repro.core.transformer import BytecodeTransformer, TransformResult
from repro.costs.machine import GB
from repro.costs.platform import Platform, fresh_platform
from repro.errors import PartitionError
from repro.graal.builder import BuildOptions, LinkMode, NativeImageBuilder
from repro.graal.extraction import extract_classes
from repro.graal.image import NativeImage
from repro.graal.jtypes import TrustLevel
from repro.sgx.enclave import EnclaveConfig


@dataclass
class PartitionOptions:
    """Knobs for the partitioning pipeline."""

    name: str = "montsalvat_app"
    image_heap_max_bytes: int = 2 * GB  # §6.1: images built with 2 GB heaps
    enclave_config: EnclaveConfig = field(default_factory=EnclaveConfig)
    switchless: bool = False  # future-work extension (§7)
    gc_helper_period_s: float = 1.0
    hash_strategy_factory: type = IdentityHashStrategy
    #: Cache repeated serializations by identity (micro-benchmarks only).
    memoize_serialization: bool = False
    #: Use the explicit wire format instead of pickle for neutral
    #: arguments: the decoder executes no code at the enclave boundary,
    #: but only plain data types are supported.
    wire_format: bool = False


@dataclass(frozen=True)
class PartitionedImages:
    """Output of phase 3: the two relocatable object files."""

    trusted: NativeImage
    untrusted: NativeImage

    @property
    def trusted_artifact(self) -> str:
        return self.trusted.artifact_name  # "…-trusted.o"

    @property
    def untrusted_artifact(self) -> str:
        return self.untrusted.artifact_name


def collect_build_time_init(classes: Sequence[type]):
    """Gather ``__build_init__`` hooks: §2.2's build-time initialisation.

    A class may define ``__build_init__(image_heap)`` as a classmethod;
    it runs during the image build and stores its results in the image
    heap, which is memory-mapped back at startup — "initialize once,
    start fast".
    """
    hooks = [
        cls for cls in classes if callable(getattr(cls, "__build_init__", None))
    ]
    if not hooks:
        return None

    def run(image_heap) -> None:
        for cls in hooks:
            cls.__build_init__(image_heap)

    return run


class Partitioner:
    """End-to-end pipeline from annotated classes to an SGX application."""

    def __init__(self, options: Optional[PartitionOptions] = None) -> None:
        self.options = options or PartitionOptions()
        self.transformer = BytecodeTransformer()

    def partition(
        self,
        classes: Sequence[type],
        main: Optional[str] = None,
        platform: Optional[Platform] = None,
        lint: bool = False,
    ) -> PartitionedApplication:
        """Partition annotated ``classes`` into a runnable SGX application.

        ``main`` is the untrusted ``"Class.method"`` entry point; when
        omitted, the untrusted image is entered through its relay
        methods only. ``lint=True`` runs the static partition linter
        (:mod:`repro.analysis`) first and refuses to build on
        error-severity findings.
        """
        platform = platform or fresh_platform()
        ir = extract_classes(classes)
        self._validate(classes)
        if lint:
            self._lint(classes)

        result = self.transformer.transform(ir, main_entry=main)
        images = self.build_images(result, classes)
        artifacts = SgxCodeGenerator(self.options.name).generate(result)
        enclave_code = self._link_enclave(images.trusted, artifacts)

        return PartitionedApplication(
            platform=platform,
            name=self.options.name,
            classes=tuple(classes),
            transform=result,
            images=images,
            artifacts=artifacts,
            enclave_code=enclave_code,
            options=self.options,
        )

    def unpartitioned(
        self,
        classes: Sequence[type],
        main: Optional[str] = None,
        platform: Optional[Platform] = None,
    ) -> UnpartitionedApplication:
        """§5.6: run the whole application as one in-enclave image.

        No annotations are required and no bytecode is modified; the
        single image is linked entirely into the enclave object.
        """
        platform = platform or fresh_platform()
        ir = extract_classes(classes)
        universe_builder = NativeImageBuilder(
            BuildOptions(
                max_heap_bytes=self.options.image_heap_max_bytes,
                link_mode=LinkMode.RELOCATABLE,
            )
        )
        entry_points = [main] if main else self._all_public_entry_points(ir)
        from repro.graal.jtypes import ClassUniverse

        image = universe_builder.build(
            f"{self.options.name}-single",
            ClassUniverse(ir),
            entry_points,
            build_time_init=collect_build_time_init(classes),
        )
        return UnpartitionedApplication(
            platform=platform,
            name=self.options.name,
            classes=tuple(classes),
            image=image,
            options=self.options,
        )

    # -- phase 3 ----------------------------------------------------------------

    def build_images(
        self, result: TransformResult, classes: Sequence[type] = ()
    ) -> PartitionedImages:
        builder = NativeImageBuilder(
            BuildOptions(
                max_heap_bytes=self.options.image_heap_max_bytes,
                link_mode=LinkMode.RELOCATABLE,
            )
        )
        trusted_inits = [c for c in classes if trust_of(c) is TrustLevel.TRUSTED]
        untrusted_inits = [c for c in classes if trust_of(c) is not TrustLevel.TRUSTED]
        trusted = builder.build(
            f"{self.options.name}-trusted",
            result.trusted_universe,
            result.trusted_entry_points,
            build_time_init=collect_build_time_init(trusted_inits),
        )
        untrusted = builder.build(
            f"{self.options.name}-untrusted",
            result.untrusted_universe,
            result.untrusted_entry_points,
            build_time_init=collect_build_time_init(untrusted_inits),
        )
        return PartitionedImages(trusted=trusted, untrusted=untrusted)

    # -- phase 4 ----------------------------------------------------------------

    def _link_enclave(self, trusted_image: NativeImage, artifacts: SgxArtifacts) -> bytes:
        """Link trusted.o + generated ecalls + shim + GraalVM libs into
        the enclave shared object (returned as measurable bytes)."""
        shim_stub = b"montsalvat-shim-libc-v1"
        generated = "".join(
            artifacts[name] for name in artifacts.names()
        ).encode("utf-8")
        return trusted_image.code_bytes + generated + shim_stub

    # -- validation ----------------------------------------------------------------

    def _validate(self, classes: Sequence[type]) -> None:
        names = [cls.__name__ for cls in classes]
        if len(set(names)) != len(names):
            raise PartitionError("duplicate class names in the application")
        trusted = [c for c in classes if trust_of(c) is TrustLevel.TRUSTED]
        if not trusted:
            raise PartitionError(
                "partitioning requires at least one @trusted class; use "
                "Partitioner.unpartitioned() for enclave-only images (§5.6)"
            )

    def _lint(self, classes: Sequence[type]) -> None:
        """Refuse to build when the partition linter finds errors."""
        from repro.analysis import PartitionLinter, Severity

        result = PartitionLinter().lint(classes)
        errors = [
            d for d in result.diagnostics if d.severity is Severity.ERROR
        ]
        if errors:
            summary = "; ".join(
                f"{d.code} {d.location}: {d.message}" for d in errors[:5]
            )
            if len(errors) > 5:
                summary += f"; ... {len(errors) - 5} more"
            raise PartitionError(
                f"partition linter found {len(errors)} error(s): {summary} "
                "(run 'python -m repro lint' for the full report)"
            )

    def _all_public_entry_points(self, ir) -> list:
        entries = []
        for jclass in ir.values():
            for method in jclass.public_methods():
                entries.append(method.qualified_name)
        if not entries:
            raise PartitionError("no public methods to use as entry points")
        return entries
