"""Shim libc: relaying unsupported calls out of the enclave (§5.4).

Enclaves run in user mode and cannot issue syscalls. Rather than
embedding a library OS, Montsalvat redefines unsupported libc routines
as ocall wrappers — the *shim library* — and a *shim helper* outside
the enclave invokes the real libc. This keeps the TCB small.

Here the shim performs **real file I/O** (so applications produce real
artifacts) while charging the execution context: when the bound context
is an enclave context, every routine pays the ocall relay; on the host
it pays only the syscall.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ShimError
from repro.runtime.context import ExecutionContext

#: Fresh mmap'd bytes (per enclave context) that trigger one page-in
#: relay: enclaves cannot map untrusted files directly, so every fresh
#: page of a mapped file faults through the untrusted runtime once.
_MMAP_PAGE_IN_BYTES = 4 * 1024


@dataclass
class ShimStats:
    """Calls relayed by this shim instance."""

    opens: int = 0
    reads: int = 0
    writes: int = 0
    seeks: int = 0
    closes: int = 0
    mmaps: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class ShimFile:
    """A libc FILE* analog backed by a real file descriptor."""

    def __init__(self, libc: "ShimLibc", path: str, mode: str) -> None:
        self._libc = libc
        self.path = path
        self._handle = open(path, mode)
        self._closed = False

    def write(self, data: bytes) -> int:
        self._require_open()
        self._libc.ctx.syscall(payload_bytes=len(data), name="write")
        self._libc.stats.writes += 1
        self._libc.stats.bytes_written += len(data)
        return self._handle.write(data)

    def read(self, nbytes: int = -1) -> bytes:
        self._require_open()
        data = self._handle.read(nbytes)
        self._libc.ctx.syscall(payload_bytes=len(data), name="read")
        self._libc.stats.reads += 1
        self._libc.stats.bytes_read += len(data)
        return data

    def seek(self, offset: int) -> None:
        self._require_open()
        self._libc.ctx.syscall(name="lseek")
        self._libc.stats.seeks += 1
        self._handle.seek(offset)

    def flush(self) -> None:
        self._require_open()
        self._libc.ctx.syscall(name="fsync")
        self._handle.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._libc.ctx.syscall(name="close")
        self._libc.stats.closes += 1
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ShimFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ShimError(f"file {self.path!r} already closed")


class MappedFile:
    """An mmap'd read view of a file (PalDB's read path)."""

    def __init__(self, libc: "ShimLibc", path: str) -> None:
        self._libc = libc
        self.path = path
        libc.ctx.mmap()
        libc.stats.mmaps += 1
        with open(path, "rb") as handle:
            self._data = handle.read()
        self._fresh_bytes = 0

    def read(self, offset: int, nbytes: int) -> bytes:
        """Random-access read through the mapping.

        Charges MEE-aware memory traffic at cache-line granularity
        (256 B minimum inside the enclave, one 64 B line outside);
        inside the enclave, fresh pages periodically fault through a
        page-in relay.
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self._data):
            raise ShimError(
                f"mmap read out of bounds: [{offset}, {offset + nbytes}) "
                f"of {len(self._data)}"
            )
        min_charge = 256 if self._libc.ctx.in_enclave else 64
        self._libc.ctx.memory_traffic(max(nbytes, min_charge), ws_bytes=len(self._data))
        if self._libc.ctx.in_enclave:
            self._fresh_bytes += nbytes
            while self._fresh_bytes >= _MMAP_PAGE_IN_BYTES:
                self._fresh_bytes -= _MMAP_PAGE_IN_BYTES
                self._libc.ctx.syscall(
                    payload_bytes=self._libc.ctx.platform.spec.page_bytes,
                    name="page_in",
                )
        return self._data[offset : offset + nbytes]

    @property
    def size(self) -> int:
        return len(self._data)


class ShimLibc:
    """The libc surface the applications use.

    Bind one instance per execution context: the enclave-side instance
    *is* the shim library (every call relays out); the host-side
    instance is the shim helper calling the real libc directly.
    """

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.stats = ShimStats()

    def fopen(self, path: str, mode: str = "rb") -> ShimFile:
        self.ctx.file_open()
        self.stats.opens += 1
        return ShimFile(self, path, mode)

    def mmap_file(self, path: str) -> MappedFile:
        if not os.path.exists(path):
            raise ShimError(f"cannot mmap missing file {path!r}")
        return MappedFile(self, path)

    def unlink(self, path: str) -> None:
        self.ctx.syscall(name="unlink")
        if os.path.exists(path):
            os.unlink(path)

    def __repr__(self) -> str:
        return f"ShimLibc(ctx={self.ctx.location.value}, stats={self.stats})"
