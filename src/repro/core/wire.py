"""Wire format for neutral objects crossing the enclave boundary.

Java serialization writes a self-describing stream (magic, type tags,
length-prefixed payloads). This module implements the equivalent for
the neutral types Montsalvat applications exchange — ``None``, bools,
ints, floats, strings, bytes, lists, tuples, dicts, sets and nested
combinations — with an explicit, versioned format:

    stream  := MAGIC(2) VERSION(1) value
    value   := tag(1) payload
    ints    := zigzag varint
    floats  := IEEE-754 big-endian 8 bytes
    str/bytes := varint length + data
    list/tuple/set := varint count + values
    dict    := varint count + (key value)*

Unlike pickle, the decoder executes no code whatsoever — a sanitisation
property worth having at an enclave boundary. The default
:class:`~repro.core.serialization.SerializationCodec` can be backed by
this format via ``WireCodec``.

Two encode/decode surfaces share one encoder:

- :func:`dumps` / :func:`loads` — classic copying round trip over
  ``bytes``;
- :func:`dumps_into` / :func:`loads_inplace` — the zero-copy fast
  path: the value is encoded **once**, straight into a pinned untrusted
  :class:`~repro.core.arena.SharedBufferArena`, and the enclave decodes
  from a generation-checked borrowed view without the payload ever
  being re-encoded or copied across the boundary. Decoded strings and
  byte payloads are always materialised (never aliased into the arena),
  so reclaiming the region can never corrupt a decoded value.

The encoder appends into a single ``bytearray`` (no per-token ``bytes``
objects, no join) and the scalar paths are dispatched by exact type —
this module sits on the hot path of every crossing, and the simulator's
wall-clock throughput tracks it directly.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import SerializationError

MAGIC = b"\xac\x3d"  # cf. Java's 0xACED stream magic
VERSION = 1

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_TUPLE = 0x08
_TAG_DICT = 0x09
_TAG_SET = 0x0A
# Secure values (repro.core.secure): label + provenance chain + inner
# value. Tags 0x00-0x0A are frozen; plain payloads never emit 0x0B, so
# pre-secure-value streams are byte-identical.
_TAG_SECURE = 0x0B

_MAX_DEPTH = 64

_HEADER = MAGIC + bytes([VERSION])

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack


def dumps(value: Any) -> bytes:
    """Serialize a neutral value into the wire format."""
    out = bytearray(_HEADER)
    _write(out, value, 0)
    return bytes(out)


def dumps_into(value: Any, arena: Any) -> Any:
    """Encode ``value`` once, directly into ``arena``.

    Returns the arena's :class:`~repro.core.arena.BorrowedView` over
    the staged region. The bytes laid down are exactly what
    :func:`dumps` would produce — :func:`loads` over a copy and
    :func:`loads_inplace` over the view decode identically.
    """
    out = bytearray(_HEADER)
    _write(out, value, 0)
    return arena.write(out)


def loads(data: Any) -> Any:
    """Deserialize a wire-format buffer. Executes no code."""
    n = len(data)
    if n < 3:
        raise SerializationError("wire buffer too short")
    if data[:2] != MAGIC:
        raise SerializationError("bad wire magic")
    if data[2] != VERSION:
        raise SerializationError(f"unsupported wire version {data[2]}")
    value, offset = _read(data, 3, 0)
    if offset != n:
        raise SerializationError(f"{n - offset} trailing bytes after wire value")
    return value


def loads_inplace(view: Any) -> Any:
    """Decode a value from a borrowed arena view, in place.

    The view is validated against its arena first (live region, same
    generation) — a truncated, overlapping, fabricated or stale view
    raises a typed :class:`SerializationError` subclass before a single
    payload byte is interpreted. No intermediate buffer is built; the
    decoder walks the pinned region directly, materialising (copying)
    only the decoded strings/bytes so nothing aliases the region after
    reclaim.
    """
    data = view.acquire()
    n = len(data)
    if n < 3:
        raise SerializationError("wire buffer too short")
    if bytes(data[:2]) != MAGIC:
        raise SerializationError("bad wire magic")
    if data[2] != VERSION:
        raise SerializationError(f"unsupported wire version {data[2]}")
    value, offset = _read(data, 3, 0)
    if offset != n:
        raise SerializationError(f"{n - offset} trailing bytes after wire value")
    return value


# -- encoding ---------------------------------------------------------------
#
# One bytearray accumulator, exact-type dispatch for the common scalars
# and containers, an isinstance fallback for subclasses (IntEnum and
# friends) and secure values. Every writer appends tag + payload in one
# pass — the value is encoded exactly once per dumps()/dumps_into().


def _append_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError("varints are unsigned")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_none(out: bytearray, value: Any, depth: int) -> None:
    out.append(_TAG_NONE)


def _write_bool(out: bytearray, value: Any, depth: int) -> None:
    out.append(_TAG_TRUE if value else _TAG_FALSE)


def _write_int(out: bytearray, value: int, depth: int) -> None:
    out.append(_TAG_INT)
    raw = ~(value << 1) if value < 0 else value << 1
    while raw > 0x7F:
        out.append((raw & 0x7F) | 0x80)
        raw >>= 7
    out.append(raw)


def _write_float(out: bytearray, value: float, depth: int) -> None:
    out.append(_TAG_FLOAT)
    out += _pack_double(value)


def _write_str(out: bytearray, value: str, depth: int) -> None:
    encoded = value.encode("utf-8")
    out.append(_TAG_STR)
    _append_varint(out, len(encoded))
    out += encoded


def _write_bytes(out: bytearray, value: bytes, depth: int) -> None:
    out.append(_TAG_BYTES)
    _append_varint(out, len(value))
    out += value


def _write_list(out: bytearray, value: list, depth: int) -> None:
    out.append(_TAG_LIST)
    _append_varint(out, len(value))
    depth += 1
    for item in value:
        _write(out, item, depth)


def _write_tuple(out: bytearray, value: tuple, depth: int) -> None:
    out.append(_TAG_TUPLE)
    _append_varint(out, len(value))
    depth += 1
    for item in value:
        _write(out, item, depth)


def _write_set(out: bytearray, value: set, depth: int) -> None:
    # Deterministic order so equal sets encode identically.
    try:
        ordered = sorted(value)
    except TypeError:
        ordered = sorted(value, key=repr)
    out.append(_TAG_SET)
    _append_varint(out, len(ordered))
    depth += 1
    for item in ordered:
        _write(out, item, depth)


def _write_dict(out: bytearray, value: dict, depth: int) -> None:
    out.append(_TAG_DICT)
    _append_varint(out, len(value))
    depth += 1
    for key, item in value.items():
        _write(out, key, depth)
        _write(out, item, depth)


_WRITERS = {
    type(None): _write_none,
    bool: _write_bool,
    int: _write_int,
    float: _write_float,
    str: _write_str,
    bytes: _write_bytes,
    list: _write_list,
    tuple: _write_tuple,
    set: _write_set,
    dict: _write_dict,
}


def _write(out: bytearray, value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("wire value nests too deeply")
    writer = _WRITERS.get(type(value))
    if writer is not None:
        writer(out, value, depth)
    else:
        _write_other(out, value, depth)


def _write_other(out: bytearray, value: Any, depth: int) -> None:
    """Subclass / secure-value fallback, mirroring the dispatch table's
    order so e.g. an IntEnum still encodes as a plain int."""
    if isinstance(value, bool):
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, int):
        _write_int(out, int(value), depth)
    elif isinstance(value, float):
        _write_float(out, float(value), depth)
    elif isinstance(value, str):
        _write_str(out, value, depth)
    elif isinstance(value, bytes):
        _write_bytes(out, value, depth)
    elif isinstance(value, list):
        _write_list(out, value, depth)
    elif isinstance(value, tuple):
        _write_tuple(out, value, depth)
    elif isinstance(value, set):
        _write_set(out, value, depth)
    elif isinstance(value, dict):
        _write_dict(out, value, depth)
    elif _is_secure_value(value):
        out.append(_TAG_SECURE)
        label = value.label.encode("utf-8")
        _append_varint(out, len(label))
        out += label
        _append_varint(out, len(value.provenance))
        for step in value.provenance:
            encoded = step.encode("utf-8")
            _append_varint(out, len(encoded))
            out += encoded
        _write(out, value.value, depth + 1)
    else:
        raise SerializationError(
            f"type {type(value).__name__} is not a neutral wire type; "
            "annotate its class or convert it to plain data"
        )


def _is_secure_value(value: Any) -> bool:
    # Imported lazily so the wire module stays usable on its own and
    # pays nothing on the plain-payload fast path (all prior branches
    # miss before this one is even consulted).
    from repro.core.secure import SecureValue

    return isinstance(value, SecureValue)


def _read_utf8(data: Any, offset: int) -> Tuple[str, int]:
    length, offset = _decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise SerializationError("truncated secure-value string")
    payload = data[offset:end]
    if type(payload) is not bytes:
        payload = bytes(payload)
    try:
        return payload.decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise SerializationError(f"invalid utf-8 in wire string: {exc}")


# -- decoding ---------------------------------------------------------------


def _read(data: Any, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise SerializationError("wire value nests too deeply")
    if offset >= len(data):
        raise SerializationError("truncated wire value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _decode_varint(data, offset)
        return (raw >> 1) ^ -(raw & 1), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise SerializationError("truncated float")
        return _unpack_double(data[offset : offset + 8])[0], offset + 8
    if tag == _TAG_STR or tag == _TAG_BYTES:
        length, offset = _decode_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated string/bytes payload")
        payload = data[offset:end]
        if type(payload) is not bytes:
            # In-place decode over a memoryview: materialise the bytes
            # so the decoded value never aliases the (reclaimable)
            # arena region.
            payload = bytes(payload)
        if tag == _TAG_STR:
            try:
                return payload.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise SerializationError(f"invalid utf-8 in wire string: {exc}")
        return payload, end
    if tag == _TAG_LIST or tag == _TAG_TUPLE or tag == _TAG_SET:
        count, offset = _decode_varint(data, offset)
        items = []
        depth += 1
        for _ in range(count):
            item, offset = _read(data, offset, depth)
            items.append(item)
        if tag == _TAG_TUPLE:
            return tuple(items), offset
        if tag == _TAG_SET:
            try:
                return set(items), offset
            except TypeError as exc:
                raise SerializationError(
                    f"unhashable set element in wire data: {exc}"
                )
        return items, offset
    if tag == _TAG_SECURE:
        from repro.core.secure import SecureValue

        label, offset = _read_utf8(data, offset)
        count, offset = _decode_varint(data, offset)
        steps = []
        for _ in range(count):
            step, offset = _read_utf8(data, offset)
            steps.append(step)
        inner, offset = _read(data, offset, depth + 1)
        return SecureValue(value=inner, label=label, provenance=tuple(steps)), offset
    if tag == _TAG_DICT:
        count, offset = _decode_varint(data, offset)
        result = {}
        depth += 1
        for _ in range(count):
            key, offset = _read(data, offset, depth)
            item, offset = _read(data, offset, depth)
            try:
                result[key] = item
            except TypeError as exc:
                raise SerializationError(
                    f"unhashable dict key in wire data: {exc}"
                )
        return result, offset
    raise SerializationError(f"unknown wire tag {tag:#x}")


# -- varints -----------------------------------------------------------------


def _zigzag(value: int) -> int:
    return ~(value << 1) if value < 0 else value << 1


def _unzigzag(raw: int) -> int:
    return (raw >> 1) ^ -(raw & 1)


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    _append_varint(out, value)
    return bytes(out)


def _decode_varint(data: Any, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    n = len(data)
    while True:
        if offset >= n:
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 700:
            raise SerializationError("varint too long")
