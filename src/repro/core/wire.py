"""Wire format for neutral objects crossing the enclave boundary.

Java serialization writes a self-describing stream (magic, type tags,
length-prefixed payloads). This module implements the equivalent for
the neutral types Montsalvat applications exchange — ``None``, bools,
ints, floats, strings, bytes, lists, tuples, dicts, sets and nested
combinations — with an explicit, versioned format:

    stream  := MAGIC(2) VERSION(1) value
    value   := tag(1) payload
    ints    := zigzag varint
    floats  := IEEE-754 big-endian 8 bytes
    str/bytes := varint length + data
    list/tuple/set := varint count + values
    dict    := varint count + (key value)*

Unlike pickle, the decoder executes no code whatsoever — a sanitisation
property worth having at an enclave boundary. The default
:class:`~repro.core.serialization.SerializationCodec` can be backed by
this format via ``WireCodec``.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import SerializationError

MAGIC = b"\xac\x3d"  # cf. Java's 0xACED stream magic
VERSION = 1

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_TUPLE = 0x08
_TAG_DICT = 0x09
_TAG_SET = 0x0A
# Secure values (repro.core.secure): label + provenance chain + inner
# value. Tags 0x00-0x0A are frozen; plain payloads never emit 0x0B, so
# pre-secure-value streams are byte-identical.
_TAG_SECURE = 0x0B

_MAX_DEPTH = 64


def dumps(value: Any) -> bytes:
    """Serialize a neutral value into the wire format."""
    out: List[bytes] = [MAGIC, bytes([VERSION])]
    _write(out, value, depth=0)
    return b"".join(out)


def loads(data: bytes) -> Any:
    """Deserialize a wire-format buffer. Executes no code."""
    if len(data) < 3:
        raise SerializationError("wire buffer too short")
    if data[:2] != MAGIC:
        raise SerializationError("bad wire magic")
    if data[2] != VERSION:
        raise SerializationError(f"unsupported wire version {data[2]}")
    value, offset = _read(data, 3, depth=0)
    if offset != len(data):
        raise SerializationError(
            f"{len(data) - offset} trailing bytes after wire value"
        )
    return value


# -- encoding ---------------------------------------------------------------


def _write(out: List[bytes], value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("wire value nests too deeply")
    if value is None:
        out.append(bytes([_TAG_NONE]))
    elif value is True:
        out.append(bytes([_TAG_TRUE]))
    elif value is False:
        out.append(bytes([_TAG_FALSE]))
    elif isinstance(value, int):
        out.append(bytes([_TAG_INT]))
        out.append(_encode_varint(_zigzag(value)))
    elif isinstance(value, float):
        out.append(bytes([_TAG_FLOAT]))
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(bytes([_TAG_STR]))
        out.append(_encode_varint(len(encoded)))
        out.append(encoded)
    elif isinstance(value, bytes):
        out.append(bytes([_TAG_BYTES]))
        out.append(_encode_varint(len(value)))
        out.append(value)
    elif isinstance(value, list):
        _write_sequence(out, _TAG_LIST, value, depth)
    elif isinstance(value, tuple):
        _write_sequence(out, _TAG_TUPLE, value, depth)
    elif isinstance(value, set):
        # Deterministic order so equal sets encode identically.
        try:
            ordered = sorted(value)
        except TypeError:
            ordered = sorted(value, key=repr)
        _write_sequence(out, _TAG_SET, ordered, depth)
    elif isinstance(value, dict):
        out.append(bytes([_TAG_DICT]))
        out.append(_encode_varint(len(value)))
        for key, item in value.items():
            _write(out, key, depth + 1)
            _write(out, item, depth + 1)
    elif _is_secure_value(value):
        out.append(bytes([_TAG_SECURE]))
        label = value.label.encode("utf-8")
        out.append(_encode_varint(len(label)))
        out.append(label)
        out.append(_encode_varint(len(value.provenance)))
        for step in value.provenance:
            encoded = step.encode("utf-8")
            out.append(_encode_varint(len(encoded)))
            out.append(encoded)
        _write(out, value.value, depth + 1)
    else:
        raise SerializationError(
            f"type {type(value).__name__} is not a neutral wire type; "
            "annotate its class or convert it to plain data"
        )


def _is_secure_value(value: Any) -> bool:
    # Imported lazily so the wire module stays usable on its own and
    # pays nothing on the plain-payload fast path (all prior branches
    # miss before this one is even consulted).
    from repro.core.secure import SecureValue

    return isinstance(value, SecureValue)


def _read_utf8(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = _decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise SerializationError("truncated secure-value string")
    try:
        return data[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise SerializationError(f"invalid utf-8 in wire string: {exc}")


def _write_sequence(out: List[bytes], tag: int, items, depth: int) -> None:
    out.append(bytes([tag]))
    out.append(_encode_varint(len(items)))
    for item in items:
        _write(out, item, depth + 1)


# -- decoding ---------------------------------------------------------------


def _read(data: bytes, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise SerializationError("wire value nests too deeply")
    if offset >= len(data):
        raise SerializationError("truncated wire value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _decode_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise SerializationError("truncated float")
        return struct.unpack(">d", data[offset : offset + 8])[0], offset + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        length, offset = _decode_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated string/bytes payload")
        payload = data[offset:end]
        if tag == _TAG_STR:
            try:
                return payload.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise SerializationError(f"invalid utf-8 in wire string: {exc}")
        return payload, end
    if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET):
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _read(data, offset, depth + 1)
            items.append(item)
        if tag == _TAG_TUPLE:
            return tuple(items), offset
        if tag == _TAG_SET:
            try:
                return set(items), offset
            except TypeError as exc:
                raise SerializationError(
                    f"unhashable set element in wire data: {exc}"
                )
        return items, offset
    if tag == _TAG_SECURE:
        from repro.core.secure import SecureValue

        label, offset = _read_utf8(data, offset)
        count, offset = _decode_varint(data, offset)
        steps = []
        for _ in range(count):
            step, offset = _read_utf8(data, offset)
            steps.append(step)
        inner, offset = _read(data, offset, depth + 1)
        return SecureValue(value=inner, label=label, provenance=tuple(steps)), offset
    if tag == _TAG_DICT:
        count, offset = _decode_varint(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _read(data, offset, depth + 1)
            item, offset = _read(data, offset, depth + 1)
            try:
                result[key] = item
            except TypeError as exc:
                raise SerializationError(
                    f"unhashable dict key in wire data: {exc}"
                )
        return result, offset
    raise SerializationError(f"unknown wire tag {tag:#x}")


# -- varints -----------------------------------------------------------------


def _zigzag(value: int) -> int:
    return ~(value << 1) if value < 0 else value << 1


def _unzigzag(raw: int) -> int:
    return (raw >> 1) ^ -(raw & 1)


def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise SerializationError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 700:
            raise SerializationError("varint too long")
