"""Serialization codec for neutral objects crossing the boundary (§5.2).

Neutral-class instances (strings, lists, application utility objects)
are serialized into byte buffers, copied across the enclave boundary,
and deserialized in the opposite runtime. The codec performs real
(pickle) round trips and charges the cost model; serialization executed
*inside* the enclave pays an extra multiplier because the buffers
stream through the MEE — the asymmetry behind Fig. 4b's 10x vs 3x.
"""

from __future__ import annotations

import pickle
from typing import Any, Tuple

from repro.costs.platform import Platform
from repro.errors import SerializationError
from repro.runtime.context import Location


class SerializationCodec:
    """Pickle-based codec with cost accounting.

    ``memoize=True`` caches the encoded buffer per value identity: the
    cost model is still charged on every call, but the byte work runs
    once. Micro-benchmarks that re-send one large payload thousands of
    times (Fig. 4) enable this; it is unsafe if a cached value is
    mutated between sends, so it stays off by default.
    """

    def __init__(self, platform: Platform, memoize: bool = False) -> None:
        self.platform = platform
        self._memoize = memoize
        self._cache: dict = {}

    # -- encoding -------------------------------------------------------------

    def serialize(self, value: Any, location: Location) -> bytes:
        """Serialize ``value`` at ``location``; charges the cost model."""
        buffer = self._cache.get(id(value)) if self._memoize else None
        if buffer is None:
            try:
                buffer = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise SerializationError(
                    f"value of type {type(value).__name__} is not serialisable; "
                    "annotate its class or make it picklable"
                ) from exc
            if self._memoize:
                if len(self._cache) > 64:
                    self._cache.clear()
                self._cache[id(value)] = buffer
        self._charge_codec("encode", "serialize", len(buffer), location)
        return buffer

    def deserialize(self, buffer: bytes, location: Location) -> Any:
        """Deserialize at ``location``; charges the cost model."""
        cached = self._cache.get(buffer) if self._memoize else None
        if cached is not None:
            value = cached
        else:
            try:
                value = pickle.loads(buffer)
            except Exception as exc:
                raise SerializationError(
                    f"corrupt serialized buffer: {exc}"
                ) from exc
            if self._memoize and len(buffer) > 1024:
                self._cache[buffer] = value
        self._charge_codec("decode", "deserialize", len(buffer), location)
        return value

    def codec_cycles(
        self, direction: str, nbytes: int, location: Location
    ) -> float:
        """The classic cost formula for one encode/decode, in cycles.

        Exposed separately from :meth:`_charge_codec` so the zero-copy
        arena can account exactly what a crossing *would* have paid
        without charging it (the differential ledger's ``saved`` side).
        """
        rmi = self.platform.cost_model.rmi
        per_byte = (
            rmi.serialize_byte_cycles
            if direction == "serialize"
            else rmi.deserialize_byte_cycles
        )
        cycles = rmi.serialize_fixed_cycles + nbytes * per_byte
        if location is Location.ENCLAVE:
            multiplier = (
                rmi.enclave_serialize_multiplier
                if direction == "serialize"
                else rmi.enclave_deserialize_multiplier
            )
            cycles *= multiplier
        return cycles

    def _charge_codec(
        self, op: str, direction: str, nbytes: int, location: Location
    ) -> None:
        """Charge one encode/decode, wrapped in a ``ser.*`` span.

        The span covers exactly the virtual time the codec charges; the
        actual byte work happens outside it (it costs no virtual time).
        """
        cycles = self.codec_cycles(direction, nbytes, location)
        category = f"rmi.{direction}.{location.value}"
        obs = self.platform.obs
        if obs is None:
            self.platform.charge_cycles(category, cycles)
            return
        with obs.tracer.span(
            f"ser.{op}", attrs={"bytes": nbytes, "location": location.value}
        ):
            self.platform.charge_cycles(category, cycles)
        obs.metrics.counter(f"ser.{op}s").inc()
        obs.metrics.counter(f"ser.{op}d_bytes").inc(nbytes)

    def measure(self, value: Any) -> int:
        """Size in bytes ``value`` would serialize to (no cost charged)."""
        try:
            return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception as exc:
            raise SerializationError(
                f"value of type {type(value).__name__} is not serialisable"
            ) from exc

class WireSerializationCodec(SerializationCodec):
    """Codec backed by the explicit wire format (:mod:`repro.core.wire`).

    Safer at the enclave boundary than pickle — the decoder never
    executes code — at the price of supporting only plain data types
    for neutral arguments. Enable with
    ``PartitionOptions(wire_format=True)``.
    """

    def serialize(self, value: Any, location: Location) -> bytes:
        from repro.core import wire

        buffer = self._cache.get(id(value)) if self._memoize else None
        if buffer is None:
            buffer = wire.dumps(value)
            if self._memoize:
                if len(self._cache) > 64:
                    self._cache.clear()
                self._cache[id(value)] = buffer
        self._charge_codec("encode", "serialize", len(buffer), location)
        return buffer

    def deserialize(self, buffer: bytes, location: Location) -> Any:
        from repro.core import wire

        value = wire.loads(buffer)
        self._charge_codec("decode", "deserialize", len(buffer), location)
        return value

    def measure(self, value: Any) -> int:
        from repro.core import wire

        return len(wire.dumps(value))


def round_trip(codec: SerializationCodec, value: Any, location: Location) -> Tuple[Any, int]:
    """Serialize then deserialize; returns (value', buffer size)."""
    buffer = codec.serialize(value, location)
    return codec.deserialize(buffer, location), len(buffer)
