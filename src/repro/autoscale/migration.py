"""Sealed live migration of keyed trusted state between shards.

SecureKeeper-style deployments stay elastic by moving sealed state
between enclave replicas; Montsalvat prices every ingredient of that
move — the capture relay into the source shard, ``sgx.seal`` /
``sgx.unseal`` on the blob, the restore relay into the target — so
migration cost is a first-class ledger line, not hand-waving.

The :class:`ShardMigrator` owns a registry of **managed keys**: each
key has a factory (build a fresh object pinned to a shard), a capture
(read its migratable state through ordinary priced crossings) and an
apply (write that state into a fresh object). Sealing goes through a
:class:`~repro.faults.CheckpointManager`, one entry per key, so
"restore from sealed state" on scale-up and crash-rebuild during
migration share one code path and one pricing.

Chaos safety is the contract: a seeded shard loss *mid-migration*
(fault rules with ``call_kind="shard"`` and routine
``migrate.<key>``) either completes the move from the sealed blob or
rolls it back — the key's owning object is swapped only after the
restore lands, so acked state is never lost and never applied twice.
Retries observe the :class:`~repro.faults.RetryPolicy`'s per-call
deadline and total virtual-time retry budget
(:class:`~repro.faults.RetryBudget`); exhausting either rolls the
migration back instead of retrying forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.multi_isolate import DEFAULT_ISOLATE
from repro.errors import ConfigurationError, ReproError, RetryExhaustedError
from repro.faults.checkpoint import CheckpointManager
from repro.faults.retry import RetryBudget, RetryPolicy
from repro.sgx.attestation import AttestationService
from repro.sgx.sealing import SealingService

#: Fixed cost of the local attestation handshake a freshly spawned
#: shard performs before receiving sealed state (mirrors
#: ``recovery.reattest``).
_ATTEST_FIXED_CYCLES = 120_000.0

#: Fixed per-key transfer cost: handing one sealed blob across shards
#: through untrusted memory (the "priced sealed crossing" wire leg).
_TRANSFER_FIXED_CYCLES = 30_000.0

#: Default retry bounds for migration attempts. Deliberately budgeted:
#: a migration that cannot finish inside its virtual-time budget rolls
#: back rather than stalling the autoscaler.
DEFAULT_MIGRATION_POLICY = RetryPolicy(
    max_attempts=4,
    base_backoff_ns=25_000.0,
    max_backoff_ns=400_000.0,
    call_deadline_ns=5_000_000.0,
    retry_budget_ns=2_000_000.0,
)


class _MigrationInterrupted(ReproError):
    """Internal: a seeded shard loss fired inside the chaos window."""

    def __init__(self, victim: str) -> None:
        super().__init__(f"shard {victim!r} lost mid-migration")
        self.victim = victim


@dataclass
class ManagedKey:
    """One live-migratable unit of keyed trusted state."""

    key: str
    factory: Callable[[], Any] = field(repr=False)
    capture: Callable[[Any], Any] = field(repr=False)
    apply: Callable[[Any, Any], None] = field(repr=False)
    obj: Any = field(repr=False, default=None)
    shard: str = DEFAULT_ISOLATE


@dataclass
class MigrationRecord:
    """One per-key migration outcome (the migration trace)."""

    key: str
    source: str
    target: str
    attempts: int
    completed: bool
    rolled_back: bool
    interruptions: int
    at_ns: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "source": self.source,
            "target": self.target,
            "attempts": self.attempts,
            "completed": self.completed,
            "rolled_back": self.rolled_back,
            "interruptions": self.interruptions,
            "at_ns": self.at_ns,
        }


@dataclass
class MigratorStats:
    """Accumulated migration work."""

    keys_moved: int = 0
    migrations: int = 0
    retries: int = 0
    rollbacks: int = 0
    interruptions: int = 0
    rebuilt_keys: int = 0
    attestations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "keys_moved": self.keys_moved,
            "migrations": self.migrations,
            "retries": self.retries,
            "rollbacks": self.rollbacks,
            "interruptions": self.interruptions,
            "rebuilt_keys": self.rebuilt_keys,
            "attestations": self.attestations,
        }


class ShardMigrator:
    """Managed-key registry + chaos-safe sealed migration engine."""

    def __init__(
        self,
        group: Any,
        policy: Optional[RetryPolicy] = None,
        attestation: Optional[AttestationService] = None,
        platform_secret: bytes = b"autoscale",
    ) -> None:
        self.group = group
        self.platform = group.platform
        self.policy = policy or DEFAULT_MIGRATION_POLICY
        self.attestation = attestation or AttestationService(
            platform_key=b"autoscale"
        )
        sealing = SealingService(
            group.session.enclave, platform_secret=platform_secret
        )
        #: One checkpoint entry per managed key; scale-up restore and
        #: crash rebuild both come from these sealed blobs.
        self.checkpoints = CheckpointManager(sealing, interval_ns=0.0)
        self._managed: Dict[str, ManagedKey] = {}
        self.stats = MigratorStats()
        self.records: List[MigrationRecord] = []

    # -- managed keys ----------------------------------------------------------

    def manage(
        self,
        key: str,
        factory: Callable[[], Any],
        capture: Callable[[Any], Any],
        apply: Callable[[Any, Any], None],
    ) -> Any:
        """Register ``key`` and build its object on the owning shard."""
        if key in self._managed:
            raise ConfigurationError(f"key {key!r} is already managed")
        managed = ManagedKey(key=key, factory=factory, capture=capture, apply=apply)
        managed.shard = self.group.shard_for(key)
        managed.obj = self.group.create_pinned(key, factory)
        self._managed[key] = managed
        self.checkpoints.register(
            f"key:{key}",
            capture=lambda m=managed: m.capture(m.obj),
            restore=lambda snapshot, m=managed: m.apply(m.obj, snapshot),
        )
        return managed.obj

    def lookup(self, key: str) -> Any:
        """The key's current object — re-resolve after any scale event;
        cached references go stale when the key migrates."""
        return self._managed[key].obj

    def home_of(self, key: str) -> str:
        return self._managed[key].shard

    @property
    def managed_keys(self) -> List[str]:
        return sorted(self._managed)

    # -- scale actions ---------------------------------------------------------

    def scale_up(self) -> Dict[str, Any]:
        """Spawn + attest one shard, then restore the remapped keys onto
        it from sealed state."""
        name = self.group.add_shard()
        self._attest(name)
        moved = self.rebalance()
        return {"shard": name, "keys_moved": moved, "action": "up"}

    def scale_down(self, shard: Optional[str] = None) -> Dict[str, Any]:
        """Drain + retire one shard, live-migrating its keys away.

        Routing drops the shard first (successors own its keys), the
        keys migrate via sealed crossings, and only a fully drained
        shard is torn down. If any key's migration rolls back, the
        retirement itself is rolled back (the shard routes again) —
        graceful failure, no stranded state.
        """
        candidates = [n for n in self.group.shard_names if n != DEFAULT_ISOLATE]
        if not candidates:
            raise ConfigurationError("no removable shard to scale down")
        name = shard if shard is not None else candidates[-1]
        self.group.begin_retire(name)
        moved = self.rebalance()
        stranded = [k for k, m in self._managed.items() if m.shard == name]
        if stranded:
            self.group.abort_retire(name)
            return {
                "shard": name,
                "keys_moved": moved,
                "action": "down-rollback",
                "stranded": sorted(stranded),
            }
        self.group.remove_shard(name)
        return {"shard": name, "keys_moved": moved, "action": "down"}

    def rebalance(self) -> int:
        """Migrate every managed key whose routed home changed.

        Seals a barrier checkpoint of all managed keys first: migration
        runs between scheduler steps (no session mutates state
        concurrently in virtual time), so these blobs are exact — a
        crash rebuild during the batch restores acked state losslessly.
        """
        pending = [
            m
            for m in sorted(self._managed.values(), key=lambda m: m.key)
            if self.group.shard_for(m.key) != m.shard
        ]
        if not pending:
            return 0
        self.checkpoints.checkpoint()
        moved = 0
        for managed in pending:
            if self._migrate_key(managed, self.group.shard_for(managed.key)):
                moved += 1
        return moved

    # -- the per-key move ------------------------------------------------------

    def _migrate_key(self, managed: ManagedKey, target: str) -> bool:
        source = managed.shard
        budget = RetryBudget(self.policy)
        budget.start_call(self.platform.clock.now_ns)
        attempt = 0
        interruptions = 0
        completed = False
        while True:
            attempt += 1
            try:
                self._attempt_move(managed, source, target)
            except _MigrationInterrupted:
                interruptions += 1
                self.stats.interruptions += 1
                if attempt >= self.policy.max_attempts:
                    break
                try:
                    backoff = budget.authorize(
                        self.platform.clock.now_ns,
                        self.policy.backoff_ns(attempt),
                        f"migrate.{managed.key}",
                    )
                except RetryExhaustedError:
                    break
                self.platform.charge_ns("migration.backoff", backoff)
                self.stats.retries += 1
            else:
                completed = True
                break
        if completed:
            managed.shard = target
            self.stats.keys_moved += 1
        else:
            # Roll back: the source object was never unlinked, so the
            # key keeps serving from where it was — acked state intact.
            self.stats.rollbacks += 1
        self.stats.migrations += 1
        self.records.append(
            MigrationRecord(
                key=managed.key,
                source=source,
                target=target,
                attempts=attempt,
                completed=completed,
                rolled_back=not completed,
                interruptions=interruptions,
                at_ns=self.platform.clock.now_ns,
            )
        )
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("autoscale.migrations").inc()
            if not completed:
                obs.metrics.counter("autoscale.rollbacks").inc()
        return completed

    def _attempt_move(self, managed: ManagedKey, source: str, target: str) -> None:
        """One migration attempt: seal → (chaos window) → build + restore.

        Ordering is the safety argument: the sealed blob is taken
        before the vulnerable window, and the registry object is only
        swapped after it — an interruption anywhere leaves either the
        old object live (roll back) or the blob able to finish the move
        (complete). At-most-once holds because the blob carries state,
        not operations: re-applying it overwrites, never double-counts.
        """
        entry = f"key:{managed.key}"
        # Capture through priced crossings on the (current) source
        # shard, seal the snapshot (sgx.seal), and pay the wire leg.
        self.checkpoints.checkpoint_entry(entry)
        self.platform.charge_cycles("migration.transfer", _TRANSFER_FIXED_CYCLES)
        self._consult_faults(managed, source, target)
        fresh = self.group.create_pinned(managed.key, managed.factory)
        old = managed.obj
        managed.obj = fresh
        try:
            self.checkpoints.restore_entry(entry)
        except BaseException:
            managed.obj = old
            raise

    def _consult_faults(self, managed: ManagedKey, source: str, target: str) -> None:
        """The seeded chaos window between seal and restore."""
        injector = self.platform.faults
        if injector is None:
            return
        decision = injector.transition_fault(
            "shard", f"migrate.{managed.key}", self.platform.clock.now_ns
        )
        if decision is None or not decision.crash:
            return
        victim = target if target != DEFAULT_ISOLATE else source
        if victim != DEFAULT_ISOLATE and victim in self.group.shard_names:
            self.group.lose_shard(victim)
            self._rebuild_shard(victim)
        raise _MigrationInterrupted(victim)

    def _rebuild_shard(self, shard: str) -> int:
        """Re-create every managed key homed on a freshly respawned
        shard from its sealed blob (the barrier checkpoint guarantees
        one exists and is current)."""
        rebuilt = 0
        for managed in sorted(self._managed.values(), key=lambda m: m.key):
            if managed.shard != shard:
                continue
            with self.group.pinned(shard):
                managed.obj = managed.factory()
            self.checkpoints.restore_entry(f"key:{managed.key}")
            rebuilt += 1
        self.stats.rebuilt_keys += rebuilt
        return rebuilt

    # -- attestation -----------------------------------------------------------

    def _attest(self, shard: str) -> None:
        """Local attestation before a new shard receives sealed state."""
        self.platform.charge_cycles("migration.attest", _ATTEST_FIXED_CYCLES)
        enclave = self.group.session.enclave
        report = self.attestation.create_report(
            enclave, report_data=f"scale-up:{shard}".encode("utf-8")
        )
        quote = self.attestation.quote(report)
        self.attestation.verify(quote, enclave.measurement)
        self.stats.attestations += 1

    def __repr__(self) -> str:
        return (
            f"ShardMigrator(keys={len(self._managed)}, "
            f"moved={self.stats.keys_moved}, rollbacks={self.stats.rollbacks})"
        )
