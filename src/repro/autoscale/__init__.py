"""Elastic shard autoscaling: consistent-hash routing, sealed live
migration, and a hysteresis controller over live gauges.

Three layers, each usable alone:

- :mod:`repro.autoscale.ring` — deterministic consistent-hash ring
  (~1/N key remap per membership change);
- :mod:`repro.autoscale.migration` — :class:`ShardMigrator`, the
  chaos-safe sealed live migration of keyed trusted state between
  shards (seal → attest → restore, priced end to end, rolls back on
  budget exhaustion, never loses acked state);
- :mod:`repro.autoscale.controller` — :class:`HysteresisAutoscaler`,
  which turns admission/pool/EPC/SLO signals into scale events.
"""

from repro.autoscale.controller import (
    AutoscalePolicy,
    HysteresisAutoscaler,
    ScaleEvent,
)
from repro.autoscale.migration import (
    DEFAULT_MIGRATION_POLICY,
    ManagedKey,
    MigrationRecord,
    MigratorStats,
    ShardMigrator,
)
from repro.autoscale.ring import DEFAULT_VNODES, ConsistentHashRing

__all__ = [
    "AutoscalePolicy",
    "ConsistentHashRing",
    "DEFAULT_MIGRATION_POLICY",
    "DEFAULT_VNODES",
    "HysteresisAutoscaler",
    "ManagedKey",
    "MigrationRecord",
    "MigratorStats",
    "ScaleEvent",
    "ShardMigrator",
]
