"""Consistent-hash ring: ~1/N key remap per membership change.

The shard group's original router — ``crc32(key) % N`` — remaps almost
every key whenever ``N`` changes, which would turn every scale event
into a full-state migration. The classic consistent-hashing fix
(Karger et al.; memcached/Dynamo lineage) places each shard at many
pseudo-random points on a hash circle and routes a key to the first
shard point at or after the key's own hash: adding or removing one of
``N`` shards then moves only ~1/N of the keyspace.

Determinism matters more than distribution here: hashing uses SHA-256
(never Python's salted ``hash()``), so the ring is a pure function of
the member names — two processes, two runs, two machines agree on
every route.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable, List, Tuple

from repro.errors import ConfigurationError

#: Virtual nodes per member: enough spread that a 4-shard ring stays
#: within a few percent of the ideal 1/N shares.
DEFAULT_VNODES = 64


def _stable_hash(text: str) -> int:
    """64-bit stable hash of ``text`` (first 8 bytes of SHA-256)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Hash circle of named nodes, each appearing ``vnodes`` times."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ConfigurationError("a ring needs at least one vnode per node")
        self.vnodes = vnodes
        self._hashes: List[int] = []
        self._owners: List[str] = []
        self._members: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._members:
            raise ConfigurationError(f"node {node!r} is already on the ring")
        for vnode in range(self.vnodes):
            point = _stable_hash(f"{node}#{vnode}")
            index = bisect.bisect_left(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, node)
        self._members.append(node)

    def remove(self, node: str) -> None:
        if node not in self._members:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        keep = [
            (point, owner)
            for point, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self._members.remove(node)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Members in insertion order (the shard group's order)."""
        return tuple(self._members)

    # -- routing --------------------------------------------------------------

    def node_for(self, key: Any) -> str:
        """The member owning ``key``: first ring point at or after its
        hash, wrapping at the top of the circle."""
        if not self._members:
            raise ConfigurationError("cannot route on an empty ring")
        point = _stable_hash(str(key))
        index = bisect.bisect_left(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(nodes={len(self._members)}, "
            f"vnodes={self.vnodes}, points={len(self._hashes)})"
        )
