"""Hysteresis autoscaler: elastic shard count driven by live gauges.

The controller closes the loop between observability and elasticity:
it consumes the signals the rest of the stack already exports —
admission-queue depth, switchless-pool fallback share, per-shard EPC
residency against quota, critical SLO alerts from the watchdog — and
grows or shrinks the :class:`~repro.concurrency.sharding.ShardedEnclaveGroup`
through the :class:`~repro.autoscale.migration.ShardMigrator` (spawn +
attest + sealed restore on the way up, drain + live-migrate on the way
down).

Stability comes from three classic hysteresis guards, all in virtual
time so every decision replays deterministically:

- **asymmetric thresholds**: the scale-down bars sit well below the
  scale-up bars, so the controller cannot flap across one boundary;
- **cooldown**: after any scale event, decisions pause for
  ``cooldown_ns`` — migrations must settle before the signals are
  trusted again;
- **down-stability**: scale-down additionally requires *every* signal
  calm for ``down_stable_evals`` consecutive evaluations, because
  shrinking costs a live migration and is the riskier direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and guards for the hysteresis controller."""

    min_shards: int = 1
    max_shards: int = 4
    #: Scale up when the admission queue is at least this deep.
    queue_up_depth: int = 6
    #: Scale down only when the queue is at most this deep.
    queue_down_depth: int = 0
    #: Scale up when the switchless pool's fallback share over the last
    #: evaluation window reaches this fraction.
    fallback_up_share: float = 0.5
    fallback_down_share: float = 0.05
    #: Scale up when any shard's EPC residency reaches this fraction of
    #: its quota (pressure ⇒ thrashing is near).
    epc_up_share: float = 0.9
    #: Virtual ns to sit out after any scale event.
    cooldown_ns: float = 2_000_000.0
    #: Consecutive calm evaluations required before scaling down.
    down_stable_evals: int = 3
    #: Switchless workers (each class) provisioned per shard.
    workers_per_shard: int = 2
    #: Admission slots provisioned per shard.
    slots_per_shard: int = 2

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ConfigurationError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ConfigurationError("max_shards must be >= min_shards")
        if self.cooldown_ns < 0:
            raise ConfigurationError("cooldown_ns cannot be negative")
        if self.down_stable_evals < 1:
            raise ConfigurationError("down_stable_evals must be >= 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision (the hysteresis trace)."""

    at_ns: float
    action: str  # "up" | "down" | "down-rollback"
    reason: str
    shards_before: int
    shards_after: int
    keys_moved: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_ns": self.at_ns,
            "action": self.action,
            "reason": self.reason,
            "shards_before": self.shards_before,
            "shards_after": self.shards_after,
            "keys_moved": self.keys_moved,
        }


@dataclass
class _SignalSnapshot:
    """The controller's view of the world at one evaluation."""

    queue_depth: int = 0
    fallback_share: float = 0.0
    epc_share: float = 0.0
    critical_alerts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queue_depth": self.queue_depth,
            "fallback_share": round(self.fallback_share, 4),
            "epc_share": round(self.epc_share, 4),
            "critical_alerts": self.critical_alerts,
        }


class HysteresisAutoscaler:
    """Grows/shrinks a shard group from live signals, with hysteresis."""

    def __init__(
        self,
        migrator: Any,
        policy: Optional[AutoscalePolicy] = None,
        admission: Optional[Any] = None,
        pool: Optional[Any] = None,
        watchdog: Optional[Any] = None,
    ) -> None:
        self.migrator = migrator
        self.group = migrator.group
        self.platform = migrator.platform
        self.policy = policy or AutoscalePolicy()
        self.admission = admission
        self.pool = pool
        self.watchdog = watchdog
        self.events: List[ScaleEvent] = []
        self._last_event_ns: Optional[float] = None
        self._calm_evals = 0
        self._pool_served_seen = 0
        self._pool_fallbacks_seen = 0
        self._alerts_seen = 0
        self.evaluations = 0

    # -- signals ---------------------------------------------------------------

    def _read_signals(self) -> _SignalSnapshot:
        snap = _SignalSnapshot()
        if self.admission is not None:
            snap.queue_depth = self.admission.queue_depth
        if self.pool is not None:
            served = self.pool.stats.total_served
            fallbacks = self.pool.stats.total_fallbacks
            d_served = served - self._pool_served_seen
            d_fallbacks = fallbacks - self._pool_fallbacks_seen
            self._pool_served_seen = served
            self._pool_fallbacks_seen = fallbacks
            window = d_served + d_fallbacks
            snap.fallback_share = d_fallbacks / window if window else 0.0
        driver = self.group.driver
        if driver is not None:
            for name in self.group.shard_names:
                tenant = self.group._tenant_ids[name]
                quota = driver.epc.quota_of(tenant)
                if not quota:
                    continue
                share = driver.epc.resident_pages(tenant) / quota
                snap.epc_share = max(snap.epc_share, share)
        if self.watchdog is not None:
            fired = sum(
                1
                for alert in self.watchdog.alerts
                if alert.severity == "critical"
            )
            snap.critical_alerts = fired - self._alerts_seen
            self._alerts_seen = fired
        return snap

    def _up_reason(self, snap: _SignalSnapshot) -> Optional[str]:
        p = self.policy
        if snap.queue_depth >= p.queue_up_depth:
            return f"admission queue depth {snap.queue_depth} >= {p.queue_up_depth}"
        if snap.fallback_share >= p.fallback_up_share:
            return (
                f"pool fallback share {snap.fallback_share:.2f} >= "
                f"{p.fallback_up_share:.2f}"
            )
        if snap.epc_share >= p.epc_up_share:
            return f"EPC residency {snap.epc_share:.2f} >= {p.epc_up_share:.2f}"
        if snap.critical_alerts > 0:
            return f"{snap.critical_alerts} critical SLO alert(s) since last eval"
        return None

    def _is_calm(self, snap: _SignalSnapshot) -> bool:
        p = self.policy
        return (
            snap.queue_depth <= p.queue_down_depth
            and snap.fallback_share <= p.fallback_down_share
            and snap.critical_alerts == 0
        )

    # -- the control loop ------------------------------------------------------

    def evaluate(self, now_ns: Optional[float] = None) -> Optional[ScaleEvent]:
        """One control decision; returns the scale event, if any."""
        if now_ns is None:
            now_ns = self.platform.clock.now_ns
        self.evaluations += 1
        snap = self._read_signals()
        in_cooldown = (
            self._last_event_ns is not None
            and now_ns - self._last_event_ns < self.policy.cooldown_ns
        )
        up_reason = self._up_reason(snap)
        if up_reason is not None:
            self._calm_evals = 0
            if in_cooldown or self.group.n_shards >= self.policy.max_shards:
                return None
            return self._scale("up", up_reason, now_ns)
        if self._is_calm(snap):
            self._calm_evals += 1
        else:
            self._calm_evals = 0
            return None
        if (
            self._calm_evals >= self.policy.down_stable_evals
            and not in_cooldown
            and self.group.n_shards > self.policy.min_shards
        ):
            reason = (
                f"signals calm for {self._calm_evals} evaluations "
                f"({snap.to_dict()})"
            )
            return self._scale("down", reason, now_ns)
        return None

    def _scale(self, direction: str, reason: str, now_ns: float) -> ScaleEvent:
        before = self.group.n_shards
        if direction == "up":
            outcome = self.migrator.scale_up()
        else:
            outcome = self.migrator.scale_down()
        after = self.group.n_shards
        self._provision(after)
        self._last_event_ns = now_ns
        self._calm_evals = 0
        event = ScaleEvent(
            at_ns=now_ns,
            action=outcome["action"],
            reason=reason,
            shards_before=before,
            shards_after=after,
            keys_moved=outcome["keys_moved"],
        )
        self.events.append(event)
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter(f"autoscale.scale_{direction}s").inc()
            obs.metrics.gauge("autoscale.shards").set(after)
        return event

    def _provision(self, n_shards: int) -> None:
        """Scale the worker pool and admission capacity with the shards."""
        p = self.policy
        if self.pool is not None:
            self.pool.resize(
                trusted_workers=p.workers_per_shard * n_shards,
                untrusted_workers=p.workers_per_shard * n_shards,
            )
        if self.admission is not None:
            self.admission.set_capacity(p.slots_per_shard * n_shards)

    # -- introspection ---------------------------------------------------------

    def trace(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    def __repr__(self) -> str:
        return (
            f"HysteresisAutoscaler(shards={self.group.n_shards}, "
            f"events={len(self.events)}, evaluations={self.evaluations})"
        )
