"""Command-line interface: regenerate any paper figure/table.

Usage::

    python -m repro list
    python -m repro fig3 [--scale small|paper]
    python -m repro table1
    python -m repro ablations
    python -m repro fig4a --trace trace.json --metrics metrics.json

``--scale small`` (the default) runs a quick, scaled-down sweep;
``--scale paper`` uses the paper's parameter ranges.

Observability flags (any of them activates a
:class:`~repro.obs.recorder.RunRecorder` spanning the whole run):

- ``--trace PATH``    Chrome trace_event JSON (open in Perfetto)
- ``--events PATH``   raw span stream as JSONL
- ``--metrics PATH``  merged metrics + ledger snapshot + cross-check
- ``--obs-summary``   print a per-span-name summary table after the run

The flags apply uniformly to every subcommand — figures, ``scale``,
``chaos``, all of them. When any is given, the default SLO rulebook
(:func:`repro.obs.slo.default_rulebook`) watches the run and its
verdicts are included in every ``--obs-summary`` output.

Without these flags no tracer is attached and the experiment output is
byte-identical to a build without the observability layer.

Four further subcommands are intercepted before the experiment parser:
``repro lint`` (static partition linter), ``repro perf`` (wall-clock
benchmark suite appending to ``BENCH_perf.json`` — see docs/PERF.md),
``repro secv`` (class- vs value-granular partitioning ablation —
see docs/ANALYSIS.md, "Value-granular partitioning"),
``repro traffic`` (open-loop traffic + elastic shard autoscaler — see
docs/CONCURRENCY.md, "Autoscaling and live migration") and
``repro offload`` (accelerator DMA offload vs in-enclave execution —
see docs/PERF.md, "Zero-copy crossings and the offload ablation").
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import fig3_proxy_creation, fig4_rmi, fig5_gc
from repro.experiments import fig6_synthetic, fig7_paldb, fig9_graphchi
from repro.experiments import ablations, fig12_specjvm
from repro.experiments import epc_paging, mapreduce_exp, securekeeper_exp, startup
from repro.experiments import batching_exp, fault_recovery, scaling_exp


def _fig3(scale: str) -> None:
    counts = (2_000, 6_000, 10_000) if scale == "small" else fig3_proxy_creation.DEFAULT_COUNTS
    print(fig3_proxy_creation.run_fig3(counts=counts).format())


def _fig4a(scale: str) -> None:
    counts = (2_000, 6_000) if scale == "small" else (10_000, 50_000, 100_000)
    print(fig4_rmi.run_fig4a(counts=counts).format())


def _fig4b(scale: str) -> None:
    if scale == "small":
        table = fig4_rmi.run_fig4b(list_sizes=(10_000, 50_000), invocations=1_000)
    else:
        table = fig4_rmi.run_fig4b()
    print(table.format())


def _fig4b_arena(scale: str) -> None:
    if scale == "small":
        table = fig4_rmi.run_fig4b_arena(list_sizes=(1_000, 4_000), invocations=128)
    else:
        table = fig4_rmi.run_fig4b_arena()
    print(table.format(y_format="{:.5f}"))


def _fig7_arena(scale: str) -> None:
    counts = (1_000, 3_000) if scale == "small" else fig7_paldb.DEFAULT_ARENA_KEY_COUNTS
    print(fig7_paldb.run_fig7_arena(key_counts=counts).format(y_format="{:.4f}"))


def _fig5a(scale: str) -> None:
    counts = (50_000, 150_000) if scale == "small" else fig5_gc.DEFAULT_COUNTS
    print(fig5_gc.run_fig5a(counts=counts).format())


def _fig5b(scale: str) -> None:
    if scale == "small":
        table = fig5_gc.run_fig5b(duration_s=16.0, create_phase_s=8.0, batch=300)
    else:
        table = fig5_gc.run_fig5b()
    print(table.format(y_format="{:.0f}"))


def _fig6(scale: str) -> None:
    if scale == "small":
        table = fig6_synthetic.run_fig6(percentages=(0, 25, 50, 75, 100), n_classes=30)
    else:
        table = fig6_synthetic.run_fig6()
    print(table.format(y_format="{:.4f}"))


def _fig7(scale: str) -> None:
    counts = (5_000, 15_000) if scale == "small" else fig7_paldb.DEFAULT_KEY_COUNTS
    print(fig7_paldb.run_fig7(key_counts=counts).format(y_format="{:.3f}"))


def _fig9(scale: str) -> None:
    graphs = (
        ((2_000, 8_000),) if scale == "small" else fig9_graphchi.DEFAULT_GRAPHS
    )
    shards = (1, 3) if scale == "small" else fig9_graphchi.DEFAULT_SHARDS
    for table in fig9_graphchi.run_fig9(graphs=graphs, shard_counts=shards).values():
        print(table.format(y_format="{:.3f}"))
        print()


def _fig10(scale: str) -> None:
    counts = (5_000, 15_000) if scale == "small" else (20_000, 60_000, 100_000)
    print(fig7_paldb.run_fig10(key_counts=counts).format(y_format="{:.3f}"))


def _fig11(scale: str) -> None:
    if scale == "small":
        table = fig9_graphchi.run_fig11(
            n_vertices=5_000, n_edges=20_000, shard_counts=(1, 3)
        )
    else:
        table = fig9_graphchi.run_fig11()
    print(table.format(y_format="{:.3f}"))


def _fig12(scale: str) -> None:
    print(fig12_specjvm.run_fig12().format(y_format="{:.2f}"))


def _table1(scale: str) -> None:
    ratios = fig12_specjvm.run_table1()
    print("Table 1 — latency gain of SGX-NI over SCONE+JVM")
    for kernel, ratio in ratios.items():
        paper = fig12_specjvm.PAPER_TABLE1[kernel]
        print(f"  {kernel:<12} {ratio:5.2f}x   (paper: {paper:.2f}x)")


def _ablations(scale: str) -> None:
    ablations.main()


def _epc(scale: str) -> None:
    print(epc_paging.run_epc_paging().format(y_format="{:.4f}"))


def _startup(scale: str) -> None:
    startup.main()


def _securekeeper(scale: str) -> None:
    counts = (300, 600) if scale == "small" else securekeeper_exp.DEFAULT_ENTRY_COUNTS
    print(securekeeper_exp.run_securekeeper(entry_counts=counts).format(y_format="{:.4f}"))


def _mapreduce(scale: str) -> None:
    counts = (200, 400) if scale == "small" else mapreduce_exp.DEFAULT_LINE_COUNTS
    print(mapreduce_exp.run_mapreduce(line_counts=counts).format(y_format="{:.4f}"))


def _chaos(scale: str) -> None:
    import os

    if scale == "small":
        report = fault_recovery.run_chaos(
            fault_rates=(0.0, 0.05),
            checkpoint_intervals_ns=(0.0, 2_000_000.0),
            n_accounts=4,
            rounds=12,
            n_entries=10,
        )
    else:
        report = fault_recovery.run_chaos()
    print(report.format())
    os.makedirs("results", exist_ok=True)
    path = os.path.join("results", "fault_recovery.json")
    report.write_artifact(path)
    print(f"artifact: {path}", file=sys.stderr)


def _batch(scale: str) -> None:
    import os

    if scale == "small":
        report = batching_exp.run_batching(
            batch_sizes=(None, 1, 4, 16),
            durability_sizes=(None, 1, 4, 8),
        )
    else:
        report = batching_exp.run_batching()
    print(report.format())
    os.makedirs("results", exist_ok=True)
    path = os.path.join("results", "batching.json")
    report.write_artifact(path)
    print(f"artifact: {path}", file=sys.stderr)


def _scale(scale: str) -> None:
    import os

    if scale == "small":
        report = scaling_exp.run_scaling(
            session_counts=(1, 2, 4, 8),
            shard_counts=(1, 2),
            rounds=8,
            entries=6,
        )
    else:
        report = scaling_exp.run_scaling()
    print(report.format())
    os.makedirs("results", exist_ok=True)
    path = os.path.join("results", "scaling.json")
    report.write_artifact(path)
    print(f"artifact: {path}", file=sys.stderr)


COMMANDS: Dict[str, Callable[[str], None]] = {
    "batch": _batch,
    "chaos": _chaos,
    "epc": _epc,
    "startup": _startup,
    "securekeeper": _securekeeper,
    "mapreduce": _mapreduce,
    "scale": _scale,
    "fig3": _fig3,
    "fig4a": _fig4a,
    "fig4b": _fig4b,
    "fig4b_arena": _fig4b_arena,
    "fig7_arena": _fig7_arena,
    "fig5a": _fig5a,
    "fig5b": _fig5b,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "table1": _table1,
    "ablations": _ablations,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Montsalvat reproduction: regenerate paper figures/tables",
        epilog=(
            "additional subcommands: 'repro lint' — static partition linter "
            "over the bundled apps (see docs/ANALYSIS.md); 'repro perf' — "
            "wall-clock benchmark suite with BENCH trajectory + regression "
            "gates (see docs/PERF.md); 'repro secv' — class- vs "
            "value-granular partitioning ablation; 'repro traffic' — "
            "open-loop load + admission control + elastic shard "
            "autoscaler with sealed live migration (see docs/CONCURRENCY.md); "
            "'repro offload' — accelerator DMA offload vs in-enclave "
            "execution (see docs/PERF.md)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["list", "all"],
        help="which figure/table to regenerate ('list' to enumerate)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="parameter scale (default: small, quick sweep)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON file (Perfetto-loadable)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="write the raw span stream as JSONL",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write merged metrics + ledger snapshot JSON",
    )
    parser.add_argument(
        "--obs-summary",
        action="store_true",
        help="print a per-span summary table after the experiment",
    )
    return parser


def _run(args) -> None:
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return
    if args.experiment == "all":
        for name in sorted(COMMANDS):
            print(f"==== {name} ====")
            COMMANDS[name](args.scale)
            print()
        return
    COMMANDS[args.experiment](args.scale)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Static partition linter; its own argparse handles the rest.
        from repro.analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))
    if argv and argv[0] == "perf":
        # Wall-clock bench suite; its own argparse handles the rest.
        from repro.experiments.perf_bench import main as perf_main

        return perf_main(list(argv[1:]))
    if argv and argv[0] == "secv":
        # Granularity ablation; its own argparse handles the rest.
        from repro.experiments.secv_exp import main as secv_main

        return secv_main(list(argv[1:]))
    if argv and argv[0] == "traffic":
        # Open-loop traffic + autoscaler ablation; own argparse.
        from repro.experiments.traffic_exp import main as traffic_main

        return traffic_main(list(argv[1:]))
    if argv and argv[0] == "offload":
        # Accelerator DMA offload ablation; its own argparse.
        from repro.experiments.offload_exp import main as offload_main

        return offload_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    wants_obs = args.trace or args.events or args.metrics or args.obs_summary
    if not wants_obs:
        _run(args)
        return 0

    from repro.obs.recorder import RunRecorder, recording
    from repro.obs.slo import SloWatchdog, default_rulebook

    recorder = RunRecorder(slo=SloWatchdog(default_rulebook()))
    with recording(recorder):
        _run(args)
    if args.trace:
        recorder.write_chrome_trace(args.trace)
        print(f"trace: {args.trace}", file=sys.stderr)
    if args.events:
        lines = recorder.write_jsonl(args.events)
        print(f"events: {args.events} ({lines} lines)", file=sys.stderr)
    if args.metrics:
        recorder.write_metrics(args.metrics)
        print(f"metrics: {args.metrics}", file=sys.stderr)
    if args.obs_summary:
        print()
        print(recorder.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
