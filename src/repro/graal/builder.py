"""Native-image build pipeline (§2.2, §5.3).

The builder takes a closed-world class universe and a set of entry
points, runs the points-to analysis, executes build-time initialisers,
snapshots the image heap, and emits an image. Montsalvat's modified
generator bypasses the linking phase to produce relocatable object
files (`LinkMode.RELOCATABLE`), later linked with the enclave libraries
by the SGX module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.costs.machine import GB
from repro.errors import BuildError
from repro.graal.image import ImageHeap, NativeImage, synthesize_code
from repro.graal.jtypes import ClassUniverse, JClass
from repro.graal.pointsto import PointsToAnalysis, ReachableSet


class LinkMode(enum.Enum):
    """What artifact the build produces."""

    EXECUTABLE = "executable"
    SHARED_OBJECT = "shared-object"
    #: Montsalvat's modification: bypass linking, emit a .o for the SGX
    #: module to link against the enclave libraries (§5.3).
    RELOCATABLE = "relocatable"


@dataclass(frozen=True)
class BuildOptions:
    """native-image CLI options the reproduction honours."""

    max_heap_bytes: int = 2 * GB  # paper builds with -R:MaxHeapSize=2g (§6.1)
    link_mode: LinkMode = LinkMode.EXECUTABLE
    #: Extra classes forced into the image (the reflection-config JSON
    #: analog produced by the tracing agent, §2.2).
    reflection_config: Tuple[str, ...] = ()


#: A build-time initialiser: runs during the build and stores results in
#: the image heap (§2.2 — "initialize once, start fast").
BuildTimeInit = Callable[[ImageHeap], None]


class NativeImageBuilder:
    """Drives analysis + build-time init + image emission."""

    def __init__(self, options: BuildOptions = BuildOptions()) -> None:
        self.options = options

    def build(
        self,
        name: str,
        universe: ClassUniverse,
        entry_points: Iterable[str],
        build_time_init: Optional[BuildTimeInit] = None,
    ) -> NativeImage:
        """Build one image; raises :class:`BuildError` on violations."""
        entry_tuple = tuple(entry_points)
        if not entry_tuple:
            raise BuildError(f"image {name!r} has no entry points")

        reachable = PointsToAnalysis(universe).analyze(entry_tuple)
        reachable = self._apply_reflection_config(universe, reachable, entry_tuple)

        image_heap = ImageHeap()
        if build_time_init is not None:
            build_time_init(image_heap)
        heap_blob = image_heap.snapshot()

        code = synthesize_code(name, reachable, heap_blob)
        return NativeImage(
            name=name,
            reachable=reachable,
            entry_points=entry_tuple,
            image_heap_bytes=len(heap_blob),
            relocatable=self.options.link_mode is LinkMode.RELOCATABLE,
            code_bytes=code,
            image_heap_blob=heap_blob,
        )

    def _apply_reflection_config(
        self,
        universe: ClassUniverse,
        reachable: ReachableSet,
        entry_points: Tuple[str, ...],
    ) -> ReachableSet:
        """Force reflection-configured classes (and their transitive
        closure) into the image by re-running the analysis with their
        public methods added as synthetic entry points."""
        if not self.options.reflection_config:
            return reachable
        extra = []
        for class_name in self.options.reflection_config:
            jclass = universe[class_name]  # closed-world check
            extra.extend(m.qualified_name for m in jclass.public_methods())
        if not extra:
            return reachable
        return PointsToAnalysis(universe).analyze(list(entry_points) + extra)


def partition_universes(
    trusted_and_proxies: Iterable[JClass],
    untrusted_and_proxies: Iterable[JClass],
    neutral: Iterable[JClass],
) -> Tuple[ClassUniverse, ClassUniverse]:
    """Build the (T ∪ N) and (U ∪ N) input sets of §5.3."""
    neutral_list = list(neutral)
    trusted_universe = ClassUniverse.of(*trusted_and_proxies, *neutral_list)
    untrusted_universe = ClassUniverse.of(*untrusted_and_proxies, *neutral_list)
    return trusted_universe, untrusted_universe
