"""Points-to / reachability analysis (§2.2, §5.3).

GraalVM native-image starts from all entry points and iteratively
processes transitively reachable classes, fields and methods; only
reachable methods are AOT-compiled into the image. This implementation
is a worklist algorithm over the JClass IR:

- a reachable method makes each of its call sites reachable;
- an instantiation makes the receiver class *instantiated* and its
  constructor reachable;
- an attribute call with a statically known receiver resolves to that
  class; otherwise it resolves by class-hierarchy analysis restricted
  to classes already seen as instantiated (plus static methods) —
  a sound approximation of the paper's points-to analysis;
- a reachable constructor makes the class's fields reachable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import ReachabilityError
from repro.graal.jtypes import ClassUniverse, JClass, JMethod


@dataclass(frozen=True)
class ReachableSet:
    """Result of a reachability analysis."""

    methods: FrozenSet[str]  # qualified "Class.method" names
    classes: FrozenSet[str]
    instantiated: FrozenSet[str]
    fields: FrozenSet[str]  # qualified "Class.field" names

    def includes_method(self, qualified_name: str) -> bool:
        return qualified_name in self.methods

    def includes_class(self, name: str) -> bool:
        return name in self.classes

    def method_count(self) -> int:
        return len(self.methods)


class PointsToAnalysis:
    """Worklist reachability over a closed-world class universe."""

    def __init__(self, universe: ClassUniverse) -> None:
        self.universe = universe

    def analyze(self, entry_points: Iterable[str]) -> ReachableSet:
        """Compute reachability from qualified entry-point names.

        Entry points are ``"Class.method"`` strings — the image's main
        method plus every relay method (§5.3).
        """
        entries = list(entry_points)
        if not entries:
            raise ReachabilityError("analysis requires at least one entry point")

        reachable_methods: Set[str] = set()
        reachable_classes: Set[str] = set()
        instantiated: Set[str] = set()
        reachable_fields: Set[str] = set()
        #: unresolved attribute-call names awaiting new instantiations
        pending_virtual: Set[str] = set()
        worklist: Deque[JMethod] = deque()

        def enqueue(method: JMethod) -> None:
            if method.qualified_name in reachable_methods:
                return
            reachable_methods.add(method.qualified_name)
            reachable_classes.add(method.declared_in)
            worklist.append(method)

        def mark_instantiated(class_name: str) -> None:
            if class_name in instantiated:
                return
            jclass = self.universe.get(class_name)
            if jclass is None:
                return  # call to a class outside the universe: library code
            instantiated.add(class_name)
            reachable_classes.add(class_name)
            for jfield in jclass.fields:
                reachable_fields.add(f"{class_name}.{jfield.name}")
            ctor = jclass.constructor()
            if ctor is not None:
                enqueue(ctor)
            # Newly instantiated class may now satisfy pending virtual calls.
            for name in list(pending_virtual):
                method = jclass.method(name)
                if method is not None:
                    enqueue(method)

        for qualified in entries:
            class_name, _, method_name = qualified.rpartition(".")
            if not class_name:
                raise ReachabilityError(
                    f"entry point {qualified!r} must be 'Class.method'"
                )
            jclass = self.universe[class_name]
            method = jclass.method(method_name)
            if method is None:
                raise ReachabilityError(
                    f"entry point {qualified!r} does not exist"
                )
            # Relay entry points are invoked on live instances.
            mark_instantiated(class_name)
            enqueue(method)

        while worklist:
            method = worklist.popleft()
            for site in method.calls:
                if site.is_instantiation and site.receiver_class:
                    mark_instantiated(site.receiver_class)
                    continue
                if site.receiver_class is not None:
                    jclass = self.universe.get(site.receiver_class)
                    if jclass is not None:
                        target = jclass.method(site.method_name)
                        if target is not None:
                            mark_instantiated(site.receiver_class)
                            enqueue(target)
                    continue
                # Virtual call: resolve against instantiated classes now,
                # and remember the name for classes instantiated later.
                pending_virtual.add(site.method_name)
                for jclass in self.universe.classes_defining(site.method_name):
                    target = jclass.method(site.method_name)
                    if target is None:
                        continue
                    if jclass.name in instantiated or target.is_static:
                        enqueue(target)

        return ReachableSet(
            methods=frozenset(reachable_methods),
            classes=frozenset(reachable_classes),
            instantiated=frozenset(instantiated),
            fields=frozenset(reachable_fields),
        )
