"""GraalVM native-image substrate, simulated.

Implements the toolchain pieces Montsalvat extends (§2.2, §5.3):

- :mod:`repro.graal.jtypes` — the class/method IR the analyses run on;
- :mod:`repro.graal.extraction` — AST extraction of call graphs from
  annotated Python classes (the bytecode stand-in);
- :mod:`repro.graal.pointsto` — reachability (points-to) analysis;
- :mod:`repro.graal.entrypoints` — @CEntryPoint modelling/validation;
- :mod:`repro.graal.image` — image heap snapshots and built images;
- :mod:`repro.graal.builder` — the native-image build pipeline, with
  Montsalvat's relocatable-object mode (§5.3);
- :mod:`repro.graal.isolate` — independent VM instances with their own
  heaps (§2.2).
"""

from repro.graal.builder import BuildOptions, LinkMode, NativeImageBuilder
from repro.graal.entrypoints import CEntryPointSpec, validate_entry_point
from repro.graal.extraction import extract_class, extract_classes
from repro.graal.image import ImageHeap, NativeImage
from repro.graal.isolate import Isolate
from repro.graal.jtypes import CallSite, JClass, JField, JMethod, TrustLevel
from repro.graal.pointsto import PointsToAnalysis, ReachableSet

__all__ = [
    "BuildOptions",
    "LinkMode",
    "NativeImageBuilder",
    "CEntryPointSpec",
    "validate_entry_point",
    "extract_class",
    "extract_classes",
    "ImageHeap",
    "NativeImage",
    "Isolate",
    "CallSite",
    "JClass",
    "JField",
    "JMethod",
    "TrustLevel",
    "PointsToAnalysis",
    "ReachableSet",
]
