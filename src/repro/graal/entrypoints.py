"""@CEntryPoint modelling and validation (§5.2).

GraalVM entry points callable from C must be static, may only take
primitive or word-type (pointer) parameters — never objects — and must
receive the isolate that provides their execution context. Montsalvat's
relay methods are generated to satisfy exactly these restrictions; the
validator here is what enforces them in the build pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import BuildError


class ParamKind(enum.Enum):
    """Parameter categories permitted (or not) for a C entry point."""

    ISOLATE = "isolate"
    PRIMITIVE = "primitive"  # int, long, float, double, boolean...
    WORD = "word"  # pointers: CCharPointer and friends
    OBJECT = "object"  # forbidden


@dataclass(frozen=True)
class CEntryPointSpec:
    """Declared signature of a would-be entry point."""

    name: str
    declared_in: str
    is_static: bool
    params: Tuple[ParamKind, ...]

    @property
    def qualified_name(self) -> str:
        return f"{self.declared_in}.{self.name}"


def validate_entry_point(spec: CEntryPointSpec) -> None:
    """Raise :class:`BuildError` unless the spec satisfies @CEntryPoint."""
    if not spec.is_static:
        raise BuildError(
            f"@CEntryPoint {spec.qualified_name} must be static"
        )
    if not spec.params or spec.params[0] is not ParamKind.ISOLATE:
        raise BuildError(
            f"@CEntryPoint {spec.qualified_name} must take the execution "
            "isolate as its first parameter"
        )
    for index, kind in enumerate(spec.params[1:], start=1):
        if kind is ParamKind.OBJECT:
            raise BuildError(
                f"@CEntryPoint {spec.qualified_name} parameter {index} is an "
                "object; only primitives and word types are allowed"
            )
        if kind is ParamKind.ISOLATE:
            raise BuildError(
                f"@CEntryPoint {spec.qualified_name} declares a second isolate"
            )
