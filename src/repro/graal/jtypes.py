"""Class/method IR consumed by the native-image analyses.

The bytecode transformer and the points-to analysis operate on this IR
rather than on live Python objects, mirroring how GraalVM's analyses
operate on bytecode rather than on a running JVM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError


class TrustLevel(enum.Enum):
    """Montsalvat's partitioning language (§5.1)."""

    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"
    NEUTRAL = "neutral"

    @property
    def annotated(self) -> bool:
        return self is not TrustLevel.NEUTRAL


@dataclass(frozen=True)
class CallSite:
    """One outgoing call found in a method body.

    ``receiver_class`` is the statically known receiver (for
    instantiations); ``None`` means the receiver type is unknown and the
    analysis falls back to class-hierarchy resolution by method name.
    """

    method_name: str
    receiver_class: Optional[str] = None
    is_instantiation: bool = False


@dataclass(frozen=True)
class JMethod:
    """A method in the IR."""

    name: str
    declared_in: str
    is_static: bool = False
    is_public: bool = True
    is_constructor: bool = False
    param_count: int = 0
    calls: FrozenSet[CallSite] = frozenset()

    @property
    def qualified_name(self) -> str:
        return f"{self.declared_in}.{self.name}"


@dataclass(frozen=True)
class JField:
    """A field in the IR; ``declared_type`` when statically known."""

    name: str
    declared_in: str
    declared_type: Optional[str] = None
    is_private: bool = True


@dataclass(frozen=True)
class JClass:
    """A class in the IR."""

    name: str
    trust: TrustLevel = TrustLevel.NEUTRAL
    methods: Tuple[JMethod, ...] = ()
    fields: Tuple[JField, ...] = ()

    def __post_init__(self) -> None:
        names = [m.name for m in self.methods]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"duplicate method names in class {self.name!r} "
                "(the IR does not model overloads)"
            )

    def method(self, name: str) -> Optional[JMethod]:
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def public_methods(self) -> Tuple[JMethod, ...]:
        return tuple(m for m in self.methods if m.is_public)

    def constructor(self) -> Optional[JMethod]:
        return self.method("__init__")


class ClassUniverse:
    """The closed world of classes known at build time (§2.2).

    GraalVM native-image assumes every class executable at run time is
    known at build time; lookups outside the universe are closed-world
    violations.
    """

    def __init__(self, classes: Dict[str, JClass]) -> None:
        self._classes = dict(classes)

    @classmethod
    def of(cls, *classes: JClass) -> "ClassUniverse":
        return cls({c.name: c for c in classes})

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __getitem__(self, name: str) -> JClass:
        try:
            return self._classes[name]
        except KeyError:
            raise ConfigurationError(
                f"closed-world violation: class {name!r} not known at build time"
            ) from None

    def get(self, name: str) -> Optional[JClass]:
        return self._classes.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._classes))

    def classes(self) -> Tuple[JClass, ...]:
        return tuple(self._classes[name] for name in sorted(self._classes))

    def by_trust(self, trust: TrustLevel) -> Tuple[JClass, ...]:
        return tuple(c for c in self.classes() if c.trust is trust)

    def classes_defining(self, method_name: str) -> Tuple[JClass, ...]:
        """Class-hierarchy resolution: every class defining ``method_name``."""
        return tuple(
            c for c in self.classes() if c.method(method_name) is not None
        )

    def __len__(self) -> int:
        return len(self._classes)
