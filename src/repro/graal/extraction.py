"""AST extraction: Python classes -> the JClass IR.

This is the reproduction's stand-in for reading Java bytecode: method
bodies are parsed with :mod:`ast` to discover call sites —
instantiations of known classes (statically typed receivers) and
attribute calls (resolved later by class-hierarchy analysis).

Classes whose source is unavailable (generated classes, REPL classes)
may declare their call graph explicitly via a ``__calls__`` mapping::

    class Generated:
        __calls__ = {"run": [("Helper", "step"), ("Helper", None)]}

where ``(cls, None)`` records an instantiation of ``cls`` and
``(None, name)`` an unresolved attribute call.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import weakref
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graal.jtypes import CallSite, JClass, JField, JMethod, TrustLevel

#: Attribute set by the @trusted/@untrusted/@neutral decorators.
TRUST_ATTRIBUTE = "__montsalvat_trust__"

#: Memoised extractions. Source parsing is a pure function of the class
#: object (its MRO members and trust mark), and every ``partition()``
#: re-extracts the same application classes — profiling shows the
#: repeated ``inspect.getsource`` + ``ast.parse`` work dominating
#: start-up for scale experiments that build many sessions. Keyed
#: weakly so dynamically generated classes can still be collected; the
#: trust mark is part of the value so re-decorating a class (tests do)
#: invalidates the entry.
_EXTRACT_CACHE: "weakref.WeakKeyDictionary[type, Tuple[TrustLevel, JClass]]" = (
    weakref.WeakKeyDictionary()
)


def extract_classes(classes: Iterable[type]) -> Dict[str, JClass]:
    """Extract the IR for a set of Python classes."""
    return {cls.__name__: extract_class(cls) for cls in classes}


def extract_class(cls: type) -> JClass:
    """Extract one Python class into the IR."""
    trust = getattr(cls, TRUST_ATTRIBUTE, TrustLevel.NEUTRAL)
    cached = _EXTRACT_CACHE.get(cls)
    if cached is not None and cached[0] is trust:
        return cached[1]
    extracted = _extract_class_uncached(cls, trust)
    try:
        _EXTRACT_CACHE[cls] = (trust, extracted)
    except TypeError:
        pass  # classes without weakref support stay uncached
    return extracted


def _extract_class_uncached(cls: type, trust: TrustLevel) -> JClass:
    explicit = getattr(cls, "__calls__", None)
    methods: List[JMethod] = []
    fields: Set[str] = set()
    for name, member in _members_across_mro(cls).items():
        func = _unwrap(member)
        if func is None:
            continue
        if explicit is not None and name in explicit:
            calls = frozenset(_explicit_sites(explicit[name]))
            assigned: Set[str] = set()
        else:
            calls, assigned = _analyze_body(func)
        fields |= assigned
        methods.append(
            JMethod(
                name=name,
                declared_in=cls.__name__,
                is_static=isinstance(member, staticmethod),
                is_public=not name.startswith("_") or name == "__init__",
                is_constructor=(name == "__init__"),
                param_count=_param_count(func),
                calls=calls,
            )
        )
    jfields = tuple(
        JField(name=f, declared_in=cls.__name__) for f in sorted(fields)
    )
    return JClass(
        name=cls.__name__, trust=trust, methods=tuple(methods), fields=jfields
    )


# -- internals ------------------------------------------------------------


def _members_across_mro(cls: type) -> Dict[str, object]:
    """Class members across the MRO (most-derived wins), like the class
    file a Java compiler would emit for the leaf class plus its
    inherited concrete methods."""
    members: Dict[str, object] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        members.update(vars(klass))
    return members


def _unwrap(member: object) -> Optional[object]:
    if isinstance(member, (staticmethod, classmethod)):
        return member.__func__
    if inspect.isfunction(member):
        return member
    return None


def _param_count(func: object) -> int:
    try:
        signature = inspect.signature(func)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0
    params = [p for p in signature.parameters.values() if p.name != "self"]
    return len(params)


def _explicit_sites(entries: Iterable[Tuple[Optional[str], Optional[str]]]) -> List[CallSite]:
    sites: List[CallSite] = []
    for receiver, method in entries:
        if method is None and receiver is not None:
            sites.append(
                CallSite(
                    method_name="__init__",
                    receiver_class=receiver,
                    is_instantiation=True,
                )
            )
        elif method is not None:
            sites.append(CallSite(method_name=method, receiver_class=receiver))
    return sites


def _analyze_body(func: object) -> Tuple[frozenset, Set[str]]:
    """Parse a function body; returns (call sites, self-assigned fields)."""
    try:
        source = textwrap.dedent(inspect.getsource(func))  # type: ignore[arg-type]
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return frozenset(), set()
    visitor = _CallVisitor()
    visitor.visit(tree)
    return frozenset(visitor.sites), visitor.fields


class _CallVisitor(ast.NodeVisitor):
    """Collects instantiations, attribute calls and ``self.x`` writes."""

    def __init__(self) -> None:
        self.sites: List[CallSite] = []
        self.fields: Set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id[:1].isupper():
            # Capitalised bare-name call: treat as instantiation of a
            # (possibly unknown) class; the analysis filters by universe.
            self.sites.append(
                CallSite(
                    method_name="__init__",
                    receiver_class=func.id,
                    is_instantiation=True,
                )
            )
        elif isinstance(func, ast.Attribute):
            receiver: Optional[str] = None
            if isinstance(func.value, ast.Name) and func.value.id[:1].isupper():
                receiver = func.value.id  # static call Class.method(...)
            self.sites.append(
                CallSite(method_name=func.attr, receiver_class=receiver)
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_field(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_field(node.target)
        self.generic_visit(node)

    def _record_field(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.fields.add(target.attr)
