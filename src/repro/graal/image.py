"""Native images and the image heap (§2.2).

A native image is the AOT-compiled artifact: the set of reachable
methods, the embedded runtime components, and the *image heap* — a
snapshot of objects created by build-time initialisation, memory-mapped
into the application heap at startup so the program starts from the
initialised state.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.errors import BuildError
from repro.graal.pointsto import ReachableSet


@dataclass
class ImageHeap:
    """Snapshot of build-time-initialised objects.

    Values must be picklable: the snapshot is literally serialized into
    the image and memory-mapped back at startup, so unpicklable state
    is the closed-world violation GraalVM would reject.
    """

    objects: Dict[str, Any] = field(default_factory=dict)
    _frozen: bool = False
    _blob: bytes = b""

    def put(self, name: str, value: Any) -> None:
        if self._frozen:
            raise BuildError("image heap already snapshotted")
        self.objects[name] = value

    def snapshot(self) -> bytes:
        """Freeze and serialize the heap into the image."""
        if not self._frozen:
            try:
                self._blob = pickle.dumps(self.objects, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise BuildError(
                    f"image heap contains unserialisable state: {exc}"
                ) from exc
            self._frozen = True
        return self._blob

    @property
    def size_bytes(self) -> int:
        return len(self.snapshot())

    def startup_view(self) -> Dict[str, Any]:
        """What the application sees at startup (a fresh deserialisation)."""
        return pickle.loads(self.snapshot())


#: Bytes of generated machine code we account per reachable method; used
#: to synthesise a deterministic image size for measurement/signing and
#: by the TCB accounting (repro.core.tcb) to price dead trusted code.
CODE_BYTES_PER_METHOD = 640
_CODE_BYTES_PER_METHOD = CODE_BYTES_PER_METHOD

#: Runtime components embedded in every image (GC, thread scheduling,
#: stack walking, exception handling — §2.2).
_RUNTIME_COMPONENTS = (
    "serial-gc",
    "thread-scheduling",
    "synchronization",
    "stack-walking",
    "exception-handling",
)


@dataclass(frozen=True)
class NativeImage:
    """A built image: trusted.o, untrusted.o, or a standalone executable."""

    name: str
    reachable: ReachableSet
    entry_points: Tuple[str, ...]
    image_heap_bytes: int
    relocatable: bool  # True for Montsalvat's .o artifacts (§5.3)
    code_bytes: bytes
    runtime_components: Tuple[str, ...] = _RUNTIME_COMPONENTS
    #: Serialized image heap, memory-mapped back at startup (§2.2).
    image_heap_blob: bytes = b""

    def startup_heap(self) -> Dict[str, Any]:
        """Materialise the build-time-initialised objects at startup."""
        if not self.image_heap_blob:
            return {}
        return pickle.loads(self.image_heap_blob)

    @property
    def artifact_name(self) -> str:
        return f"{self.name}.o" if self.relocatable else self.name

    @property
    def code_size_bytes(self) -> int:
        return len(self.code_bytes)

    def measure(self) -> str:
        return hashlib.sha256(self.code_bytes).hexdigest()

    def contains_method(self, qualified_name: str) -> bool:
        return self.reachable.includes_method(qualified_name)

    def contains_class(self, name: str) -> bool:
        return self.reachable.includes_class(name)


def synthesize_code(name: str, reachable: ReachableSet, image_heap: bytes) -> bytes:
    """Deterministic stand-in for AOT-compiled machine code.

    The content hashes the reachable-method set, so two builds with the
    same inputs measure identically (required for attestation) and any
    change to reachability changes the measurement.
    """
    digest = hashlib.sha256()
    digest.update(name.encode("utf-8"))
    for method in sorted(reachable.methods):
        digest.update(method.encode("utf-8"))
    digest.update(image_heap)
    seed = digest.digest()
    size = max(1, len(reachable.methods)) * _CODE_BYTES_PER_METHOD
    return (seed * (size // len(seed) + 1))[:size]
