"""GraalVM isolates: independent VM instances with separate heaps (§2.2).

Each isolate operates on its own heap, so garbage collection is
performed independently — threads in one isolate are unaffected by
collection in another. Montsalvat creates one default isolate per
runtime: the trusted isolate serves ecall relays, the untrusted isolate
serves ocall relays (§5.4).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.costs.machine import GB
from repro.errors import ConfigurationError
from repro.runtime.context import ExecutionContext
from repro.runtime.heap import SimHeap

_isolate_ids = itertools.count(1)


class Isolate:
    """One VM instance: an execution context plus a private heap."""

    def __init__(
        self,
        name: str,
        ctx: ExecutionContext,
        max_heap_bytes: int = 2 * GB,
    ) -> None:
        if max_heap_bytes <= 0:
            raise ConfigurationError("isolate heap must be positive")
        self.isolate_id = next(_isolate_ids)
        self.name = name
        self.ctx = ctx
        self.heap = SimHeap(ctx, max_bytes=max_heap_bytes, name=name)
        self._torn_down = False

    def attach_thread(self) -> float:
        """Attach the calling thread (the @CEntryPoint prologue cost).

        The transition layer charges this as part of a relay crossing;
        the explicit method exists for direct isolate use.
        """
        self._require_live()
        return self.ctx.platform.charge_cycles(
            f"isolate.attach.{self.name}",
            self.ctx.platform.cost_model.transitions.isolate_attach_cycles,
        )

    def collect(self) -> float:
        """Run this isolate's GC, independent of any other isolate."""
        self._require_live()
        return self.heap.collect()

    def tear_down(self) -> None:
        self._require_live()
        self._torn_down = True

    @property
    def live(self) -> bool:
        return not self._torn_down

    def _require_live(self) -> None:
        if self._torn_down:
            raise ConfigurationError(f"isolate {self.name!r} was torn down")

    def __repr__(self) -> str:
        return f"Isolate(id={self.isolate_id}, name={self.name!r})"
