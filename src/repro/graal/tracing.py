"""Tracing agent: records dynamic accesses, emits reflection config (§2.2).

GraalVM's closed-world assumption requires every dynamically accessed
class to be declared up front, usually via a JSON file the *tracing
agent* produces by observing a training run. This module implements the
equivalent: instrument a run, record which classes were touched
reflectively, and emit/consume the JSON configuration that
:class:`~repro.graal.builder.BuildOptions` accepts.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator, List, Set, Tuple

from repro.errors import BuildError


class TracingAgent:
    """Records reflective class/method accesses during a training run."""

    def __init__(self) -> None:
        self._classes: Set[str] = set()
        self._methods: Set[Tuple[str, str]] = set()
        self._active = False

    # -- recording -------------------------------------------------------------

    @contextmanager
    def tracing(self) -> Iterator["TracingAgent"]:
        """Activate recording for a with-block."""
        self._active = True
        try:
            yield self
        finally:
            self._active = False

    def record_class_access(self, class_name: str) -> None:
        """Called by instrumented reflection sites (Class.forName analog)."""
        if self._active:
            self._classes.add(class_name)

    def record_method_access(self, class_name: str, method_name: str) -> None:
        """Called by instrumented Method.invoke analogs."""
        if self._active:
            self._classes.add(class_name)
            self._methods.add((class_name, method_name))

    def reflect_instantiate(self, cls: type, *args, **kwargs):
        """Reflective instantiation helper that records while active."""
        self.record_class_access(cls.__name__)
        return cls(*args, **kwargs)

    def reflect_call(self, obj, method_name: str, *args, **kwargs):
        """Reflective invocation helper that records while active."""
        self.record_method_access(type(obj).__name__, method_name)
        return getattr(obj, method_name)(*args, **kwargs)

    # -- output ----------------------------------------------------------------

    @property
    def traced_classes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._classes))

    def to_json(self) -> str:
        """Render the reflect-config.json analog."""
        entries: List[dict] = []
        for class_name in sorted(self._classes):
            entry: dict = {"name": class_name}
            methods = sorted(m for c, m in self._methods if c == class_name)
            if methods:
                entry["methods"] = [{"name": m} for m in methods]
            entries.append(entry)
        return json.dumps(entries, indent=2)


def load_reflection_config(text: str) -> Tuple[str, ...]:
    """Parse a reflect-config.json into the class tuple BuildOptions takes."""
    try:
        entries = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BuildError(f"malformed reflection config: {exc}") from exc
    if not isinstance(entries, list):
        raise BuildError("reflection config must be a JSON array")
    names = []
    for entry in entries:
        if not isinstance(entry, dict) or "name" not in entry:
            raise BuildError(f"reflection entry missing 'name': {entry!r}")
        names.append(entry["name"])
    return tuple(names)
