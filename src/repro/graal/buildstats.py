"""Build statistics: what the points-to analysis kept and pruned.

GraalVM's value proposition (§2.2) is that only reachable program
elements are compiled, and Montsalvat leans on the same analysis to
prune unreachable proxy classes (§5.2). This module reports those
numbers for a built, partitioned application — the "how much did the
closed world save us" view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.graal.image import NativeImage
from repro.graal.jtypes import ClassUniverse


@dataclass(frozen=True)
class ImageBuildStats:
    """Pruning statistics for one image."""

    image_name: str
    total_classes: int
    reachable_classes: int
    total_methods: int
    reachable_methods: int
    pruned_proxy_classes: Tuple[str, ...]

    @property
    def method_pruning_ratio(self) -> float:
        if not self.total_methods:
            return 0.0
        return 1.0 - self.reachable_methods / self.total_methods

    def format(self) -> str:
        lines = [
            f"build stats — {self.image_name}",
            f"  classes:  {self.reachable_classes}/{self.total_classes} reachable",
            f"  methods:  {self.reachable_methods}/{self.total_methods} reachable "
            f"({self.method_pruning_ratio:.0%} pruned)",
        ]
        if self.pruned_proxy_classes:
            lines.append(
                "  pruned proxies: " + ", ".join(self.pruned_proxy_classes)
            )
        return "\n".join(lines)


def analyze_image(
    image: NativeImage, universe: ClassUniverse, proxy_names: Tuple[str, ...] = ()
) -> ImageBuildStats:
    """Compare an image's reachable set against its input universe."""
    total_methods = sum(len(jclass.methods) for jclass in universe.classes())
    pruned_proxies = tuple(
        name
        for name in proxy_names
        if name in universe and not image.contains_class(name)
    )
    return ImageBuildStats(
        image_name=image.name,
        total_classes=len(universe),
        reachable_classes=len(image.reachable.classes),
        total_methods=total_methods,
        reachable_methods=len(image.reachable.methods),
        pruned_proxy_classes=pruned_proxies,
    )


def partitioned_build_stats(app) -> Tuple[ImageBuildStats, ImageBuildStats]:
    """(trusted, untrusted) stats for a partitioned application."""
    proxy_names = tuple(app.transform.proxy_classes)
    trusted = analyze_image(
        app.images.trusted, app.transform.trusted_universe, proxy_names
    )
    untrusted = analyze_image(
        app.images.untrusted, app.transform.untrusted_universe, proxy_names
    )
    return trusted, untrusted
