"""Scaling ablation: sessions × shards (throughput, contention, EPC).

The ROADMAP's north star is a system serving heavy concurrent traffic;
this ablation measures what the deterministic concurrency layer
(:mod:`repro.concurrency`) buys and where it breaks, on the bank and
SecureKeeper workloads:

- **throughput scaling** — K client sessions interleaved in virtual
  time against N trusted shards: throughput is total ops over the
  *makespan* (the largest session-local timestamp), so perfectly
  overlapping sessions scale linearly;
- **the contention knee** — a finite switchless worker pool is leased
  in session event time; once sessions outnumber free workers, calls
  degrade to hardware transitions and the fallback share climbs — the
  knee is the first session count where fallbacks dominate (>50%);
- **the EPC-pressure cliff** — the EPC budget is split evenly across
  shards, each shard touching a working set per crossing; when the
  combined working sets overcommit the budget, every crossing faults
  and the paging cost cliff appears in the fault rate;
- **per-shard loss** — a seeded fault plan kills one shard mid-run:
  sessions pinned to surviving shards keep serving, the lost shard is
  rebuilt (per-shard reload priced) and restore hooks recover state.

Determinism: every run is a pure function of the seed; the report
fingerprint hashes all ledgers, checksums and interleaving digests (the
CI ``scale-smoke`` job runs the sweep twice and compares). A 1-session,
1-shard, pool-less run is priced **byte-identically** to the plain
sequential path — the report records that check per workload
(``identical``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
)
from repro.concurrency import (
    ContendedWorkerPool,
    SessionScheduler,
    ShardedEnclaveGroup,
    attach_worker_pool,
)
from repro.core import Partitioner, PartitionOptions
from repro.errors import RmiError
from repro.experiments.common import ExperimentTable
from repro.faults import FaultInjector, FaultKind, FaultRule
from repro.obs.artifacts import run_artifact, write_artifact
from repro.sgx.driver import SgxDriver

DEFAULT_SEED = 9_241
DEFAULT_SESSION_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16)
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)
DEFAULT_WORKERS = 2

WORKLOADS = ("bank", "securekeeper")

#: EPC-cliff sweep defaults: a deliberately tight page budget shared by
#: all shards, each shard walking a fixed working set per crossing.
_EPC_BUDGET_PAGES = 48
_EPC_WORKING_SET_PAGES = 20
_PAGE = 4096


@dataclass
class ScaleRunResult:
    """One (workload, sessions, shards, workers) measurement."""

    workload: str
    sessions: int
    shards: int
    workers: int
    ops: int
    makespan_s: float
    busy_s: float
    crossings: int
    switchless_calls: int
    pool_stats: Optional[Dict[str, Any]]
    shard_crossings: Dict[str, int]
    epc_faults: int
    epc_fault_rate: float
    checksum: Tuple[Any, ...]
    trace_digest: str
    now_s: float
    ledger: Dict[str, Tuple[int, float]]

    @property
    def throughput_ops_per_s(self) -> float:
        return self.ops / self.makespan_s if self.makespan_s else 0.0

    @property
    def fallback_share(self) -> float:
        if self.pool_stats is None:
            return 0.0
        return float(self.pool_stats["fallback_share"])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "sessions": self.sessions,
            "shards": self.shards,
            "workers": self.workers,
            "ops": self.ops,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "throughput_ops_per_s": self.throughput_ops_per_s,
            "crossings": self.crossings,
            "switchless_calls": self.switchless_calls,
            "fallback_share": self.fallback_share,
            "pool": self.pool_stats,
            "shard_crossings": dict(sorted(self.shard_crossings.items())),
            "epc_faults": self.epc_faults,
            "epc_fault_rate": self.epc_fault_rate,
            "checksum": list(self.checksum),
            "trace_digest": self.trace_digest,
            "now_s": self.now_s,
        }


@dataclass
class ShardLossResult:
    """Availability under one seeded mid-run shard loss."""

    workload: str
    sessions: int
    shards: int
    ok_ops: int
    failed_ops: int
    losses: int
    mirrors_dropped: int
    restored_objects: int
    lost_updates: int

    @property
    def availability(self) -> float:
        total = self.ok_ops + self.failed_ops
        return self.ok_ops / total if total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "sessions": self.sessions,
            "shards": self.shards,
            "ok_ops": self.ok_ops,
            "failed_ops": self.failed_ops,
            "availability": self.availability,
            "losses": self.losses,
            "mirrors_dropped": self.mirrors_dropped,
            "restored_objects": self.restored_objects,
            "lost_updates": self.lost_updates,
        }


@dataclass
class ScalingReport:
    """Full scaling ablation output."""

    throughput: ExperimentTable
    contention: ExperimentTable
    epc: ExperimentTable
    results: List[ScaleRunResult] = field(default_factory=list)
    loss_results: List[ShardLossResult] = field(default_factory=list)
    #: Per workload: is the 1-session/1-shard/pool-less ledger
    #: byte-identical to the plain sequential path?
    identical: Dict[str, bool] = field(default_factory=dict)
    #: Per workload: first session count whose fallback share > 0.5.
    knee: Dict[str, Optional[int]] = field(default_factory=dict)
    seed: int = DEFAULT_SEED

    def format(self) -> str:
        parts = [
            self.throughput.format(y_format="{:.2f}"),
            "",
            self.contention.format(y_format="{:.3f}"),
            "",
            self.epc.format(y_format="{:.3f}"),
            "",
        ]
        for workload in sorted(self.identical):
            ok = "identical" if self.identical[workload] else "DIVERGED"
            parts.append(
                f"{workload}: 1-session/1-shard vs sequential ledger {ok}"
            )
        for workload in sorted(self.knee):
            at = self.knee[workload]
            parts.append(
                f"{workload}: contention knee at {at} sessions"
                if at is not None
                else f"{workload}: no contention knee in sweep"
            )
        for loss in self.loss_results:
            parts.append(
                f"{loss.workload}: shard loss availability "
                f"{loss.availability:.3f} ({loss.losses} loss, "
                f"{loss.restored_objects} restored, "
                f"{loss.lost_updates} updates lost)"
            )
        parts.append(f"-- seed={self.seed}")
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of every ledger, checksum, trace and loss outcome.
        Same seed => same fingerprint (CI ``scale-smoke`` asserts it)."""
        payload = {
            "seed": self.seed,
            "results": [
                {
                    **r.to_dict(),
                    "ledger": {k: list(v) for k, v in sorted(r.ledger.items())},
                }
                for r in self.results
            ],
            "losses": [l.to_dict() for l in self.loss_results],
            "identical": dict(sorted(self.identical.items())),
            "knee": dict(sorted(self.knee.items())),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, Any]:
        return run_artifact(
            "scaling",
            tables=[self.throughput, self.contention, self.epc],
            extra={
                "scaling": {
                    "seed": self.seed,
                    "fingerprint": self.fingerprint(),
                    "identical": dict(sorted(self.identical.items())),
                    "knee": dict(sorted(self.knee.items())),
                    "runs": [r.to_dict() for r in self.results],
                    "losses": [l.to_dict() for l in self.loss_results],
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


# -- workload bodies ----------------------------------------------------------


def _bank_session_body(accounts, rounds: int, think_ns: float):
    """One bank client: a stream of updates, then audited reads."""

    def body():
        for round_no in range(rounds):
            for index, account in enumerate(accounts):
                account.update_balance(1 + (round_no + index) % 3)
                yield think_ns
        return sum(account.get_balance() for account in accounts)

    return body()


def _keeper_session_body(vaults, session_no: int, entries: int, think_ns: float):
    """One SecureKeeper client: encrypt + audit across shard vaults."""

    def body():
        correct = 0
        for index in range(entries):
            vault = vaults[index % len(vaults)]
            key = f"s{session_no}-z{index}"
            blob = vault.encrypt(f"value-{index}")
            vault.record_access(key)
            yield think_ns
            if vault.decrypt(blob) == f"value-{index}":
                correct += 1
            yield think_ns
        return correct

    return body()


# -- runners ------------------------------------------------------------------


def _partitioned(workload: str):
    classes = BANK_CLASSES if workload == "bank" else SECUREKEEPER_CLASSES
    return Partitioner(PartitionOptions(name=f"scale_{workload}")).partition(
        list(classes)
    )


def run_scale(
    workload: str,
    sessions: int = 1,
    shards: int = 1,
    workers: int = 0,
    rounds: int = 12,
    accounts_per_session: int = 3,
    entries: int = 8,
    think_ns: float = 0.0,
    seed: int = DEFAULT_SEED,
    epc_budget_pages: Optional[int] = None,
    touch_bytes: int = 0,
    working_set_bytes: int = 0,
) -> ScaleRunResult:
    """One concurrent run of ``workload`` under the full machinery."""
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; pick from {WORKLOADS}")
    app = _partitioned(workload)
    platform = app.platform
    with app.start() as session:
        driver = (
            SgxDriver(platform)
            if (epc_budget_pages is not None or touch_bytes)
            else None
        )
        group = ShardedEnclaveGroup(
            session,
            shards,
            driver=driver,
            epc_budget_pages=epc_budget_pages,
            touch_bytes=touch_bytes,
            working_set_bytes=working_set_bytes,
        )
        pool = None
        scheduler = SessionScheduler(platform, seed=seed)
        ops = 0
        if workload == "bank":
            for client in range(sessions):
                accounts = [
                    group.create_pinned(
                        f"s{client}-a{index}",
                        lambda c=client, i=index: Account(f"s{c}-a{i}", 100),
                    )
                    for index in range(accounts_per_session)
                ]
                scheduler.spawn(
                    f"client{client}",
                    _bank_session_body(accounts, rounds, think_ns),
                )
                ops += rounds * accounts_per_session
        else:
            vaults = [
                group.create_pinned(
                    f"vault-{name}", lambda n=name: PayloadVault(f"master-{n}")
                )
                for name in group.shard_names
            ]
            for client in range(sessions):
                scheduler.spawn(
                    f"client{client}",
                    _keeper_session_body(vaults, client, entries, think_ns),
                )
                ops += entries
        # Attach the pool only once setup (object creation) is done, so
        # worker leases start aligned with the sessions' event clocks.
        if workers:
            pool = ContendedWorkerPool(workers, workers)
            attach_worker_pool(session, pool)
            scheduler.pool = pool
        crossings_before = session.transition_stats.crossings
        switchless_before = session.transition_stats.switchless_calls
        results = scheduler.run()
        stats = session.transition_stats
        epc_faults = driver.epc.stats.faults if driver is not None else 0
        epc_rate = driver.epc.stats.fault_rate() if driver is not None else 0.0
    # Ledger and clock are read *after* teardown, so they cover the
    # whole run (batch drains, GC, enclave destroy) — the same span the
    # sequential baseline prices.
    result = ScaleRunResult(
        workload=workload,
        sessions=sessions,
        shards=shards,
        workers=workers,
        ops=ops,
        makespan_s=scheduler.makespan_ns / 1e9,
        busy_s=scheduler.total_busy_ns / 1e9,
        crossings=stats.crossings - crossings_before,
        switchless_calls=stats.switchless_calls - switchless_before,
        pool_stats=pool.stats.to_dict() if pool is not None else None,
        shard_crossings=group.crossing_counts(),
        epc_faults=epc_faults,
        epc_fault_rate=epc_rate,
        checksum=tuple(results[name] for name in sorted(results)),
        trace_digest=scheduler.trace_digest(),
        now_s=platform.now_s,
        ledger={k: tuple(v) for k, v in platform.snapshot().items()},
    )
    return result


def run_sequential_baseline(
    workload: str,
    rounds: int = 12,
    accounts_per_session: int = 3,
    entries: int = 8,
) -> Tuple[Dict[str, Tuple[int, float]], float, Tuple[Any, ...]]:
    """The pre-concurrency sequential path: plain loop, no scheduler,
    no shard group, no pool. Returns (ledger, now_s, checksum)."""
    app = _partitioned(workload)
    platform = app.platform
    with app.start():
        if workload == "bank":
            accounts = [
                Account(f"s0-a{index}", 100)
                for index in range(accounts_per_session)
            ]
            for round_no in range(rounds):
                for index, account in enumerate(accounts):
                    account.update_balance(1 + (round_no + index) % 3)
            checksum: Tuple[Any, ...] = (
                sum(account.get_balance() for account in accounts),
            )
        else:
            vault = PayloadVault("master-default")
            correct = 0
            for index in range(entries):
                key = f"s0-z{index}"
                blob = vault.encrypt(f"value-{index}")
                vault.record_access(key)
                if vault.decrypt(blob) == f"value-{index}":
                    correct += 1
            checksum = (correct,)
    return (
        {k: tuple(v) for k, v in platform.snapshot().items()},
        platform.now_s,
        checksum,
    )


def check_pricing_identity(
    workload: str,
    rounds: int = 12,
    accounts_per_session: int = 3,
    entries: int = 8,
    seed: int = DEFAULT_SEED,
) -> bool:
    """1-session/1-shard/pool-less concurrent run vs the sequential
    path: ledgers, clocks and checksums must be byte-identical."""
    seq_ledger, seq_now, seq_checksum = run_sequential_baseline(
        workload,
        rounds=rounds,
        accounts_per_session=accounts_per_session,
        entries=entries,
    )
    concurrent = run_scale(
        workload,
        sessions=1,
        shards=1,
        workers=0,
        rounds=rounds,
        accounts_per_session=accounts_per_session,
        entries=entries,
        seed=seed,
    )
    return (
        seq_ledger == concurrent.ledger
        and seq_now == concurrent.now_s
        and seq_checksum == concurrent.checksum
    )


def run_shard_loss(
    workload: str = "bank",
    sessions: int = 2,
    shards: int = 2,
    rounds: int = 12,
    accounts_per_session: int = 3,
    seed: int = DEFAULT_SEED,
    lose_after_polls: int = 3,
) -> ShardLossResult:
    """Seeded mid-run loss of one shard; the others keep serving.

    Accounts are reached through a lookup table the restore hooks
    repopulate, so a lost shard's clients see failures only for the
    window between the loss and recovery — and the recovered accounts
    restart from their initial balances (the lost updates are counted).
    """
    app = _partitioned(workload)
    platform = app.platform
    with app.start() as session:
        group = ShardedEnclaveGroup(session, shards)
        registry: Dict[str, Any] = {}

        def make(key: str) -> None:
            registry[key] = group.create_pinned(
                key, lambda k=key: Account(k, 100)
            )

        keys_by_session: List[List[str]] = []
        for client in range(sessions):
            keys = [
                f"s{client}-a{index}" for index in range(accounts_per_session)
            ]
            for key in keys:
                make(key)
                group.register_restore(key, lambda k=key: make(k))
            keys_by_session.append(keys)

        injector = FaultInjector(
            seed=seed,
            rules=[
                FaultRule(
                    FaultKind.ENCLAVE_CRASH,
                    call_kind="shard",
                    routine="shard.shard1",
                    at_call=lose_after_polls,
                    max_fires=1,
                )
            ],
        )
        platform.enable_fault_injection(injector)
        counters = {"ok": 0, "failed": 0, "acked": {k: 0 for k in registry}}
        loss_infos: List[Dict[str, Any]] = []

        def client_body(keys: List[str]):
            def body():
                for round_no in range(rounds):
                    info = group.poll_faults()
                    if info is not None:
                        loss_infos.append(info)
                    for key in keys:
                        try:
                            registry[key].update_balance(1)
                            counters["ok"] += 1
                            counters["acked"][key] += 1
                        except RmiError:
                            counters["failed"] += 1
                        yield 0.0
                return None

            return body()

        scheduler = SessionScheduler(platform, seed=seed)
        for client in range(sessions):
            scheduler.spawn(f"client{client}", client_body(keys_by_session[client]))
        scheduler.run()
        platform.disable_fault_injection()
        lost_updates = 0
        for key, acked in counters["acked"].items():
            observed = registry[key].get_balance() - 100
            lost_updates += acked - observed
        result = ShardLossResult(
            workload=workload,
            sessions=sessions,
            shards=shards,
            ok_ops=counters["ok"],
            failed_ops=counters["failed"],
            losses=group.losses,
            mirrors_dropped=sum(i["mirrors_dropped"] for i in loss_infos),
            restored_objects=group.restored_objects,
            lost_updates=lost_updates,
        )
    return result


# -- the sweep ----------------------------------------------------------------


def run_scaling(
    session_counts: Sequence[int] = DEFAULT_SESSION_COUNTS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    workers: int = DEFAULT_WORKERS,
    rounds: int = 12,
    accounts_per_session: int = 3,
    entries: int = 8,
    seed: int = DEFAULT_SEED,
    epc_budget_pages: int = _EPC_BUDGET_PAGES,
    epc_working_set_pages: int = _EPC_WORKING_SET_PAGES,
) -> ScalingReport:
    """Sweep sessions × shards on bank and SecureKeeper."""
    throughput = ExperimentTable(
        title="Scaling — throughput vs concurrent sessions",
        x_label="sessions",
        y_label="throughput scaling (vs 1 session)",
        notes=f"{workers} switchless workers per side; makespan-based",
    )
    contention = ExperimentTable(
        title="Contention — switchless fallback share vs sessions",
        x_label="sessions",
        y_label="fallback share",
        notes="busy workers degrade crossings to hardware transitions",
    )
    epc = ExperimentTable(
        title="EPC pressure — page-fault rate vs shard count",
        x_label="shards",
        y_label="EPC fault rate",
        notes=(
            f"{epc_budget_pages}-page budget split across shards, "
            f"{epc_working_set_pages}-page working set per shard"
        ),
    )
    report = ScalingReport(
        throughput=throughput, contention=contention, epc=epc, seed=seed
    )
    mid_shards = shard_counts[min(1, len(shard_counts) - 1)]
    for workload in WORKLOADS:
        throughput_series = throughput.new_series(
            f"{workload} (shards={mid_shards})"
        )
        contention_series = contention.new_series(workload)
        base: Optional[ScaleRunResult] = None
        knee: Optional[int] = None
        for sessions in session_counts:
            result = run_scale(
                workload,
                sessions=sessions,
                shards=mid_shards,
                workers=workers,
                rounds=rounds,
                accounts_per_session=accounts_per_session,
                entries=entries,
                seed=seed,
            )
            report.results.append(result)
            if base is None:
                base = result
            if base.throughput_ops_per_s:
                throughput_series.add(
                    sessions,
                    result.throughput_ops_per_s / base.throughput_ops_per_s,
                )
            contention_series.add(sessions, result.fallback_share)
            if knee is None and result.fallback_share > 0.5:
                knee = sessions
        report.knee[workload] = knee
        report.identical[workload] = check_pricing_identity(
            workload,
            rounds=rounds,
            accounts_per_session=accounts_per_session,
            entries=entries,
            seed=seed,
        )
    # EPC-pressure cliff: fixed sessions, shards sweep a tight budget.
    epc_sessions = session_counts[min(1, len(session_counts) - 1)]
    epc_series = epc.new_series(f"bank ({epc_sessions} sessions)")
    for shards in shard_counts:
        result = run_scale(
            "bank",
            sessions=epc_sessions,
            shards=shards,
            workers=0,
            rounds=rounds,
            accounts_per_session=accounts_per_session,
            seed=seed,
            epc_budget_pages=epc_budget_pages,
            touch_bytes=_PAGE,
            working_set_bytes=epc_working_set_pages * _PAGE,
        )
        report.results.append(result)
        epc_series.add(shards, result.epc_fault_rate)
    report.loss_results.append(
        run_shard_loss(
            "bank",
            sessions=max(2, min(session_counts)),
            shards=max(2, min(2, max(shard_counts))),
            rounds=rounds,
            accounts_per_session=accounts_per_session,
            seed=seed,
        )
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_scaling().format())


if __name__ == "__main__":  # pragma: no cover
    main()
