"""Micro-benchmark classes shared by the Fig. 3/4 experiments."""

from __future__ import annotations

from typing import List

from repro.batching import batchable
from repro.core.annotations import current_context, trusted, untrusted

#: Cost of the setter body itself: a handful of instructions plus the
#: cache lines it touches (object header, field, stack) — which is what
#: makes a concrete in-enclave call slightly pricier than outside.
_SETTER_CPU_CYCLES = 30.0
_SETTER_MEM_BYTES = 256.0


def _charge_setter() -> None:
    ctx = current_context()
    if ctx is not None:
        ctx.compute(_SETTER_CPU_CYCLES, mem_bytes=_SETTER_MEM_BYTES)


@trusted
class TrustedCell:
    """Minimal trusted class: one field, one setter (the paper's
    micro-benchmarks use inexpensive setter methods, §6.3)."""

    def __init__(self, value: int) -> None:
        self.value = value

    def set_value(self, value: int) -> None:
        _charge_setter()
        self.value = value

    def set_payload(self, values: List[str]) -> int:
        """Setter taking a serializable list (the ...+s variants)."""
        _charge_setter()
        self.last_length = len(values)
        return self.last_length


@untrusted
class UntrustedCell:
    """Minimal untrusted class, mirror image of :class:`TrustedCell`."""

    def __init__(self, value: int) -> None:
        self.value = value

    def set_value(self, value: int) -> None:
        _charge_setter()
        self.value = value

    def set_payload(self, values: List[str]) -> int:
        _charge_setter()
        self.last_length = len(values)
        return self.last_length


@trusted
class TrustedSink:
    """Void batchable payload sink: the arena repricing vehicle.

    ``push`` is fire-and-forget, so the coalescer queues it; the list
    argument is neutral, so an attached arena stages it. Together they
    give the Fig. 4b sweep a crossing whose serialization cost the
    zero-copy path can actually elide.
    """

    def __init__(self) -> None:
        self.pushed = 0

    @batchable
    def push(self, values: List[str]) -> None:
        _charge_setter()
        self.pushed += len(values)

    def total_pushed(self) -> int:
        return self.pushed


MICRO_CLASSES = (TrustedCell, UntrustedCell)

#: Fig. 4b arena repricing partitions the sink alongside the cells;
#: kept out of MICRO_CLASSES so the classic figures' sessions (and
#: their goldens) are untouched.
ARENA_MICRO_CLASSES = MICRO_CLASSES + (TrustedSink,)


def make_payload(size: int) -> List[str]:
    """A list of ``size`` 16-byte string values (§6.3)."""
    return [f"v{index:014d}" for index in range(size)]
