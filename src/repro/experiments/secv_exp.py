"""Class-granular vs value-granular partitioning (SecV ablation).

Montsalvat's granularity is the *class*: one secret field pulls the
whole class into the enclave image and turns every call on it into a
crossing. :mod:`repro.apps.secv` re-partitions two bundled applications
at *value* granularity — secrets travel as sealed
:func:`~repro.core.secure` values, the classes carrying them stay
untrusted — and this experiment quantifies the trade on both axes the
paper cares about:

- **TCB bytes** (:func:`repro.core.tcb.partitioned_tcb`) — the trusted
  image shrinks to the methods that actually touch secret values;
- **boundary crossings** — updates against sealed state accumulate
  locally and cross only at settlement / declassification points.

Each (app, granularity) cell runs the *same deterministic workload*;
the report asserts the checksums agree (the finer granularity must not
change results), records whether the class-granular ledgers carry any
secure-value seal charges (they must not: the mechanism is zero-cost
when unused), and fingerprints everything — ledgers included — so the
CI smoke job can assert run-to-run determinism.

Run it as ``python -m repro secv [--quick]``; the artifact lands in
``results/secv.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.bank import Account, AccountRegistry, BANK_CLASSES
from repro.apps.secv import (
    AuditVault,
    SECV_BANK_CLASSES,
    SECV_KEEPER_CLASSES,
    SettlementVault,
    ValueAccount,
    ValueKeeperClient,
    ValueLedger,
)
from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
)
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import Side
from repro.core.tcb import partitioned_tcb
from repro.experiments.common import ExperimentTable
from repro.obs.artifacts import run_artifact, write_artifact

DEFAULT_SEED = 9_043

GRANULARITIES = ("class", "value")
APPS = ("bank", "securekeeper")

#: Ledger categories only secure-value payloads may charge.
SECURE_CHARGE_KEYS = ("sgx.seal.secure_value", "sgx.unseal.secure_value")


@dataclass
class SecvRunResult:
    """One (app, granularity) measurement."""

    app: str
    granularity: str
    ops: int
    elapsed_s: float
    crossings: int
    tcb_bytes: int
    trusted_methods: int
    trusted_relays: int
    secure_seals: int
    secure_unseals: int
    checksum: Tuple[Any, ...]
    ledger: Dict[str, Tuple[int, float]]

    @property
    def label(self) -> str:
        return f"{self.app}/{self.granularity}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "granularity": self.granularity,
            "ops": self.ops,
            "elapsed_s": self.elapsed_s,
            "crossings": self.crossings,
            "tcb_bytes": self.tcb_bytes,
            "trusted_methods": self.trusted_methods,
            "trusted_relays": self.trusted_relays,
            "secure_seals": self.secure_seals,
            "secure_unseals": self.secure_unseals,
            "checksum": list(self.checksum),
        }


@dataclass
class SecvReport:
    """Full granularity comparison: tables + raw per-run results."""

    tcb: ExperimentTable
    crossings: ExperimentTable
    results: List[SecvRunResult] = field(default_factory=list)
    #: Per app: do class- and value-granular runs compute equal results?
    checksum_match: Dict[str, bool] = field(default_factory=dict)
    #: Per app: is the class-granular ledger free of secure-value
    #: charges (the zero-cost-when-unused guarantee)?
    zero_cost: Dict[str, bool] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    quick: bool = False

    def get(self, app: str, granularity: str) -> SecvRunResult:
        for result in self.results:
            if result.app == app and result.granularity == granularity:
                return result
        raise KeyError(f"no run for {app}/{granularity}")

    def tcb_saved_bytes(self, app: str) -> int:
        return self.get(app, "class").tcb_bytes - self.get(app, "value").tcb_bytes

    def crossings_saved(self, app: str) -> int:
        return self.get(app, "class").crossings - self.get(app, "value").crossings

    def apps(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for result in self.results:
            if result.app not in seen:
                seen.append(result.app)
        return tuple(seen)

    def format(self) -> str:
        parts = [
            self.tcb.format(y_format="{:.0f}"),
            "",
            self.crossings.format(y_format="{:.0f}"),
            "",
        ]
        for app in self.apps():
            class_run = self.get(app, "class")
            value_run = self.get(app, "value")
            match = "match" if self.checksum_match.get(app) else "DIVERGED"
            parts.append(
                f"{app}: TCB {class_run.tcb_bytes} -> {value_run.tcb_bytes} B "
                f"(saved {self.tcb_saved_bytes(app)}), trusted methods "
                f"{class_run.trusted_methods} -> {value_run.trusted_methods}, "
                f"crossings {class_run.crossings} -> {value_run.crossings} "
                f"(saved {self.crossings_saved(app)}), checksums {match}"
            )
        clean = sorted(app for app, ok in self.zero_cost.items() if ok)
        dirty = sorted(app for app, ok in self.zero_cost.items() if not ok)
        if clean:
            parts.append(
                "zero-cost: class-granular ledgers carry no secure-value "
                "charges (" + ", ".join(clean) + ")"
            )
        if dirty:
            parts.append(
                "ZERO-COST VIOLATED: secure-value charges in class-granular "
                "ledgers (" + ", ".join(dirty) + ")"
            )
        parts.append(f"-- seed={self.seed}; fingerprint={self.fingerprint()}")
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of every ledger, checksum and TCB figure. Same
        parameters => same fingerprint (the CI smoke job asserts it)."""
        payload = {
            "seed": self.seed,
            "quick": self.quick,
            "results": [
                {
                    **r.to_dict(),
                    "ledger": {k: list(v) for k, v in sorted(r.ledger.items())},
                }
                for r in self.results
            ],
            "checksum_match": dict(sorted(self.checksum_match.items())),
            "zero_cost": dict(sorted(self.zero_cost.items())),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, Any]:
        return run_artifact(
            "secv",
            tables=[self.tcb, self.crossings],
            extra={
                "secv": {
                    "seed": self.seed,
                    "quick": self.quick,
                    "fingerprint": self.fingerprint(),
                    "checksum_match": dict(sorted(self.checksum_match.items())),
                    "zero_cost": dict(sorted(self.zero_cost.items())),
                    "tcb_saved_bytes": {
                        app: self.tcb_saved_bytes(app) for app in self.apps()
                    },
                    "crossings_saved": {
                        app: self.crossings_saved(app) for app in self.apps()
                    },
                    "runs": [r.to_dict() for r in self.results],
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


# -- instrumented runners -----------------------------------------------------


def _measure(name: str, classes: Sequence[type], workload) -> Dict[str, Any]:
    """Partition ``classes``, run ``workload(session)``, collect stats."""
    app = Partitioner(PartitionOptions(name=name)).partition(list(classes))
    platform = app.platform
    with app.start() as session:
        started_s = platform.now_s
        crossings_before = session.transition_stats.crossings
        ops, checksum = workload()
        ledger = {k: tuple(v) for k, v in platform.snapshot().items()}
        return {
            "ops": ops,
            "elapsed_s": platform.now_s - started_s,
            "crossings": session.transition_stats.crossings - crossings_before,
            "tcb_bytes": partitioned_tcb(app).total_bytes,
            "trusted_methods": len(app.images.trusted.reachable.methods),
            "trusted_relays": len(
                app.transform.relay_specs.get(Side.TRUSTED, ())
            ),
            "secure_seals": ledger.get("sgx.seal.secure_value", (0, 0.0))[0],
            "secure_unseals": ledger.get("sgx.unseal.secure_value", (0, 0.0))[0],
            "checksum": checksum,
            "ledger": ledger,
        }


def run_bank(
    granularity: str, n_accounts: int = 4, rounds: int = 48
) -> SecvRunResult:
    """The Listing-1 workload: balance updates, then an audited total.

    Class-granular, every ``update_balance`` is an ecall. Value-granular,
    updates accumulate as public deltas on the untrusted heap and cross
    only at settlement — same arithmetic, same final total.
    """

    def class_workload() -> Tuple[int, Tuple[Any, ...]]:
        accounts = [Account(f"acct-{i}", 100) for i in range(n_accounts)]
        for round_no in range(rounds):
            for index, account in enumerate(accounts):
                account.update_balance(1 + ((round_no + index) % 3))
        registry = AccountRegistry()
        for account in accounts:
            registry.add_account(account)
        return n_accounts * rounds, (registry.count(), registry.total_balance())

    def value_workload() -> Tuple[int, Tuple[Any, ...]]:
        vault = SettlementVault()
        accounts = [
            ValueAccount(f"acct-{i}", vault, 100) for i in range(n_accounts)
        ]
        for round_no in range(rounds):
            for index, account in enumerate(accounts):
                account.update_balance(1 + ((round_no + index) % 3))
        ledger = ValueLedger()
        for account in accounts:
            ledger.add_account(account)
        ledger.settle_all(vault)
        total = vault.total(ledger.sealed_balances())
        return n_accounts * rounds, (ledger.count(), total)

    if granularity == "class":
        stats = _measure("secv_bank_class", BANK_CLASSES, class_workload)
    else:
        stats = _measure("secv_bank_value", SECV_BANK_CLASSES, value_workload)
    return SecvRunResult(app="bank", granularity=granularity, **stats)


def run_keeper(
    granularity: str, n_entries: int = 12, passes: int = 2
) -> SecvRunResult:
    """The §6.7 keeper workload: audited puts (with overwrites), reads.

    Class-granular, every put/read pays an encrypt/decrypt ecall on top
    of the audit ecall. Value-granular, payloads cross as sealed
    ``secure()`` values and only the audit trail remains an ecall.
    """

    def class_workload() -> Tuple[int, Tuple[Any, ...]]:
        vault = PayloadVault("master")
        client = SecureKeeperClient(vault, ZNodeStore(), audit=True)
        for pass_no in range(passes):
            for index in range(n_entries):
                client.put(f"/cfg{index}", f"value-{index}-{pass_no}")
        correct = sum(
            1
            for index in range(n_entries)
            if client.read(f"/cfg{index}") == f"value-{index}-{passes - 1}"
        )
        return passes * n_entries + n_entries, (correct, vault.audit_count())

    def value_workload() -> Tuple[int, Tuple[Any, ...]]:
        vault = AuditVault()
        client = ValueKeeperClient(vault, ZNodeStore(), audit=True)
        for pass_no in range(passes):
            for index in range(n_entries):
                client.put(f"/cfg{index}", f"value-{index}-{pass_no}")
        correct = sum(
            1
            for index in range(n_entries)
            if client.read(f"/cfg{index}") == f"value-{index}-{passes - 1}"
        )
        return passes * n_entries + n_entries, (correct, vault.audit_count())

    if granularity == "class":
        stats = _measure("secv_keeper_class", SECUREKEEPER_CLASSES, class_workload)
    else:
        stats = _measure("secv_keeper_value", SECV_KEEPER_CLASSES, value_workload)
    return SecvRunResult(app="securekeeper", granularity=granularity, **stats)


_RUNNERS = {"bank": run_bank, "securekeeper": run_keeper}

#: Workload parameters per scale: (bank accounts, bank rounds,
#: keeper entries, keeper passes).
_FULL_PARAMS = (4, 48, 12, 2)
_QUICK_PARAMS = (3, 6, 6, 2)


# -- the sweep ----------------------------------------------------------------


def run_secv(
    apps: Sequence[str] = APPS,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
) -> SecvReport:
    """Run every (app, granularity) cell; returns the full report."""
    n_accounts, rounds, n_entries, passes = (
        _QUICK_PARAMS if quick else _FULL_PARAMS
    )
    tcb = ExperimentTable(
        title="TCB — class-granular vs value-granular partitioning",
        x_label="app",
        y_label="trusted bytes in the enclave",
        notes="x: 0=bank, 1=securekeeper; secure values shrink the trusted image",
    )
    crossings = ExperimentTable(
        title="Boundary crossings — class vs value granularity",
        x_label="app",
        y_label="transitions performed",
        notes="x: 0=bank, 1=securekeeper; sealed values cross only to settle",
    )
    report = SecvReport(tcb=tcb, crossings=crossings, seed=seed, quick=quick)
    series = {
        granularity: (tcb.new_series(granularity), crossings.new_series(granularity))
        for granularity in GRANULARITIES
    }
    for app_index, app in enumerate(apps):
        if app not in _RUNNERS:
            raise ValueError(
                f"unknown secv app {app!r}; pick from {sorted(_RUNNERS)}"
            )
        per_granularity: Dict[str, SecvRunResult] = {}
        for granularity in GRANULARITIES:
            if app == "bank":
                result = run_bank(granularity, n_accounts, rounds)
            else:
                result = run_keeper(granularity, n_entries, passes)
            per_granularity[granularity] = result
            report.results.append(result)
            tcb_series, crossing_series = series[granularity]
            tcb_series.add(app_index, result.tcb_bytes)
            crossing_series.add(app_index, result.crossings)
        report.checksum_match[app] = (
            per_granularity["class"].checksum == per_granularity["value"].checksum
        )
        report.zero_cost[app] = not any(
            key in per_granularity["class"].ledger for key in SECURE_CHARGE_KEYS
        )
    return report


# -- command line (``python -m repro secv``) ----------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro secv",
        description="class-granular vs value-granular partitioning ablation",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down deterministic sweep (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=os.path.join("results", "secv.json"),
        help="artifact path (default: results/secv.json)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_secv(quick=args.quick)
    print(report.format())
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    report.write_artifact(args.out)
    print(f"artifact: {args.out}", file=sys.stderr)
    ok = all(report.checksum_match.values()) and all(report.zero_cost.values())
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
