"""Markdown report generator: run everything, emit EXPERIMENTS-style
output with the paper targets inlined.

Used to regenerate the measured columns of ``EXPERIMENTS.md`` and as a
one-command artifact for a fresh checkout::

    python -m repro.experiments.report            # quick scale
    python -m repro.experiments.report --paper    # paper scale
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments.ablations import run_switchless_ablation
from repro.experiments.common import ExperimentTable, orders_of_magnitude
from repro.experiments.epc_paging import run_epc_paging
from repro.experiments.fig12_specjvm import PAPER_TABLE1, run_table1
from repro.experiments.fig3_proxy_creation import run_fig3
from repro.experiments.fig4_rmi import run_fig4b
from repro.experiments.fig5_gc import run_fig5a
from repro.experiments.fig7_paldb import run_fig10
from repro.experiments.fig9_graphchi import run_fig11


def generate_report(paper_scale: bool = False) -> str:
    """Run the headline experiments and render a markdown summary."""
    lines: List[str] = ["# Montsalvat reproduction — measured summary", ""]

    def row(name: str, paper: str, measured: str) -> None:
        lines.append(f"| {name} | {paper} | {measured} |")

    lines += ["| result | paper | measured |", "|---|---|---|"]

    fig3 = run_fig3(counts=(40_000,) if not paper_scale else (10_000, 100_000))
    out_in = orders_of_magnitude(fig3.mean_ratio("proxy-out->in", "concrete-out"))
    in_out = orders_of_magnitude(fig3.mean_ratio("proxy-in->out", "concrete-in"))
    row("Fig. 3 proxy creation (orders)", "~4 / ~3", f"{out_in:.1f} / {in_out:.1f}")

    fig4b = run_fig4b(
        list_sizes=(30_000,), invocations=1_000 if not paper_scale else 10_000
    )
    in_s = fig4b.get("proxy-in->out+s").y_at(30_000) / fig4b.get("proxy-in->out").y_at(30_000)
    out_s = fig4b.get("proxy-out->in+s").y_at(30_000) / fig4b.get("proxy-out->in").y_at(30_000)
    row("Fig. 4b serialization penalty", "~10x / ~3x", f"{in_s:.1f}x / {out_s:.1f}x")

    fig5a = run_fig5a(counts=(100_000,))
    gc_ratio = fig5a.mean_ratio("concrete-in: GC in", "concrete-out: GC out")
    row("Fig. 5a in-enclave GC", "~1 order", f"{gc_ratio:.1f}x")

    counts = (20_000,) if not paper_scale else (20_000, 60_000, 100_000)
    fig10 = run_fig10(key_counts=counts)
    largest = counts[-1]
    scone = fig10.get("SCONE+JVM").y_at(largest)
    row(
        "Fig. 7/10 PalDB RTWU vs NoPart",
        "2.5x",
        f"{fig10.mean_ratio('NoPart', 'Part(RTWU)'):.2f}x",
    )
    row(
        "Fig. 10 RTWU vs SCONE+JVM",
        "6.6x",
        f"{scone / fig10.get('Part(RTWU)').y_at(largest):.1f}x",
    )

    fig11 = run_fig11(
        n_vertices=8_000 if not paper_scale else 25_000,
        n_edges=32_000 if not paper_scale else 100_000,
        shard_counts=(3,),
        iterations=5,
    )
    row(
        "Fig. 11 GraphChi Part vs SCONE+JVM",
        "2.2x",
        f"{fig11.mean_ratio('SCONE+JVM', 'Part-NI'):.2f}x",
    )

    table1 = run_table1()
    measured = "/".join(f"{table1[k]:.2f}" for k in PAPER_TABLE1)
    paper = "/".join(f"{v:.2f}" for v in PAPER_TABLE1.values())
    row("Table 1 ratios", paper, measured)

    switchless = run_switchless_ablation(invocation_counts=(2_000,))
    row(
        "Switchless RMI gain (§7)",
        "n/a (future work)",
        f"{switchless.mean_ratio('hardware transitions', 'switchless'):.0f}x",
    )

    epc = run_epc_paging(working_sets_mb=(64, 128))
    row(
        "EPC paging slowdown (64->128 MB ws)",
        "significant (§2.1)",
        f"{epc.get('enclave/host slowdown').y_at(128) / epc.get('enclave/host slowdown').y_at(64):.1f}x extra",
    )

    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments.report")
    parser.add_argument("--paper", action="store_true", help="paper-scale sweep")
    args = parser.parse_args(argv)
    print(generate_report(paper_scale=args.paper))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
